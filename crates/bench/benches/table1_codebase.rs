//! Table 1: salient aspects of the codebase under evaluation.
//!
//! The paper's numbers describe Uber's monorepo (97.2 MLoC, 382K files);
//! this target reports the same breakdown for the synthetic corpus and
//! the scaling factor between the two worlds.

use bench::{header, Scale};

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    header(
        "Table 1 — salient aspects of the evaluated codebase",
        "§2.2, Table 1 (Uber monorepo: 97.2M LoC / 382K files; 15.6M LoC concurrency)",
    );

    let mut files = 0usize;
    let mut loc = 0usize;
    let mut test_files = 0usize;
    let mut test_loc = 0usize;
    let mut conc_files = 0usize;
    let mut conc_loc = 0usize;
    for c in cases {
        for (name, src) in &c.files {
            files += 1;
            let lines = src.lines().count();
            loc += lines;
            let is_test = name.ends_with("_test.go") || src.contains("testing.T");
            if is_test {
                test_files += 1;
                test_loc += lines;
            }
            if src.contains("go func") || src.contains("sync.") || src.contains("chan ") {
                conc_files += 1;
                conc_loc += lines;
            }
        }
    }
    println!("{:<38} {:>9} {:>9} {:>9}", "", "Total", "Product", "Test");
    println!(
        "{:<38} {:>9} {:>9} {:>9}",
        "Files",
        files,
        files - test_files,
        test_files
    );
    println!(
        "{:<38} {:>9} {:>9} {:>9}",
        "Lines of code",
        loc,
        loc - test_loc,
        test_loc
    );
    println!("\nIncluding concurrency features:");
    println!("{:<38} {:>9}", "Files", conc_files);
    println!("{:<38} {:>9}", "Lines of code", conc_loc);
    println!(
        "\nconcurrency share: {:.0}% of LoC (paper: 16% — 15.6M of 97.2M)",
        100.0 * conc_loc as f64 / loc.max(1) as f64
    );
    println!(
        "scale factor vs Uber: ~{:.0}x smaller ({} LoC here vs 97.2M)",
        97_200_000.0 / loc.max(1) as f64,
        loc
    );
}
