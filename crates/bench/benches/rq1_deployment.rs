//! RQ1: the 18-month deployment — fixes produced, developer acceptance,
//! fix durations, and ticket-resolution times.
//!
//! Paper: 224/404 fixed (55%) with GPT-4 Turbo; 193/224 accepted (86%,
//! 8 with touch-ups); fix durations min/avg/median/max = 6/13/14/29 min;
//! tickets closed in 3 days vs 11 days manually.

use bench::{base_config, header, pct, percentile, run_arm, Scale};
use drfix::{review_fix, RagMode, ReviewOutcome};
use synthllm::ModelTier;

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "RQ1 — deployment: fix rate, acceptance, durations, resolution time",
        "§5.2/§5.5: 55% fixed, 86% accepted, 6/13/14/29 min, 3 vs 11 days",
    );
    let cfg = base_config(&scale, ModelTier::Gpt4Turbo, RagMode::Skeleton);
    let arm = run_arm("deploy", cfg, cases, Some(db));
    println!("fleet: {}\n", arm.stats.summary());

    let fixed: Vec<_> = cases
        .iter()
        .zip(&arm.outcomes)
        .filter(|(_, o)| o.fixed)
        .collect();
    println!(
        "fixes produced: {}/{} ({})   paper: 224/404 (55%)",
        fixed.len(),
        cases.len(),
        pct(arm.rate())
    );

    let mut accepted = 0usize;
    let mut touchups = 0usize;
    let mut drfix_days = Vec::new();
    let mut manual_days = Vec::new();
    for (case, o) in &fixed {
        match review_fix(0xDE9, &case.id, o) {
            ReviewOutcome::Approved => accepted += 1,
            ReviewOutcome::ApprovedWithTouchups => {
                accepted += 1;
                touchups += 1;
            }
            ReviewOutcome::Rejected(_) => {}
        }
        drfix_days.push(drfix::review::resolution_days(0xDE9, &case.id, true));
    }
    for (case, o) in cases.iter().zip(&arm.outcomes) {
        if !o.fixed {
            manual_days.push(drfix::review::resolution_days(0xDE9, &case.id, false));
        }
    }
    println!(
        "accepted in review: {}/{} ({:.0}%), {} with minor touch-ups   paper: 193/224 (86%), 8 touch-ups",
        accepted,
        fixed.len(),
        100.0 * accepted as f64 / fixed.len().max(1) as f64,
        touchups
    );

    let durations: Vec<f64> = fixed.iter().map(|(_, o)| o.duration_minutes).collect();
    let avg = durations.iter().sum::<f64>() / durations.len().max(1) as f64;
    println!(
        "fix durations (min): min {:.0} / avg {:.0} / median {:.0} / max {:.0}   paper: 6/13/14/29",
        durations.iter().cloned().fold(f64::INFINITY, f64::min),
        avg,
        percentile(&durations, 50.0),
        durations.iter().cloned().fold(0.0, f64::max),
    );
    let d_avg = drfix_days.iter().sum::<f64>() / drfix_days.len().max(1) as f64;
    let m_avg = manual_days.iter().sum::<f64>() / manual_days.len().max(1) as f64;
    println!(
        "ticket resolution: {d_avg:.1} days via Dr.Fix vs {m_avg:.1} days manual   paper: 3 vs 11"
    );
    let loc_total: usize = fixed.iter().filter_map(|(_, o)| o.patch_loc).sum();
    println!("total fix LoC merged: {loc_total} lines   paper: ~2.1K over 193 fixes");
}
