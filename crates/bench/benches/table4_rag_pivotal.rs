//! Table 4: fixes where RAG played a pivotal role — races fixed with a
//! retrieved example but not without one.

use bench::{base_config, header, run_arm, Scale};
use drfix::RagMode;
use synthllm::ModelTier;

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "Table 4 — fixes where RAG played a pivotal role",
        "§5.3, Table 4: recurring complex patterns unlocked by examples",
    );
    let no_rag = run_arm(
        "none",
        base_config(&scale, ModelTier::Gpt4o, RagMode::None),
        cases,
        Some(db),
    );
    let with_rag = run_arm(
        "skel",
        base_config(&scale, ModelTier::Gpt4o, RagMode::Skeleton),
        cases,
        Some(db),
    );
    println!(
        "fleet: no-RAG arm {} | RAG arm {}\n",
        no_rag.throughput(),
        with_rag.throughput()
    );

    let mut pivotal: std::collections::BTreeMap<String, usize> = Default::default();
    let mut n = 0usize;
    for ((case, a), b) in cases.iter().zip(&no_rag.outcomes).zip(&with_rag.outcomes) {
        if b.fixed && !a.fixed {
            n += 1;
            let label = b
                .strategy
                .map(|s| s.display().to_owned())
                .unwrap_or_else(|| "?".into());
            *pivotal.entry(label).or_default() += 1;
            let _ = case;
        }
    }
    println!("races fixed only with RAG: {n}\n");
    println!(
        "{:<34} {:>6}",
        "repair idiom unlocked by the example", "count"
    );
    for (s, k) in &pivotal {
        println!("{s:<34} {k:>6}");
    }
    println!("\npaper's recurring patterns: copies of complex structures, type");
    println!("changes propagated to all references, new mutexes guarding many");
    println!("sites, channel/WaitGroup restructuring — the same families appear");
    println!("above because examples re-rank exactly those multi-edit strategies.");
}
