//! Figure 4 (RQ2.3/RQ2.4): fix scope (function vs file) and validation
//! feedback.
//!
//! Paper: func-only 39%, file-only 33%, file+feedback 39%,
//! func→file+feedback 66%.

use bench::{base_config, header, pct, run_arm, Scale};
use drfix::RagMode;
use synthllm::{ModelTier, Scope};

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "Figure 4 — fixing scopes, their order, and failure feedback",
        "§5.3, Fig. 4: 39% / 33% / 39% / 66% with RAG+skeleton, GPT-4o",
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10}   fleet throughput",
        "configuration", "fixed", "rate", "paper"
    );
    for (label, scopes, feedback, paper) in [
        ("Func only", vec![Scope::Func], false, "39%"),
        ("File only", vec![Scope::File], false, "33%"),
        ("File + past failures", vec![Scope::File], true, "39%"),
        (
            "Func+file + past failures",
            vec![Scope::Func, Scope::File],
            true,
            "66%",
        ),
    ] {
        let mut cfg = base_config(&scale, ModelTier::Gpt4o, RagMode::Skeleton);
        cfg.scopes = scopes;
        cfg.feedback = feedback;
        let arm = run_arm(label, cfg, cases, Some(db));
        println!(
            "{label:<26} {:>6}/{:<3} {:>10} {:>10}   {}",
            arm.fixed(),
            cases.len(),
            pct(arm.rate()),
            paper,
            arm.throughput()
        );
    }
    println!("\nshape check: file-only < func-only (long contexts overwhelm),");
    println!("feedback recovers file scope, and the func→file cascade wins.");
}
