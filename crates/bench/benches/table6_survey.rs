//! Table 6: the developer survey (RQ4).
//!
//! Human-population data: regenerated from the seeded survey model with
//! the paper's marginals (21 respondents, quality 3.38±1.24, complexity
//! 3.00±0.89, 67.6% positive sentiment).

use bench::header;
use drfix::review::{mean_std, survey};
use std::collections::BTreeMap;

fn main() {
    header(
        "Table 6 — survey results on developers' perceptions of Dr.Fix",
        "§5.5, Table 6 (population model; see EXPERIMENTS.md)",
    );
    let responses = survey(0x5EED);
    println!("total developers: {}", responses.len());

    let count = |f: fn(&drfix::review::SurveyResponse) -> &'static str, title: &str| {
        let mut m: BTreeMap<&str, usize> = BTreeMap::new();
        for r in &responses {
            *m.entry(f(r)).or_default() += 1;
        }
        println!("\n{title}:");
        for (k, v) in m {
            println!(
                "  {k:45} {v:>2} ({:.0}%)",
                100.0 * v as f64 / responses.len() as f64
            );
        }
    };
    count(|r| r.experience, "Go programming experience");
    count(|r| r.familiarity, "Familiarity with concurrency in Go");
    count(|r| r.comfort, "Comfort level in fixing data races");
    count(|r| r.time_saved, "Estimated time saved by using Dr.Fix");

    let (q, qs) = mean_std(
        &responses
            .iter()
            .map(|r| r.quality as f64)
            .collect::<Vec<_>>(),
    );
    let (c, cs) = mean_std(
        &responses
            .iter()
            .map(|r| r.complexity as f64)
            .collect::<Vec<_>>(),
    );
    println!("\nQuality of fixes (1-5):      {q:.2} ± {qs:.2}   paper: 3.38 ± 1.24");
    println!("Complexity of races (1-5):   {c:.2} ± {cs:.2}   paper: 3.00 ± 0.89");
    println!(
        "Satisfaction: {:.1}% positive   paper: 67.6%",
        q / 5.0 * 100.0
    );
}
