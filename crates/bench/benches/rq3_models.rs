//! RQ3: how much do results improve with a more advanced model?
//!
//! Paper: GPT-4o 65.76% → o1-preview 73.45% (+7.7 points) on the same
//! 403 races; GPT-4 Turbo ran the 18-month deployment at 55%.

use bench::{base_config, header, pct, run_arm, Scale};
use drfix::RagMode;
use synthllm::ModelTier;

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "RQ3 — model generations",
        "§5.4: GPT-4o 65.76%, o1-preview 73.45% (+7.7 pt); Turbo deployed at 55%",
    );
    println!(
        "{:<16} {:>10} {:>10} {:>12}   fleet throughput",
        "model", "fixed", "rate", "paper"
    );
    let mut rates = Vec::new();
    for (label, tier, paper) in [
        ("GPT-4 Turbo", ModelTier::Gpt4Turbo, "55%"),
        ("GPT-4o", ModelTier::Gpt4o, "65.8%"),
        ("o1-preview", ModelTier::O1Preview, "73.5%"),
    ] {
        let cfg = base_config(&scale, tier, RagMode::Skeleton);
        let arm = run_arm(label, cfg, cases, Some(db));
        rates.push(arm.rate());
        println!(
            "{label:<16} {:>6}/{:<3} {:>10} {:>12}   {}",
            arm.fixed(),
            cases.len(),
            pct(arm.rate()),
            paper,
            arm.throughput()
        );
    }
    println!(
        "\no1-preview gains {:.1} points over GPT-4o (paper: +7.7); the gain\nconcentrates in the complex multi-edit repairs (Listing 10, deep copies).",
        (rates[2] - rates[1]) * 100.0
    );
}
