//! Figure 3 (RQ2.1/RQ2.2): how examples — and selecting them via the
//! concurrency skeleton — change the validated fix rate.
//!
//! Paper: No RAG 47%, RAG without skeleton 50%, RAG with skeleton 66%.

use bench::{base_config, header, pct, run_arm, Scale};
use drfix::RagMode;
use synthllm::ModelTier;

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "Figure 3 — impact of examples (RAG) and skeleton-based selection",
        "§5.3, Fig. 3: 47% / 50% / 66% on 403 races with GPT-4o",
    );
    println!(
        "{} races, {}-pair example DB, {} validation schedules\n",
        cases.len(),
        scale.db_pairs,
        scale.validation_runs
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10}   fleet throughput",
        "configuration", "fixed", "rate", "paper"
    );
    for (label, rag, paper) in [
        ("No RAG", RagMode::None, "47%"),
        ("RAG without skeleton", RagMode::Raw, "50%"),
        ("RAG with skeleton", RagMode::Skeleton, "66%"),
    ] {
        let cfg = base_config(&scale, ModelTier::Gpt4o, rag);
        let arm = run_arm(label, cfg, cases, Some(db));
        println!(
            "{label:<26} {:>6}/{:<3} {:>10} {:>10}   {}",
            arm.fixed(),
            cases.len(),
            pct(arm.rate()),
            paper,
            arm.throughput()
        );
    }
    println!("\nshape check: No RAG < RAG-raw < RAG-skeleton, with the");
    println!("skeleton arm far ahead — the paper's key retrieval result.");
}
