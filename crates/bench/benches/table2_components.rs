//! Table 2: the components of Dr.Fix and what this reproduction maps
//! them to — printed with one live smoke check per component.

use bench::header;
use skeleton::{skeletonize, SkeletonOptions};

fn main() {
    header(
        "Table 2 — components of Dr.Fix and their implementations",
        "§4, Table 2",
    );
    let rows = [
        (
            "Data store D",
            "ChromaDB",
            "vecdb::VectorStore (exact cosine top-k, JSON persistence)",
        ),
        (
            "Skeletonization S",
            "AST-based program slicing",
            "skeleton::skeletonize (concurrency constructs + racy vars)",
        ),
        (
            "Embedding E",
            "all-MiniLM-L6-v2 (384-d)",
            "embed::embed (384-d feature hashing, L2-normalised)",
        ),
        (
            "Similarity φ",
            "cosine similarity",
            "embed::cosine / vecdb query",
        ),
        (
            "Model M",
            "GPT-4 Turbo / 4o / o1-preview",
            "synthllm::SynthLlm (diagnosers + real AST rewrites + tier model)",
        ),
        (
            "Extra params H",
            "past context and failure info",
            "synthllm::Feedback threaded by drfix::pipeline",
        ),
        (
            "Validator V",
            "package tests x1000",
            "drfix::validate_patch (N seeded schedules + bug hash)",
        ),
    ];
    println!(
        "{:<20} {:<32} This reproduction",
        "Component", "Paper choice"
    );
    for (c, p, r) in rows {
        println!("{c:<20} {p:<32} {r}");
    }

    // Smoke checks: every component responds.
    let sk = skeletonize(
        "package p\n\nfunc f() {\n\tx := 0\n\tgo func() {\n\t\tx = 1\n\t}()\n\tx = 2\n}\n",
        &[6, 8],
        &SkeletonOptions::default(),
    )
    .expect("skeletonizer lives");
    let v = embed::embed(&sk.text);
    let mut store = vecdb::VectorStore::new(embed::DIM);
    store.insert(v.clone(), "probe").expect("store lives");
    assert_eq!(*store.query(&v, 1)[0].item, "probe");
    println!("\nsmoke check: skeletonizer → embedder → vector store round-trip OK");
}
