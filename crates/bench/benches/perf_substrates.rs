//! Criterion micro-benchmarks for the substrates: frontend throughput,
//! skeletonization, embedding, vector search, and VM+detector overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use govm::{compile_sources, CompileOptions, Vm, VmOptions};
use skeleton::{skeletonize, SkeletonOptions};

const PROGRAM: &str = r#"package bench

import "sync"

func Hot() int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			mu.Lock()
			total = total + n
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return total
}
"#;

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("golite_parse", |b| {
        b.iter(|| golite::parse_file(std::hint::black_box(PROGRAM)).unwrap())
    });
    let file = golite::parse_file(PROGRAM).unwrap();
    c.bench_function("golite_print", |b| {
        b.iter(|| golite::print_file(std::hint::black_box(&file)))
    });
}

fn bench_pipeline_parts(c: &mut Criterion) {
    c.bench_function("skeletonize", |b| {
        b.iter(|| {
            skeletonize(
                std::hint::black_box(PROGRAM),
                &[14],
                &SkeletonOptions::default(),
            )
            .unwrap()
        })
    });
    let sk = skeletonize(PROGRAM, &[14], &SkeletonOptions::default()).unwrap();
    c.bench_function("embed_384d", |b| {
        b.iter(|| embed::embed(std::hint::black_box(&sk.text)))
    });
    let mut store = vecdb::VectorStore::new(embed::DIM);
    for i in 0..272 {
        store
            .insert(embed::embed(&format!("{} variant {}", sk.text, i)), i)
            .unwrap();
    }
    let q = embed::embed(&sk.text);
    c.bench_function("vecdb_query_272", |b| {
        b.iter(|| store.query(std::hint::black_box(&q), 1))
    });
    // Partial top-k selection vs the full-sort reference: the spread
    // between these two is the retrieval win (O(n + k log k) vs
    // O(n log n)), and it widens with DB size.
    c.bench_function("vecdb_query_exhaustive_272", |b| {
        b.iter(|| store.query_exhaustive(std::hint::black_box(&q), 1))
    });
    let mut big = vecdb::VectorStore::new(embed::DIM);
    for i in 0..4096 {
        big.insert(embed::embed(&format!("{} variant {}", sk.text, i)), i)
            .unwrap();
    }
    c.bench_function("vecdb_query_4096", |b| {
        b.iter(|| big.query(std::hint::black_box(&q), 1))
    });
    c.bench_function("vecdb_query_exhaustive_4096", |b| {
        b.iter(|| big.query_exhaustive(std::hint::black_box(&q), 1))
    });
}

fn bench_fleet(c: &mut Criterion) {
    use drfix::fleet::{run_indexed, FleetConfig};
    // Scheduler overhead: the job is trivial, so this measures the
    // work-queue machinery itself at different widths.
    for threads in [1usize, 4] {
        c.bench_function(&format!("fleet_schedule_256_jobs_x{threads}"), |b| {
            let cfg = FleetConfig::new(threads);
            b.iter(|| run_indexed(&cfg, 256, |i| std::hint::black_box(i) * 3))
        });
    }
}

fn bench_vm(c: &mut Criterion) {
    let prog = compile_sources(
        &[("hot.go".into(), PROGRAM.into())],
        &CompileOptions::default(),
    )
    .unwrap();
    c.bench_function("compile", |b| {
        b.iter(|| {
            compile_sources(
                &[("hot.go".into(), PROGRAM.into())],
                &CompileOptions::default(),
            )
            .unwrap()
        })
    });
    c.bench_function("vm_run_with_race_detection", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut vm = Vm::new(
                &prog,
                VmOptions {
                    seed,
                    ..VmOptions::default()
                },
            );
            vm.run("Hot", vec![])
        })
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_pipeline_parts,
    bench_vm,
    bench_fleet
);
criterion_main!(benches);
