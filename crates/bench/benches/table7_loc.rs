//! Table 7: lines-of-code comparison — human fixes vs Dr.Fix fixes vs
//! vector-DB examples, by percentile.
//!
//! Paper: P50 10/9, P75 15/15, P90 46/29, P95 49/41, P99 97/46,
//! P100 98/46 (human/Dr.Fix), VectorDB P100 94.

use bench::{base_config, header, percentile, run_arm, Scale};
use corpus::{diff_lines, generate_example_db, CorpusConfig};
use drfix::RagMode;
use synthllm::ModelTier;

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "Table 7 — LoC of fixes: human vs Dr.Fix vs vector-DB examples",
        "§5.5, Table 7",
    );
    let cfg = base_config(&scale, ModelTier::Gpt4Turbo, RagMode::Skeleton);
    let arm = run_arm("deploy", cfg, cases, Some(db));
    println!("fleet: {}\n", arm.stats.summary());

    let human: Vec<f64> = cases
        .iter()
        .filter_map(|c| c.human_fix_loc())
        .map(|v| v as f64)
        .collect();
    let drfix_loc: Vec<f64> = arm
        .outcomes
        .iter()
        .filter_map(|o| o.patch_loc)
        .map(|v| v as f64)
        .collect();
    let pairs = generate_example_db(&CorpusConfig {
        eval_cases: 0,
        db_pairs: scale.db_pairs,
        seed: 0xD0F1,
    });
    let vecdb_loc: Vec<f64> = pairs
        .iter()
        .map(|p| diff_lines(&p.buggy, &p.fixed) as f64)
        .collect();

    println!(
        "{:>6} {:>10} {:>10} {:>10}   (paper H/D: 10/9, 15/15, 46/29, 49/41, 97/46, 98/46)",
        "%tile", "Human(H)", "Dr.Fix(D)", "VectorDB"
    );
    for p in [50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
        println!(
            "{:>5.0}  {:>10.0} {:>10.0} {:>10.0}",
            p,
            percentile(&human, p),
            percentile(&drfix_loc, p),
            percentile(&vecdb_loc, p),
        );
    }
    println!(
        "\nshape check: Dr.Fix fixes stay tighter than human fixes at the\ntail (the paper's H/D ratio grows with the percentile)."
    );
}
