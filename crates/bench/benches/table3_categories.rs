//! Table 3: race categories and their frequency in the fixes Dr.Fix
//! produced and in the example database.
//!
//! Paper: capture-by-reference 41% of fixes (37.5% of VectorDB),
//! missing-sync 26% (14.7%), parallel-test 13% (11.8%), loop-var 6%
//! (2.6%), map 5% (5.2%), slice 5% (2.6%), others 4% (25.7%).

use bench::{base_config, header, run_arm, Scale};
use corpus::{generate_example_db, CorpusConfig, RaceCategory};
use drfix::RagMode;
use synthllm::ModelTier;

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "Table 3 — data race categories in produced fixes and the vector DB",
        "§5.2, Table 3",
    );
    let cfg = base_config(&scale, ModelTier::Gpt4Turbo, RagMode::Skeleton);
    let arm = run_arm("deploy", cfg, cases, Some(db));
    println!("fleet: {}\n", arm.stats.summary());

    let mut fixes_by_cat = std::collections::HashMap::new();
    let mut total_fixed = 0usize;
    for (case, o) in cases.iter().zip(&arm.outcomes) {
        if o.fixed {
            *fixes_by_cat.entry(case.category).or_insert(0usize) += 1;
            total_fixed += 1;
        }
    }
    let pairs = generate_example_db(&CorpusConfig {
        eval_cases: 0,
        db_pairs: scale.db_pairs,
        seed: 0xD0F1,
    });
    let mut db_by_cat = std::collections::HashMap::new();
    for p in &pairs {
        *db_by_cat.entry(p.category).or_insert(0usize) += 1;
    }

    println!(
        "{:<42} {:>16} {:>16}",
        "Category", "Dr.Fix fixes", "VectorDB"
    );
    let paper_fix = [41.0, 26.0, 13.0, 6.0, 5.0, 5.0, 4.0];
    let paper_db = [37.5, 14.7, 11.8, 2.6, 5.2, 2.6, 25.7];
    for (i, cat) in RaceCategory::all().iter().enumerate() {
        let f = *fixes_by_cat.get(cat).unwrap_or(&0);
        let d = *db_by_cat.get(cat).unwrap_or(&0);
        println!(
            "{:<42} {:>4} ({:>4.1}%) {:>6} ({:>4.1}%)   paper: {:.0}% / {:.1}%",
            cat.display(),
            f,
            100.0 * f as f64 / total_fixed.max(1) as f64,
            d,
            100.0 * d as f64 / pairs.len().max(1) as f64,
            paper_fix[i],
            paper_db[i],
        );
    }
    println!(
        "\ntotal fixes: {total_fixed}/{} — capture-by-reference dominates, as deployed",
        cases.len()
    );
}
