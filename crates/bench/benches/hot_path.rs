//! `hot_path` — interpreter + detector hot-path microbenchmarks.
//!
//! Complements `perfscan` (the deterministic counter scan behind the CI
//! perf gate) with three focused measurements:
//!
//! 1. **Campaign throughput** per exposure-corpus category — the same
//!    workload as `perfscan` at reduced scale, reporting
//!    instructions/sec and the same-epoch fast-path hit rate.
//! 2. **VM construction** — `Vm::new` (re-interning the string pool
//!    every run) vs `Vm::with_context` (the shared [`govm::ProgContext`]
//!    campaigns use). Construction used to be 26–47% of a short
//!    campaign run.
//! 3. **Detector event cost** — same-epoch repeats (fast path) vs
//!    epoch-advancing accesses (slow path, stack snapshot + full
//!    transfer function), in events/sec.
//!
//! The bench asserts its contract — fast path dominating the spin-heavy
//! categories, shared-context construction strictly cheaper, counters
//! replaying deterministically — so `make perf-smoke`-adjacent CI runs
//! fail loudly instead of silently reporting nonsense.
//!
//! Knobs: `DRFIX_PERF_CASES`, `DRFIX_PERF_RUNS`, `DRFIX_PERF_REPEAT`
//! (shared with `perfscan`).

use bench::hotpath::{self, HotpathScale};
use govm::{compile_sources, CompileOptions, ProgContext, Vm, VmOptions};
use racedet::{Detector, FastPath, StackGen};
use std::hint::black_box;
use std::rc::Rc;
use std::time::Instant;

fn main() {
    let scale = HotpathScale {
        cases: 14,
        runs: 8,
        repeat: 3,
        heap_cases: 3,
        churn_cases: 2,
        gate_cases: 4,
        tournament_cases: 6,
        campaign_cases: 12,
    };

    bench::header(
        "hot_path — VM + FastTrack hot-path microbenchmarks",
        "HardRace (per-access overhead budgets); FastTrack (PLDI 2009) same-epoch fast path",
    );

    // 1. Campaign throughput at reduced scale.
    let report = hotpath::run_scan(&scale);
    println!("\n{}", hotpath::render_table(&report));
    assert!(
        report.exposure.counters.fast_hit_rate() > 0.4,
        "fast path must dominate the exposure corpus: {:?}",
        report.exposure.counters
    );

    // 2. VM construction: fresh interning vs shared context.
    let (name, src, test) = hotpath::sync_heavy_cases()
        .into_iter()
        .next()
        .expect("sync-heavy case");
    let prog = compile_sources(
        &[(format!("{name}.go"), src.to_owned())],
        &CompileOptions::default(),
    )
    .expect("sync-heavy case compiles");
    let n = 4000u64;
    let t0 = Instant::now();
    for i in 0..n {
        let vm = Vm::new(
            &prog,
            VmOptions {
                seed: i,
                ..VmOptions::default()
            },
        );
        black_box(&vm);
    }
    let fresh_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;
    let ctx = Rc::new(ProgContext::new(&prog));
    let t0 = Instant::now();
    for i in 0..n {
        let vm = Vm::with_context(
            &prog,
            VmOptions {
                seed: i,
                ..VmOptions::default()
            },
            ctx.clone(),
        );
        black_box(&vm);
    }
    let shared_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;
    println!(
        "vm construction ({test}, pool {} names): fresh {:.0}ns vs shared-context {:.0}ns ({:.1}x)",
        prog.pool.len(),
        fresh_ns,
        shared_ns,
        fresh_ns / shared_ns.max(1e-9),
    );
    assert!(
        shared_ns < fresh_ns,
        "shared-context construction must be cheaper: {shared_ns:.0}ns vs {fresh_ns:.0}ns"
    );

    // 3. Detector event cost, fast vs slow path.
    let events = 200_000u64;
    let mut det = Detector::new();
    let stack: Vec<u32> = vec![1, 2, 3];
    det.write(0, 1, 0, &stack);
    det.read(0, 1, 0, &stack); // prime the read epoch
    let hits_before = det.stats().read_fast_hits;
    let t0 = Instant::now();
    for _ in 0..events {
        if det.read_fast(0, 1, StackGen::NONE) == FastPath::Miss {
            det.read_slow(0, 1, 0, &stack, StackGen::NONE);
        }
    }
    let fast_ns = t0.elapsed().as_secs_f64() * 1e9 / events as f64;
    let fast_hits = det.stats().read_fast_hits - hits_before;
    assert_eq!(fast_hits, events, "same-epoch repeats must all hit");

    let mut det = Detector::new();
    let sync_id = 7;
    let t0 = Instant::now();
    for _ in 0..events {
        // Epoch advances every iteration and no stack generation is
        // supplied: every access takes the full slow path with a
        // (host-side) stack to copy, like a lock-per-write program on
        // the pre-cache tree.
        det.acquire(0, sync_id);
        if det.write_fast(0, 1, StackGen::NONE) == FastPath::Miss {
            det.write_slow(0, 1, 0, &stack, StackGen::NONE);
        }
        det.release(0, sync_id);
    }
    let slow_ns = t0.elapsed().as_secs_f64() * 1e9 / events as f64;
    assert_eq!(det.stats().write_fast_hits, 0, "epoch advances must miss");
    println!(
        "detector event: same-epoch fast path {fast_ns:.1}ns vs lock-stride slow path \
         {slow_ns:.1}ns per event ({:.1}x)",
        slow_ns / fast_ns.max(1e-9),
    );
    println!(
        "slow-path clock buffers: {} allocs, {} avoided by reuse",
        det.stats().clock_allocs,
        det.stats().clock_allocs_avoided,
    );
    assert!(
        det.stats().clock_allocs_avoided > det.stats().clock_allocs,
        "steady-state lock handoffs must reuse buffers: {:?}",
        det.stats()
    );

    // 4. The same lock-stride loop with an unchanged stack generation:
    //    the lock-aware owner cache absorbs every post-warmup event and
    //    the release-epoch check short-circuits every self-reacquire.
    let mut det = Detector::new();
    let gen = StackGen::from_parts(0, 42);
    det.acquire(0, sync_id);
    if det.write_fast(0, 1, gen) == FastPath::Miss {
        det.write_slow(0, 1, 0, &stack, gen); // warm the owner cache
    }
    det.release(0, sync_id);
    let t0 = Instant::now();
    for _ in 0..events {
        det.acquire(0, sync_id);
        if det.write_fast(0, 1, gen) == FastPath::Miss {
            det.write_slow(0, 1, 0, &stack, gen);
        }
        det.release(0, sync_id);
    }
    let cached_ns = t0.elapsed().as_secs_f64() * 1e9 / events as f64;
    assert_eq!(
        det.stats().write_sync_hits,
        events,
        "steady-state lock strides must all cache-hit: {:?}",
        det.stats()
    );
    assert_eq!(det.stats().write_fast_hits, 0, "epoch still advances");
    assert_eq!(
        det.stats().sync_epoch_hits,
        events,
        "every self-reacquire is provable from the release epoch"
    );
    println!(
        "lock-stride event with the sync-epoch cache: {cached_ns:.1}ns \
         (was {slow_ns:.1}ns slow-path, {:.1}x)",
        slow_ns / cached_ns.max(1e-9),
    );
    assert!(
        cached_ns < slow_ns,
        "owner-cache hits must beat the slow path: {cached_ns:.1}ns vs {slow_ns:.1}ns"
    );

    println!("\nhot_path contract checks passed");
}
