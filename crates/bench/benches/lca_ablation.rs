//! RQ2.5: the Lowest Common Ancestor fix location.
//!
//! Paper: 62.53% without LCA vs 66.75% with LCA (~4 points).

use bench::{base_config, header, pct, run_arm, Scale};
use drfix::{LocationKind, RagMode};
use synthllm::ModelTier;

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "LCA ablation — impact of the lowest-common-ancestor location",
        "§5.3 (RQ2.5): 62.53% without vs 66.75% with LCA",
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10}   fleet throughput",
        "configuration", "fixed", "rate", "paper"
    );
    let mut rates = Vec::new();
    for (label, locs, paper) in [
        (
            "Without LCA",
            vec![LocationKind::Test, LocationKind::Leaf],
            "62.5%",
        ),
        ("With LCA", LocationKind::default_order(), "66.8%"),
    ] {
        let mut cfg = base_config(&scale, ModelTier::Gpt4o, RagMode::Skeleton);
        cfg.locations = locs;
        let arm = run_arm(label, cfg, cases, Some(db));
        rates.push(arm.rate());
        println!(
            "{label:<26} {:>6}/{:<3} {:>10} {:>10}   {}",
            arm.fixed(),
            cases.len(),
            pct(arm.rate()),
            paper,
            arm.throughput()
        );
    }
    println!(
        "\nLCA adds {:.1} points (paper: ~4). The gain comes from races whose\nonly repair point is the common spawn site.",
        (rates[1] - rates[0]) * 100.0
    );
}
