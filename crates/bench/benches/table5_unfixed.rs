//! Table 5: categories of data races Dr.Fix did not fix.
//!
//! Paper: >2-file changes 21%, remove-parallelism 19%, business-logic
//! 15%, isolate-test 10%, external 10%, refactoring 6%, others 6%,
//! deep-copy 5%, singleton 4%, non-trivial 4%.

use bench::{base_config, header, run_arm, Scale};
use corpus::HardCategory;
use drfix::RagMode;
use synthllm::ModelTier;

fn main() {
    let scale = Scale::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    header(
        "Table 5 — categories of data races not fixed by Dr.Fix",
        "§5.3, Table 5",
    );
    let cfg = base_config(&scale, ModelTier::Gpt4o, RagMode::Skeleton);
    let arm = run_arm("ablate", cfg, cases, Some(db));
    println!("fleet: {}\n", arm.stats.summary());

    let mut unfixed_by_cat: std::collections::HashMap<&str, usize> =
        std::collections::HashMap::new();
    let mut unfixed_total = 0usize;
    for (case, o) in cases.iter().zip(&arm.outcomes) {
        if !o.fixed {
            unfixed_total += 1;
            let label = case.hard.map(|h| h.display()).unwrap_or("Others");
            *unfixed_by_cat.entry(label).or_default() += 1;
        }
    }
    let paper = [21, 19, 15, 10, 10, 6, 6, 5, 4, 4];
    println!("{:<40} {:>14} {:>10}", "Category", "unfixed", "paper %");
    for (i, h) in HardCategory::all().iter().enumerate() {
        let n = *unfixed_by_cat.get(h.display()).unwrap_or(&0);
        println!(
            "{:<40} {:>4} ({:>4.1}%) {:>9}%",
            h.display(),
            n,
            100.0 * n as f64 / unfixed_total.max(1) as f64,
            paper[i]
        );
    }
    let residual = unfixed_by_cat
        .iter()
        .filter(|(k, _)| !HardCategory::all().iter().any(|h| h.display() == **k))
        .map(|(_, v)| v)
        .sum::<usize>();
    println!(
        "{:<40} {:>4} (capability misses on fixable races)",
        "(plain fixable, model missed)", residual
    );
    println!("\ntotal unfixed: {unfixed_total}/{}", cases.len());
}
