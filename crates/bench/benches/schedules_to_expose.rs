//! `schedules_to_expose` — exposure efficiency of the schedule policies.
//!
//! Dr.Fix's reproduce and validate steps (§4.4.1) run each test under
//! many schedules; the number of schedules until the planted race first
//! surfaces is the cost of detection, and the instructions burnt per
//! validation campaign is the cost of confirmation. This bench measures
//! both, per Table 3 corpus category, for every built-in policy:
//!
//! 1. **Schedules to first exposure** — over the *ordering-sensitive*
//!    exposure corpus ([`corpus::generate_exposure_corpus`]): races
//!    that only manifest when the worker goroutine is starved past a
//!    window, i.e. the schedule hard tail. (The standard Table 3
//!    corpus plants races with no happens-before edge at all, so every
//!    policy exposes those at a median of 1 schedule — a sanity row is
//!    printed for reference.)
//! 2. **Validation cost under dedup + early exit** — validate each
//!    exposure case's ground-truth human fix under a fixed schedule
//!    budget, with and without schedule-signature dedup early-exit and
//!    a campaign instruction budget, and report the savings.
//!
//! Knobs: `DRFIX_STE_CASES` (exposure corpus size, default 56),
//! `DRFIX_STE_MAX_SCHED` (schedule budget per case, default 200),
//! `DRFIX_STE_VALIDATION_RUNS` (fixed validation budget, default 256 —
//! the paper runs 1000 schedules per validation), `DRFIX_THREADS`
//! (fleet width).

use corpus::{CorpusConfig, RaceCase, RaceCategory};
use drfix::fleet::{self, FleetConfig};
use govm::{compile_sources, run_test_many, CompileOptions, SchedulePolicy, TestConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median over a slice (nearest-rank on a sorted copy).
fn median(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    v[(v.len() - 1) / 2]
}

struct Exposure {
    /// Schedules until the race first surfaced (`None` = never within
    /// the budget).
    schedules: Option<u32>,
    /// Instructions executed up to (and including) the exposing run.
    steps: u64,
}

/// Runs one case under `policy` until the planted race surfaces.
fn expose(case: &RaceCase, policy: &SchedulePolicy, max_sched: u32, seed: u64) -> Exposure {
    let Ok(prog) = compile_sources(&case.files, &CompileOptions::default()) else {
        return Exposure {
            schedules: None,
            steps: 0,
        };
    };
    let cfg = TestConfig {
        runs: max_sched,
        seed,
        stop_on_race: true,
        policy: policy.clone(),
        ..TestConfig::default()
    };
    let out = run_test_many(&prog, &case.test, &cfg);
    Exposure {
        schedules: if out.races.is_empty() {
            None
        } else {
            Some(out.runs)
        },
        steps: out.steps,
    }
}

fn main() {
    let cases_total = env_usize("DRFIX_STE_CASES", 56);
    let max_sched = env_usize("DRFIX_STE_MAX_SCHED", 200) as u32;
    let validation_runs = env_usize("DRFIX_STE_VALIDATION_RUNS", 256) as u32;
    let fleet_cfg = FleetConfig::from_env();

    bench::header(
        "schedules_to_expose — median schedules to first race exposure per policy",
        "§4.4.1 (reproduce/validate under many schedules); Table 3 categories",
    );

    let corpus = corpus::generate_exposure_corpus(&CorpusConfig {
        eval_cases: cases_total,
        db_pairs: 0,
        seed: 0xD0F1,
    });

    let policies: Vec<SchedulePolicy> = vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ];

    let mut by_cat: Vec<(RaceCategory, Vec<&RaceCase>)> = Vec::new();
    for cat in RaceCategory::all() {
        let picked: Vec<&RaceCase> = corpus.iter().filter(|c| c.category == *cat).collect();
        if !picked.is_empty() {
            by_cat.push((*cat, picked));
        }
    }

    println!(
        "\nexposure corpus: {} ordering-sensitive cases, budget {max_sched} schedules/case, fleet ×{}",
        corpus.len(),
        fleet_cfg.threads
    );
    println!(
        "\n{:<36} {:>16} {:>16} {:>16}",
        "category (median sched to expose)",
        policies[0].label(),
        policies[1].label(),
        policies[2].label()
    );

    // One fleet job per (category, case, policy) triple.
    let mut jobs: Vec<(usize, &RaceCase, &SchedulePolicy)> = Vec::new();
    for (ci, (_, cases)) in by_cat.iter().enumerate() {
        for case in cases {
            for policy in &policies {
                jobs.push((ci, case, policy));
            }
        }
    }
    let run = fleet::run_indexed(&fleet_cfg, jobs.len(), |i| {
        let (ci, case, policy) = jobs[i];
        let seed = fleet::derive_case_seed(0x57E, i as u64);
        (ci, policy.label(), expose(case, policy, max_sched, seed))
    });

    // Aggregate per (category, policy).
    let mut table: Vec<Vec<Vec<&Exposure>>> = vec![vec![Vec::new(); policies.len()]; by_cat.len()];
    for (ci, plabel, exp) in &run.results {
        let pi = policies.iter().position(|p| p.label() == *plabel).unwrap();
        table[*ci][pi].push(exp);
    }

    let mut pct_wins = 0usize;
    let mut total_steps: Vec<u64> = vec![0; policies.len()];
    let mut category_medians: Vec<(String, Vec<u64>)> = Vec::new();
    for (ci, (cat, cases)) in by_cat.iter().enumerate() {
        let mut cells = Vec::new();
        let mut medians = Vec::new();
        for (pi, _) in policies.iter().enumerate() {
            let exps = &table[ci][pi];
            // A case that never exposed within the budget counts as
            // `max_sched` schedules — a conservative floor, flagged in
            // the cell as `>`.
            let censored = exps.iter().any(|e| e.schedules.is_none());
            let all: Vec<u64> = exps
                .iter()
                .map(|e| e.schedules.map(u64::from).unwrap_or(u64::from(max_sched)))
                .collect();
            let exposed = exps.iter().filter(|e| e.schedules.is_some()).count();
            total_steps[pi] += exps.iter().map(|e| e.steps).sum::<u64>();
            let med = median(&all);
            let marker = if censored && med >= u64::from(max_sched) {
                ">"
            } else {
                ""
            };
            cells.push(format!("{marker}{med} ({exposed}/{})", cases.len()));
            medians.push(med);
        }
        println!(
            "{:<36} {:>16} {:>16} {:>16}",
            cat.display(),
            cells[0],
            cells[1],
            cells[2]
        );
        if medians[1] < medians[0] {
            pct_wins += 1;
        }
        category_medians.push((cat.display().to_owned(), medians));
    }
    println!("\ninstructions spent exposing (whole corpus, per policy):");
    for (pi, p) in policies.iter().enumerate() {
        println!("  {:<16} {:>12}", p.label(), total_steps[pi]);
    }
    println!(
        "\npct beats random on {pct_wins}/{} categories (median schedules to expose)",
        by_cat.len()
    );

    // Regression gate: this bench doubles as the CI exposure smoke, so
    // the exposure contract is asserted, not just printed — PCT must
    // expose every case within the budget and its per-category median
    // must never fall behind uniform-random.
    for (ci, (cat, cases)) in by_cat.iter().enumerate() {
        let pct_exposed = table[ci][1]
            .iter()
            .filter(|e| e.schedules.is_some())
            .count();
        assert_eq!(
            pct_exposed,
            cases.len(),
            "exposure regression: pct missed {}/{} {} cases within {max_sched} schedules",
            cases.len() - pct_exposed,
            cases.len(),
            cat.display()
        );
    }
    for (name, medians) in &category_medians {
        assert!(
            medians[1] <= medians[0],
            "exposure regression: pct median {} > random median {} on {name}",
            medians[1],
            medians[0]
        );
    }

    // Sanity row: the standard Table 3 corpus has no happens-before
    // edge on its planted races — every policy exposes at median 1.
    let std_corpus = corpus::generate_eval_corpus(&CorpusConfig {
        eval_cases: 40,
        db_pairs: 0,
        seed: 0xD0F1,
    });
    let std_cases: Vec<&RaceCase> = std_corpus.iter().filter(|c| c.fixable).take(12).collect();
    let std_run = fleet::run_indexed(&fleet_cfg, std_cases.len() * policies.len(), |i| {
        let case = std_cases[i / policies.len()];
        let policy = &policies[i % policies.len()];
        let seed = fleet::derive_case_seed(0x57D, i as u64);
        expose(case, policy, max_sched, seed)
            .schedules
            .map(u64::from)
            .unwrap_or(u64::from(max_sched))
    });
    println!(
        "standard Table 3 corpus sanity: median schedules to expose = {} (all policies)",
        median(&std_run.results)
    );

    // ---- validation cost: dedup + early exit on the human fixes ------
    bench::header(
        "validation cost — schedule-signature dedup + budgeted early exit",
        "§4.4.1 (1000-schedule validation); fixed budget, instructions saved",
    );
    let fixes: Vec<(&RaceCase, &Vec<(String, String)>)> = corpus
        .iter()
        .filter_map(|c| c.human_fix.as_ref().map(|f| (c, f)))
        .collect();
    let arms: [(&str, Option<u32>, Option<u64>); 3] = [
        ("baseline (no dedup)", None, None),
        ("dedup streak 8", Some(8), None),
        ("dedup 8 + 20k instr cap", Some(8), Some(20_000)),
    ];
    println!(
        "\n{} human fixes × {validation_runs} validation schedules each:",
        fixes.len()
    );
    let mut baseline_steps = 0u64;
    for (label, streak, budget) in arms {
        let run = fleet::run_indexed(&fleet_cfg, fixes.len(), |i| {
            let (case, fix) = &fixes[i];
            let Ok(prog) = compile_sources(fix, &CompileOptions::default()) else {
                return (0u64, 0u32, false);
            };
            let cfg = TestConfig {
                runs: validation_runs,
                seed: fleet::derive_case_seed(0xA11D, i as u64),
                stop_on_race: false,
                dedup_streak: streak,
                max_total_steps: budget,
                ..TestConfig::default()
            };
            let out = run_test_many(&prog, &case.test, &cfg);
            (out.steps, out.runs, out.is_clean())
        });
        let steps: u64 = run.results.iter().map(|(s, _, _)| s).sum();
        let runs: u32 = run.results.iter().map(|(_, r, _)| r).sum();
        let clean = run.results.iter().filter(|(_, _, c)| *c).count();
        if baseline_steps == 0 {
            baseline_steps = steps;
        }
        println!(
            "  {label:<24} {steps:>12} instr  {runs:>6} schedules  {clean}/{} clean  ({:.1}% of baseline instr)",
            fixes.len(),
            100.0 * steps as f64 / baseline_steps.max(1) as f64
        );
        // Regression gate: early exits must save work, never correctness
        // — every ground-truth fix validates clean under every arm, and
        // no arm spends more instructions than the unbounded baseline.
        assert_eq!(
            clean,
            fixes.len(),
            "{label}: a human fix stopped validating clean"
        );
        assert!(
            steps <= baseline_steps,
            "{label}: dedup/early-exit arm spent more instructions than baseline"
        );
    }
}
