//! `lintcorpus` — the static-analyzer false-positive gate behind
//! `make lint-corpus`.
//!
//! Sweeps `statcheck` over every program family the pipeline treats as
//! *correct* and fails (exit code 1) if the analyzer reports anything
//! on them:
//!
//! - the human fix of every eval-corpus case (the reference patches
//!   dynamic validation accepts — a diagnostic here would let the gate
//!   veto a genuine fix);
//! - the clean `LintShapes` control;
//! - the synthetic perf families (sync-heavy, LargeHeap, Churn) — the
//!   lock-dense programs where lockset analysis is most tempted to
//!   cry wolf.
//!
//! The racy eval-corpus originals are additionally required to stay
//! free of *error-tier* findings: their bug is a data race, not broken
//! lock discipline, so an error there would poison every candidate
//! spliced into the codebase before the model even runs.
//!
//! As a teeth check, the non-clean `LintShapes` fixtures must each keep
//! firing their expected rules (the golden test pins the exact output;
//! this guards against a silently lobotomised analyzer passing the
//! zero-FP sweep).
//!
//! Scale knob: `DRFIX_LINT_CASES` (default 120) sizes the eval corpus.

use corpus::CorpusConfig;
use std::process::ExitCode;

/// One scanned family's tally.
struct Tally {
    family: &'static str,
    programs: usize,
    errors: usize,
    warnings: usize,
}

fn scan(files: &[(String, String)]) -> (usize, usize) {
    let reports = statcheck::check_sources(files)
        .unwrap_or_else(|(f, d)| panic!("corpus file {f} does not parse: {d}"));
    let errors = statcheck::count_severity(&reports, golite::diag::Severity::Error);
    let warnings = statcheck::count_severity(&reports, golite::diag::Severity::Warning);
    (errors, warnings)
}

fn main() -> ExitCode {
    let cases: usize = std::env::var("DRFIX_LINT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    bench::header(
        "lintcorpus — statcheck false-positive sweep over the correct programs",
        "Dr.Fix §4.4 (validation must not veto genuine fixes)",
    );

    let corpus = corpus::generate_eval_corpus(&CorpusConfig {
        eval_cases: cases,
        db_pairs: 0,
        seed: 0xD0F1,
    });

    let mut tallies: Vec<Tally> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // Racy originals: error tier must stay silent (warnings are the
    // analyzer speaking about genuinely suspicious shapes and are
    // reported, not gated).
    let mut racy = Tally {
        family: "racy originals",
        programs: 0,
        errors: 0,
        warnings: 0,
    };
    for case in &corpus {
        let (e, w) = scan(&case.files);
        racy.programs += 1;
        racy.errors += e;
        racy.warnings += w;
        if e > 0 {
            failures.push(format!(
                "racy original {}: {e} error-tier finding(s) — the gate would reject \
                 every candidate for this case",
                case.id
            ));
        }
    }
    tallies.push(racy);

    // The clean set: any diagnostic at all is a false positive.
    let mut clean_sets: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for case in &corpus {
        if let Some(fix) = &case.human_fix {
            let mut fixed = case.files.clone();
            for (name, src) in fix {
                if let Some(slot) = fixed.iter_mut().find(|(n, _)| n == name) {
                    slot.1 = src.clone();
                }
            }
            clean_sets.push((format!("human fix {}", case.id), fixed));
        }
    }
    let fixes = Tally {
        family: "human fixes",
        programs: clean_sets.len(),
        errors: 0,
        warnings: 0,
    };
    tallies.push(fixes);

    let clean_shape = corpus::lint_shapes()
        .into_iter()
        .find(|s| s.id == "clean")
        .expect("LintShapes clean control");
    clean_sets.push((
        "lint-shape clean".to_owned(),
        vec![(clean_shape.file.to_owned(), clean_shape.source.to_owned())],
    ));
    tallies.push(Tally {
        family: "lint-shape clean",
        programs: 1,
        errors: 0,
        warnings: 0,
    });

    let mut perf = Tally {
        family: "perf families",
        programs: 0,
        errors: 0,
        warnings: 0,
    };
    let mut perf_sets: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for (name, src, _test) in bench::hotpath::sync_heavy_cases() {
        perf_sets.push((
            format!("sync-heavy {name}"),
            vec![(format!("{name}.go"), src.to_owned())],
        ));
    }
    for case in corpus::generate_large_heap_corpus(3, 0xD0F1) {
        perf_sets.push((format!("large-heap {}", case.id), case.files));
    }
    for case in corpus::generate_churn_corpus(3, 0xD0F1) {
        perf_sets.push((format!("churn {}", case.id), case.files));
    }
    perf.programs = perf_sets.len();
    tallies.push(perf);
    clean_sets.extend(perf_sets);

    for (label, files) in &clean_sets {
        let (e, w) = scan(files);
        if e + w > 0 {
            failures.push(format!(
                "{label}: {e} error(s) + {w} warning(s) on a correct program"
            ));
            let reports = statcheck::check_sources(files).expect("re-scan");
            for r in &reports {
                let src = files
                    .iter()
                    .find(|(n, _)| *n == r.file)
                    .map(|(_, s)| s.as_str())
                    .unwrap_or("");
                for d in &r.diagnostics {
                    eprintln!("  {}", d.render(&r.file, src));
                }
            }
        }
        let idx = match label.as_str() {
            l if l.starts_with("human fix") => 1,
            l if l.starts_with("lint-shape") => 2,
            _ => 3,
        };
        tallies[idx].errors += e;
        tallies[idx].warnings += w;
    }

    // Teeth check: the misuse fixtures must still fire.
    for shape in corpus::lint_shapes() {
        if shape.id == "clean" {
            continue;
        }
        let report = statcheck::check_file(shape.file, shape.source)
            .unwrap_or_else(|d| panic!("lint shape {} does not parse: {d}", shape.id));
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
        if rules != shape.expected_rules {
            failures.push(format!(
                "lint shape {}: expected rules {:?}, analyzer reported {:?} — the sweep \
                 has no teeth if the misuse fixtures go silent",
                shape.id, shape.expected_rules, rules
            ));
        }
    }

    println!(
        "\n{:<18} {:>9} {:>8} {:>9}",
        "family", "programs", "errors", "warnings"
    );
    for t in &tallies {
        println!(
            "{:<18} {:>9} {:>8} {:>9}",
            t.family, t.programs, t.errors, t.warnings
        );
    }

    if failures.is_empty() {
        println!(
            "\nlint-corpus OK: zero false positives across {} correct programs \
             (and every misuse fixture still fires)",
            tallies.iter().skip(1).map(|t| t.programs).sum::<usize>()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nlint-corpus FAILED: {} violation(s)", failures.len());
        for f in &failures {
            eprintln!("- {f}");
        }
        ExitCode::FAILURE
    }
}
