//! Calibration harness: runs the headline ablation arms over a corpus
//! slice and prints fix rates next to the paper's numbers. Used while
//! tuning the capability model; kept as a fast sanity-check binary.
//!
//! Every arm runs through the fleet executor (`DRFIX_THREADS` workers,
//! per-case derived seeds — outcomes are bit-identical at any width),
//! and the run ends with a measured serial-vs-fleet speedup check.

use bench::{base_config, pct, run_arm, run_arm_with, Scale};
use drfix::fleet::FleetConfig;
use drfix::{LocationKind, RagMode, SchedulePolicy};
use synthllm::{ModelTier, Scope};

fn main() {
    let scale = Scale::from_env();
    let fleet = FleetConfig::from_env();
    let cases = bench::eval_corpus(&scale);
    let db = bench::example_db(&scale);
    println!(
        "corpus: {} cases ({} fixable), db: {} pairs, {} validation runs, policy: {}, fleet: {} thread{}",
        cases.len(),
        cases.iter().filter(|c| c.fixable).count(),
        scale.db_pairs,
        scale.validation_runs,
        scale.policy.label(),
        fleet.threads,
        if fleet.threads == 1 { "" } else { "s" },
    );

    // Fig. 3 arms (GPT-4o).
    for (label, rag, paper) in [
        ("No RAG", RagMode::None, "47%"),
        ("RAG without skeleton", RagMode::Raw, "50%"),
        ("RAG with skeleton", RagMode::Skeleton, "66%"),
    ] {
        let cfg = base_config(&scale, ModelTier::Gpt4o, rag);
        let arm = run_arm(label, cfg, cases, Some(db));
        println!(
            "{label:24} measured {:>6}  (paper {paper})  [{}]",
            pct(arm.rate()),
            arm.throughput()
        );
    }

    // Fig. 4 arms.
    for (label, scopes, feedback, paper) in [
        ("Func only", vec![Scope::Func], false, "39%"),
        ("File only", vec![Scope::File], false, "33%"),
        ("File + feedback", vec![Scope::File], true, "39%"),
        (
            "Func+file + feedback",
            vec![Scope::Func, Scope::File],
            true,
            "66%",
        ),
    ] {
        let mut cfg = base_config(&scale, ModelTier::Gpt4o, RagMode::Skeleton);
        cfg.scopes = scopes;
        cfg.feedback = feedback;
        let arm = run_arm(label, cfg, cases, Some(db));
        println!(
            "{label:24} measured {:>6}  (paper {paper})  [{}]",
            pct(arm.rate()),
            arm.throughput()
        );
    }

    // LCA ablation.
    for (label, locs, paper) in [
        (
            "Without LCA",
            vec![LocationKind::Test, LocationKind::Leaf],
            "62.5%",
        ),
        ("With LCA", LocationKind::default_order(), "66.8%"),
    ] {
        let mut cfg = base_config(&scale, ModelTier::Gpt4o, RagMode::Skeleton);
        cfg.locations = locs;
        let arm = run_arm(label, cfg, cases, Some(db));
        println!(
            "{label:24} measured {:>6}  (paper {paper})  [{}]",
            pct(arm.rate()),
            arm.throughput()
        );
    }

    if std::env::var("DRFIX_DEBUG").is_ok() {
        let cfg = base_config(&scale, ModelTier::O1Preview, RagMode::Skeleton);
        let arm = run_arm("debug", cfg, cases, Some(db));
        for (case, o) in cases.iter().zip(&arm.outcomes) {
            if !o.fixed && (case.fixable || case.hard.is_some()) {
                println!(
                    "UNFIXED {} cat={:?} hard={:?} fixable={} lca={} var={:?} fail={:?} calls={}",
                    case.id,
                    case.category,
                    case.hard,
                    case.fixable,
                    case.lca_only,
                    o.racy_var,
                    o.failure,
                    o.llm_calls
                );
            }
        }
    }

    // RQ3 tiers.
    for (label, tier, paper) in [
        ("GPT-4 Turbo", ModelTier::Gpt4Turbo, "55% (deployment)"),
        ("GPT-4o", ModelTier::Gpt4o, "65.8%"),
        ("o1-preview", ModelTier::O1Preview, "73.5%"),
    ] {
        let cfg = base_config(&scale, tier, RagMode::Skeleton);
        let arm = run_arm(label, cfg, cases, Some(db));
        println!(
            "{label:24} measured {:>6}  (paper {paper})  [{}]",
            pct(arm.rate()),
            arm.throughput()
        );
    }

    // Scheduler policies: the skeleton arm under each exploration
    // strategy for detection and validation. Fix rates must stay in the
    // same band — the policies trade schedules-to-exposure (see the
    // `schedules_to_expose` bench), not correctness.
    for (label, policy) in [
        ("sched: random", SchedulePolicy::Random),
        ("sched: pct", SchedulePolicy::pct()),
        ("sched: sweep", SchedulePolicy::Sweep),
    ] {
        let mut cfg = base_config(&scale, ModelTier::Gpt4o, RagMode::Skeleton);
        cfg.detect_policy = policy.clone();
        cfg.validate_policy = policy;
        let arm = run_arm(label, cfg, cases, Some(db));
        println!(
            "{label:24} measured {:>6}  (paper 66%)  [{}]",
            pct(arm.rate()),
            arm.throughput()
        );
    }

    // Fleet speedup check: the skeleton arm, strictly serial vs the
    // configured fleet. Outcomes must be bit-identical; only wall-clock
    // may differ. (On a single-core machine expect ~1.0×.)
    let cfg = base_config(&scale, ModelTier::Gpt4o, RagMode::Skeleton);
    let serial = run_arm_with(
        "serial",
        cfg.clone(),
        &FleetConfig::serial(),
        cases,
        Some(db),
    );
    let parallel = run_arm_with("fleet", cfg, &fleet, cases, Some(db));
    assert_eq!(
        serial.outcomes, parallel.outcomes,
        "fleet outcomes diverged from the serial baseline"
    );
    println!(
        "\nfleet speedup: {:.2}x at {} threads (serial {}; fleet {}) — outcomes bit-identical",
        serial.stats.wall_seconds / parallel.stats.wall_seconds.max(1e-9),
        fleet.threads,
        serial.stats.summary(),
        parallel.stats.summary(),
    );
    let (hits, misses) = db.cache_stats();
    println!(
        "query-embedding cache: {hits} hits / {misses} misses ({:.0}% hit rate)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
}
