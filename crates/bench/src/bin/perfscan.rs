//! `perfscan` — the deterministic hot-path counter scan behind
//! `BENCH_hotpath.json` and the CI `perf-gate` job.
//!
//! Two modes:
//!
//! - **Baseline mode** (default): run the scan and write the report to
//!   `BENCH_hotpath.json` at the repository root. Commit the file to
//!   move the baseline (only after confirming the drift is intentional
//!   — the golden tests pin the semantic half).
//! - **Check mode** (`--check`): run the scan and diff the
//!   deterministic counters against the checked-in baseline. Any cost
//!   counter rising >10%, benefit counter falling >10%, or exact
//!   counter (races, distinct schedules) drifting at all fails with
//!   exit code 1. Wall-clock throughput is printed but never gated.
//!   `--out <path>` additionally writes the fresh report (CI uploads it
//!   as the run's artifact).
//!
//! Scale knobs: `DRFIX_PERF_CASES` (default 28), `DRFIX_PERF_RUNS`
//! (default 24), `DRFIX_PERF_REPEAT` (default 5),
//! `DRFIX_PERF_HEAP_CASES` (default 3, the LargeHeap family),
//! `DRFIX_PERF_CHURN_CASES` (default 3, the Churn family),
//! `DRFIX_PERF_GATE_CASES` (default 6, the static-gate candidate
//! workload), `DRFIX_PERF_TOURNAMENT_CASES` (default 8, the tournament
//! arm), `DRFIX_PERF_CAMPAIGN_CASES` (default 96, the campaign
//! orchestration arm). The gate refuses to compare reports produced at
//! different scales.
//! `DRFIX_PERF_NOCACHE=1` runs the identical workload with the
//! lock-aware caches off — an A/B for timing work. The *logical*
//! counters stay bit-identical, but the dedicated cache counters
//! (`*_sync_hits`, `sync_epoch_hits`, `stack_cache_hits`) drop to
//! zero, so never bake a NOCACHE run into the baseline
//! (`make perf-baseline` clears the flag). `DRFIX_PERF_NOGC=1` is the
//! analogous A/B for the shadow-state lifecycle: logical counters stay
//! bit-identical, but the lifecycle gauges (`states_collected`,
//! `clock_slots_reclaimed`, the peak gauges) collapse — equally unfit
//! for a baseline.
//! `DRFIX_TIER=reg` runs the *whole* scan on the register interpreter
//! tier — every deterministic counter stays bit-identical (that is the
//! tier contract, pinned by the report's tier section, whose own A/B
//! always measures both tiers explicitly regardless of this knob).

use bench::hotpath::{self, HotpathScale, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}

fn baseline_path() -> PathBuf {
    repo_root().join("BENCH_hotpath.json")
}

fn write_report(path: &Path, report: &Report) {
    let json = serde_json::to_string(report).expect("serialize report");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("report written to {}", path.display());
}

fn main() -> ExitCode {
    let mut check_mode = false;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check_mode = true,
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument `{other}`; usage: perfscan [--check] [--out <path>]");
                return ExitCode::FAILURE;
            }
        }
    }

    let scale = HotpathScale::from_env();
    bench::header(
        "perfscan — deterministic VM + FastTrack hot-path counters",
        "HardRace (per-access overhead budgets); DataRaceBench (tracked baselines)",
    );
    println!(
        "\nworkload: {} exposure cases x {} policies x {} schedules, {} timing reps",
        scale.cases,
        hotpath::workload_policies().len(),
        scale.runs,
        scale.repeat
    );

    let report = hotpath::run_scan(&scale);
    println!("\n{}", hotpath::render_table(&report));
    println!(
        "fast-path hit rate {:.1}% | snapshots avoided {} | clock allocs avoided {}",
        100.0 * report.total.counters.fast_hit_rate(),
        report.total.counters.snapshots_avoided,
        report.total.counters.clock_allocs_avoided,
    );
    println!(
        "lock-aware cache: owner hits {} (stack-free rate {:.1}%) | sync-epoch joins \
         skipped {} | snapshot rebuilds reused {}",
        report.total.counters.read_sync_hits + report.total.counters.write_sync_hits,
        100.0 * report.total.counters.stackfree_hit_rate(),
        report.total.counters.sync_epoch_hits,
        report.total.counters.stack_cache_hits,
    );
    if let Some(sync) = report.categories.iter().find(|c| c.category == "SyncHeavy") {
        println!(
            "sync-heavy arms: {:.2}M instr/s vs PR 4 {:.2}M instr/s -> {:.2}x",
            sync.ips / 1e6,
            report.pr4.sync_heavy_ips / 1e6,
            report.sync_heavy_speedup_vs_pr4,
        );
        if report.sync_heavy_nocache_ips > 0.0 {
            println!(
                "sync-heavy A/B (same process, caches off): {:.2}M instr/s -> {:.2}x from \
                 the lock-aware caches alone",
                report.sync_heavy_nocache_ips / 1e6,
                report.sync_heavy_cache_speedup,
            );
        }
    }
    println!(
        "shadow lifecycle: {} states collected | {} clock slots reclaimed | peak width {}",
        report.total.counters.states_collected,
        report.total.counters.clock_slots_reclaimed,
        report.total.counters.peak_clock_width,
    );
    for s in &report.sampling {
        println!(
            "sampling recall: mod {:>2} -> {}/{} racy cases exposed ({:.0}%)",
            s.sample_mod,
            s.exposed,
            s.total,
            100.0 * s.recall,
        );
    }
    let g = &report.static_gate;
    println!(
        "static gate: candidates_rejected_static {}/{} | validation_instrs_saved {} \
         ({} gated vs {} ungated VM steps, {} verdict mismatches)",
        g.candidates_rejected_static,
        g.candidates,
        g.validation_instrs_saved,
        g.validation_vm_steps_gated,
        g.validation_vm_steps_ungated,
        g.verdict_mismatches,
    );
    let t = &report.tournament;
    println!(
        "tournament: fixed {}/{} (single-path {}) | {} candidates, {} rejected static, \
         {} repair iters | {} VM steps/fix ({} static-only, must be 0)",
        t.cases_fixed,
        t.cases,
        t.cases_fixed_single_path,
        t.candidates,
        t.candidates_rejected_static,
        t.repair_iters,
        t.validation_steps_per_fix,
        t.static_only_vm_steps,
    );
    let c = &report.campaign;
    println!(
        "campaign: {} cases x {} shards | pops {} steals {} probes {} folds {} \
         checkpoints {} | digest {:#018x} ({} pipelined mismatches, must be 0)",
        c.cases,
        c.shards,
        c.queue_pops,
        c.steals,
        c.steal_probes,
        c.folds,
        c.checkpoints,
        c.digest,
        c.digest_mismatches,
    );
    println!(
        "campaign memory: serial resident {}B | pipelined resident {}B, in-flight {} | \
         wall serial {:.2}s pipelined {:.2}s (reported, never gated)",
        c.peak_resident_case_bytes,
        c.pipelined_peak_resident_case_bytes,
        c.pipelined_peak_in_flight,
        c.wall_seconds_serial,
        c.wall_seconds_pipelined,
    );
    let tr = &report.tier;
    println!(
        "tier A/B (sync-heavy, same process): stack {:.2}M instr/s vs register {:.2}M \
         instr/s -> {:.2}x | {} fused ops | {} campaign mismatches, must be 0 \
         (wall-clock: reported, never gated)",
        tr.stack_ips / 1e6,
        tr.reg_ips / 1e6,
        tr.reg_speedup,
        tr.reg_fused_ops,
        tr.tier_mismatches,
    );
    println!(
        "exposure corpus: {:.2}M instr/s vs pre-optimization {:.2}M instr/s -> {:.2}x",
        report.exposure.ips / 1e6,
        report.pre_optimization.exposure_ips / 1e6,
        report.exposure_speedup_vs_pre_optimization,
    );
    println!(
        "full workload:   {:.2}M instr/s vs pre-optimization {:.2}M instr/s -> {:.2}x \
         (wall-clock: reported, never gated)",
        report.total.ips / 1e6,
        report.pre_optimization.total_ips / 1e6,
        report.speedup_vs_pre_optimization,
    );

    if let Some(out) = &out_path {
        write_report(out, &report);
    }

    if !check_mode {
        write_report(&baseline_path(), &report);
        return ExitCode::SUCCESS;
    }

    let raw = match std::fs::read_to_string(baseline_path()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "perf-gate: no baseline at {} ({e}); run `cargo run --release -p bench \
                 --bin perfscan` and commit the file",
                baseline_path().display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline: Report = match serde_json::from_str(&raw) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf-gate: unreadable baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let violations = hotpath::check(&baseline, &report);
    if violations.is_empty() {
        println!(
            "perf-gate OK: every deterministic counter within {:.0}% of the baseline",
            100.0 * hotpath::GATE_TOLERANCE
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf-gate FAILED: {} drifted counter(s) vs the checked-in baseline",
            violations.len()
        );
        eprint!("{}", hotpath::render_violations(&violations));
        eprintln!(
            "if the drift is intentional, regenerate the baseline with \
             `make perf-baseline` and commit BENCH_hotpath.json"
        );
        ExitCode::FAILURE
    }
}
