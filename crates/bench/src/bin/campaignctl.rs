//! `campaignctl` — drive sharded fix campaigns (`drfix::campaign`) from
//! the command line: start a run, resume one from its snapshot, or
//! inspect a snapshot.
//!
//! ```text
//! campaignctl run    [flags]              start a fresh campaign
//! campaignctl resume [flags]              continue from --snapshot
//! campaignctl status --snapshot <path>    inspect a snapshot
//! ```
//!
//! Shared flags (env default in parentheses):
//!
//! - `--cases N` — total cases (`DRFIX_CAMPAIGN_CASES`, 10000)
//! - `--shards N` — queue shards (`DRFIX_CAMPAIGN_SHARDS`, 8)
//! - `--workers N` — per-stage workers (`DRFIX_CAMPAIGN_WORKERS`, 4)
//! - `--serial` — force the serial reference executor
//! - `--seed N` — stream seed (`DRFIX_CAMPAIGN_SEED`, 0xD27F17)
//! - `--family NAME` — fixable|exposure|tournament|mixed
//!   (`DRFIX_CAMPAIGN_FAMILY`, exposure)
//! - `--mode NAME` — detect|fix (`DRFIX_CAMPAIGN_MODE`, detect)
//! - `--checkpoint-every N` — folds per shard between snapshots (64)
//! - `--halt-after-checkpoints N` — deterministic kill switch: stop
//!   after the Nth checkpoint (exit code 3)
//! - `--max-in-flight N` — in-flight case bound (0 = auto)
//! - `--snapshot PATH` — snapshot file to write (run) / read (resume,
//!   status)
//! - `--report PATH` — write the schema-v6 metrics report as JSON
//! - `--assert-resident-under BYTES` — fail (exit 1) unless the
//!   resident generated-case-bytes high-water stayed under BYTES — the
//!   streamed-corpus bounded-memory assertion at any scale
//!
//! `status` extras: `--digest` prints only the campaign digest;
//! `--assert-complete` / `--assert-incomplete` exit 1 when the snapshot
//! disagrees (the CI smoke test uses these to prove the kill really
//! interrupted and the resume really finished).
//!
//! Exit codes: 0 completed, 3 halted at the kill switch (snapshot
//! written, resumable), 1 error.

use drfix::campaign::{run_campaign, CampaignConfig, CampaignMode, Snapshot};
use drfix::campaign::{CampaignRun, Tallies};
use drfix::PipelineConfig;
use drfix::TournamentConfig;
use std::path::PathBuf;
use std::process::ExitCode;

/// Exit code of a run stopped by `--halt-after-checkpoints`.
const EXIT_HALTED: u8 = 3;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_str(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

struct Cli {
    cmd: String,
    cases: usize,
    shards: usize,
    workers: usize,
    seed: u64,
    family: String,
    mode: String,
    checkpoint_every: usize,
    halt_after: Option<u64>,
    max_in_flight: usize,
    snapshot: Option<PathBuf>,
    report: Option<PathBuf>,
    assert_resident_under: Option<u64>,
    digest_only: bool,
    assert_complete: bool,
    assert_incomplete: bool,
}

fn usage() -> &'static str {
    "usage: campaignctl <run|resume|status> [--cases N] [--shards N] [--workers N] \
     [--serial] [--seed N] [--family fixable|exposure|tournament|mixed] \
     [--mode detect|fix] [--checkpoint-every N] [--halt-after-checkpoints N] \
     [--max-in-flight N] [--snapshot PATH] [--report PATH] \
     [--assert-resident-under BYTES] [--digest] [--assert-complete] [--assert-incomplete]"
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(|| usage().to_string())?;
    let mut cli = Cli {
        cmd,
        cases: env_u64("DRFIX_CAMPAIGN_CASES", 10_000) as usize,
        shards: env_u64("DRFIX_CAMPAIGN_SHARDS", 8) as usize,
        workers: env_u64("DRFIX_CAMPAIGN_WORKERS", 4) as usize,
        seed: env_u64("DRFIX_CAMPAIGN_SEED", 0xD27F17),
        family: env_str("DRFIX_CAMPAIGN_FAMILY", "exposure"),
        mode: env_str("DRFIX_CAMPAIGN_MODE", "detect"),
        checkpoint_every: 64,
        halt_after: None,
        max_in_flight: 0,
        snapshot: None,
        report: None,
        assert_resident_under: None,
        digest_only: false,
        assert_complete: false,
        assert_incomplete: false,
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cases" => {
                cli.cases = need(&mut args, "--cases")?
                    .parse()
                    .map_err(bad("--cases"))?
            }
            "--shards" => {
                cli.shards = need(&mut args, "--shards")?
                    .parse()
                    .map_err(bad("--shards"))?
            }
            "--workers" => {
                cli.workers = need(&mut args, "--workers")?
                    .parse()
                    .map_err(bad("--workers"))?
            }
            "--serial" => cli.workers = 1,
            "--seed" => cli.seed = need(&mut args, "--seed")?.parse().map_err(bad("--seed"))?,
            "--family" => cli.family = need(&mut args, "--family")?,
            "--mode" => cli.mode = need(&mut args, "--mode")?,
            "--checkpoint-every" => {
                cli.checkpoint_every = need(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(bad("--checkpoint-every"))?
            }
            "--halt-after-checkpoints" => {
                cli.halt_after = Some(
                    need(&mut args, "--halt-after-checkpoints")?
                        .parse()
                        .map_err(bad("--halt-after-checkpoints"))?,
                )
            }
            "--max-in-flight" => {
                cli.max_in_flight = need(&mut args, "--max-in-flight")?
                    .parse()
                    .map_err(bad("--max-in-flight"))?
            }
            "--assert-resident-under" => {
                cli.assert_resident_under = Some(
                    need(&mut args, "--assert-resident-under")?
                        .parse()
                        .map_err(bad("--assert-resident-under"))?,
                )
            }
            "--snapshot" => cli.snapshot = Some(PathBuf::from(need(&mut args, "--snapshot")?)),
            "--report" => cli.report = Some(PathBuf::from(need(&mut args, "--report")?)),
            "--digest" => cli.digest_only = true,
            "--assert-complete" => cli.assert_complete = true,
            "--assert-incomplete" => cli.assert_incomplete = true,
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(cli)
}

fn bad(flag: &'static str) -> impl Fn(std::num::ParseIntError) -> String {
    move |e| format!("{flag}: {e}")
}

fn build_config(cli: &Cli) -> Result<CampaignConfig, String> {
    let family = corpus::stream::StreamFamily::parse(&cli.family)
        .ok_or_else(|| format!("unknown family `{}`", cli.family))?;
    let mode =
        CampaignMode::parse(&cli.mode).ok_or_else(|| format!("unknown mode `{}`", cli.mode))?;
    let mut cfg = CampaignConfig::new(
        cli.cases,
        cli.shards,
        corpus::stream::StreamConfig {
            family,
            seed: cli.seed,
        },
    );
    cfg.workers = cli.workers.max(1);
    cfg.mode = mode;
    cfg.checkpoint_every = cli.checkpoint_every.max(1);
    cfg.halt_after_checkpoints = cli.halt_after;
    cfg.max_in_flight = cli.max_in_flight;
    // Campaign-scale pipeline: modest detection budget per case, and a
    // tournament in fix mode (the service configuration — static
    // candidate work pipelines ahead of validation).
    cfg.pipeline = PipelineConfig {
        seed: cli.seed ^ 0xD27F17,
        detect_runs: 12,
        ..PipelineConfig::default()
    };
    if mode == CampaignMode::Fix {
        cfg.pipeline.tournament = Some(TournamentConfig::default());
    }
    Ok(cfg)
}

fn print_tallies(t: &Tallies) {
    println!(
        "tallies: {} cases | {} raced | {} fixed | stops C/R/D/B {}/{}/{}/{}",
        t.cases,
        t.raced,
        t.fixed,
        t.stop_completed,
        t.stop_race_exposed,
        t.stop_dedup_saturated,
        t.stop_budget_exhausted,
    );
    println!(
        "work: {} detect VM steps | {} validation VM steps | {} llm calls | \
         {} validations | {} static rejections | peak shadow {}B",
        t.detect_vm_steps,
        t.validation_vm_steps,
        t.llm_calls,
        t.validations,
        t.rejected_static,
        t.peak_shadow_bytes,
    );
}

fn finish(cli: &Cli, run: &CampaignRun) -> ExitCode {
    println!("{}", run.metrics.summary());
    if let Some(bound) = cli.assert_resident_under {
        if run.metrics.peak_resident_case_bytes >= bound {
            eprintln!(
                "campaignctl: resident case bytes not bounded: peak {} >= {bound} \
                 (streaming invariant violated)",
                run.metrics.peak_resident_case_bytes,
            );
            return ExitCode::FAILURE;
        }
        println!(
            "bounded-memory assertion: peak resident {}B < {bound}B over {} cases",
            run.metrics.peak_resident_case_bytes, run.snapshot.cases,
        );
    }
    print_tallies(&run.metrics.tallies);
    println!("digest: {:#018x}", run.snapshot.digest());
    if let Some(path) = &cli.report {
        match serde_json::to_string(&run.metrics) {
            Ok(json) => {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("campaignctl: writing report {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("report written to {}", path.display());
            }
            Err(e) => {
                eprintln!("campaignctl: serializing report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if run.interrupted {
        println!(
            "campaign halted at checkpoint {} ({} of {} cases folded) — resumable",
            run.metrics.checkpoints,
            run.snapshot.done(),
            run.snapshot.cases,
        );
        ExitCode::from(EXIT_HALTED)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_run(cli: &Cli) -> Result<ExitCode, String> {
    let cfg = build_config(cli)?;
    println!(
        "campaign: {} {} cases | {} shards | {} workers{} | family {} | seed {:#x}",
        cfg.mode.name(),
        cfg.cases,
        cfg.shards,
        cfg.workers,
        if cfg.workers <= 1 { " (serial)" } else { "" },
        cfg.stream.family.name(),
        cfg.stream.seed,
    );
    let run = run_campaign(&cfg, None, cli.snapshot.as_deref())?;
    Ok(finish(cli, &run))
}

fn cmd_resume(cli: &Cli) -> Result<ExitCode, String> {
    let path = cli
        .snapshot
        .as_deref()
        .ok_or("resume needs --snapshot <path>")?;
    let snap = Snapshot::load(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let cfg = build_config(cli)?;
    println!(
        "resuming {} of {} cases from {} (digest so far {:#018x})",
        snap.cases - snap.done(),
        snap.cases,
        path.display(),
        snap.digest(),
    );
    let run = run_campaign(&cfg, Some(&snap), cli.snapshot.as_deref())?;
    Ok(finish(cli, &run))
}

fn cmd_status(cli: &Cli) -> Result<ExitCode, String> {
    let path = cli
        .snapshot
        .as_deref()
        .ok_or("status needs --snapshot <path>")?;
    let snap = Snapshot::load(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    if cli.digest_only {
        println!("{:#018x}", snap.digest());
    } else {
        println!(
            "campaign {} | family {} | schema {} | fingerprint {:#018x}",
            snap.mode, snap.family, snap.schema, snap.fingerprint,
        );
        println!(
            "progress: {}/{} cases folded across {} shards — {}",
            snap.done(),
            snap.cases,
            snap.shards.len(),
            if snap.completed {
                "completed"
            } else {
                "resumable"
            },
        );
        for (i, s) in snap.shards.iter().enumerate() {
            println!(
                "  shard {i}: [{}, {}) done {}/{} digest {:#018x}",
                s.start,
                s.end,
                s.done,
                s.len(),
                s.digest,
            );
        }
        print_tallies(&snap.tallies());
        println!("digest: {:#018x}", snap.digest());
    }
    if cli.assert_complete && !snap.completed {
        eprintln!("campaignctl: snapshot is not complete");
        return Ok(ExitCode::FAILURE);
    }
    if cli.assert_incomplete && snap.completed {
        eprintln!("campaignctl: snapshot is unexpectedly complete");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("campaignctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cli.cmd.as_str() {
        "run" => cmd_run(&cli),
        "resume" => cmd_resume(&cli),
        "status" => cmd_status(&cli),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("campaignctl: {e}");
            ExitCode::FAILURE
        }
    }
}
