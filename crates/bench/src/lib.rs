//! Shared experiment harness for the table/figure benches.
//!
//! Every bench target regenerates one table or figure of the paper by
//! running the real pipeline over the seeded corpus. Environment knobs
//! keep `cargo bench` runtimes reasonable:
//!
//! - `DRFIX_CASES` — evaluation corpus size (default 120; the paper's
//!   403 reproduces the same shapes, just slower);
//! - `DRFIX_DB_PAIRS` — example-database size (default 272);
//! - `DRFIX_VALIDATION_RUNS` — schedules per validation (default 12;
//!   the paper runs 1000);
//! - `DRFIX_THREADS` — fleet worker threads (default: available
//!   parallelism). Outcomes are bit-identical at any thread count; only
//!   wall-clock changes.
//! - `DRFIX_POLICY` — schedule-exploration policy for both the
//!   reproduce and validate steps: `random` (default), `pct`,
//!   `pct:<depth>`, `pct:<depth>:<budget>`, or `sweep` (see
//!   [`govm::sched`]).
//! - `DRFIX_DEDUP_STREAK` — validation early-exit after this many
//!   consecutive replayed schedule signatures (default 8, the value the
//!   `schedules_to_expose` savings were measured at; `0` disables).
//!   Wired into every default arm so the tracked numbers reflect the
//!   recommended campaign configuration.
//!
//! Every arm runs through [`drfix::fleet`]: cases are sharded across a
//! work-queue of threads, each with a seed derived from
//! `(cfg.seed, case index)`, and per-arm throughput (cases/s, worker
//! utilization) is reported next to the paper numbers.

pub mod hotpath;

use corpus::{CorpusConfig, RaceCase};
use drfix::fleet::{self, FleetConfig, FleetStats};
use drfix::{ExampleDb, FixOutcome, PipelineConfig, RagMode, SchedulePolicy};
use std::sync::OnceLock;
use synthllm::ModelTier;

/// Experiment-scale configuration, read from the environment once.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Evaluation corpus size.
    pub cases: usize,
    /// Example-database size.
    pub db_pairs: usize,
    /// Schedules per validation campaign.
    pub validation_runs: u32,
    /// Schedule-exploration policy for reproduce and validate
    /// (`DRFIX_POLICY`).
    pub policy: SchedulePolicy,
    /// Validation early-exit on schedule saturation
    /// (`DRFIX_DEDUP_STREAK`; `None` = off).
    pub dedup_streak: Option<u32>,
}

impl Scale {
    /// Reads the scale from `DRFIX_*` env vars.
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Scale {
            cases: get("DRFIX_CASES", 120),
            db_pairs: get("DRFIX_DB_PAIRS", 272),
            validation_runs: get("DRFIX_VALIDATION_RUNS", 12) as u32,
            policy: SchedulePolicy::from_env(),
            dedup_streak: match get("DRFIX_DEDUP_STREAK", 8) as u32 {
                0 => None,
                k => Some(k),
            },
        }
    }
}

static CORPUS: OnceLock<Vec<RaceCase>> = OnceLock::new();
static DB: OnceLock<ExampleDb> = OnceLock::new();

/// The shared evaluation corpus (built once per process).
pub fn eval_corpus(scale: &Scale) -> &'static [RaceCase] {
    CORPUS.get_or_init(|| {
        corpus::generate_eval_corpus(&CorpusConfig {
            eval_cases: scale.cases,
            db_pairs: 0,
            seed: 0xD0F1,
        })
    })
}

/// The shared example database. Skeletonization and embedding of the
/// pairs is sharded across the fleet; the resulting stores are
/// bit-identical to a serial build.
pub fn example_db(scale: &Scale) -> &'static ExampleDb {
    DB.get_or_init(|| {
        let pairs = corpus::generate_example_db(&CorpusConfig {
            eval_cases: 0,
            db_pairs: scale.db_pairs,
            seed: 0xD0F1,
        });
        ExampleDb::build_with(&pairs, &FleetConfig::from_env())
    })
}

/// A standard pipeline config for one ablation arm. The `DRFIX_POLICY`
/// schedule-exploration policy applies to both reproduce and validate,
/// and validation campaigns early-exit on schedule saturation after
/// `DRFIX_DEDUP_STREAK` replayed signatures (the recommended
/// configuration the tracked numbers are produced under).
pub fn base_config(scale: &Scale, tier: ModelTier, rag: RagMode) -> PipelineConfig {
    PipelineConfig {
        tier,
        rag,
        validation_runs: scale.validation_runs,
        detect_runs: 32,
        seed: 0xFEED,
        detect_policy: scale.policy.clone(),
        validate_policy: scale.policy.clone(),
        validation_dedup_streak: scale.dedup_streak,
        ..PipelineConfig::default()
    }
}

/// One arm's aggregate results.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// Arm label.
    pub label: String,
    /// Per-case outcomes, aligned with the corpus order.
    pub outcomes: Vec<FixOutcome>,
    /// Fleet throughput measurements for the arm.
    pub stats: FleetStats,
}

impl ArmResult {
    /// Number of validated fixes.
    pub fn fixed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.fixed).count()
    }

    /// Fix rate over the corpus.
    pub fn rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.fixed() as f64 / self.outcomes.len() as f64
        }
    }

    /// Compact throughput column (`cases/s × threads util%`).
    pub fn throughput(&self) -> String {
        self.stats.brief()
    }
}

/// Runs one configuration over the corpus, sharded across the fleet
/// configured by `DRFIX_THREADS` (per-case derived seeds keep the
/// outcomes bit-identical to a serial run).
pub fn run_arm(
    label: &str,
    cfg: PipelineConfig,
    cases: &[RaceCase],
    db: Option<&ExampleDb>,
) -> ArmResult {
    run_arm_with(label, cfg, &FleetConfig::from_env(), cases, db)
}

/// [`run_arm`] with an explicit fleet configuration.
pub fn run_arm_with(
    label: &str,
    cfg: PipelineConfig,
    fleet_cfg: &FleetConfig,
    cases: &[RaceCase],
    db: Option<&ExampleDb>,
) -> ArmResult {
    let run = fleet::run_cases(&cfg, fleet_cfg, cases, db);
    ArmResult {
        label: label.to_owned(),
        outcomes: run.results,
        stats: run.stats,
    }
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a standard experiment header.
pub fn header(title: &str, paper: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// Percentile over a sorted-copy of the data (nearest-rank).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * v.len() as f64).ceil().max(1.0) as usize - 1;
    v[rank.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn run_arm_is_thread_count_invariant() {
        let ccfg = CorpusConfig {
            eval_cases: 8,
            db_pairs: 20,
            seed: 0xBEEF,
        };
        let cases = corpus::generate_eval_corpus(&ccfg);
        let db = ExampleDb::build(&corpus::generate_example_db(&ccfg));
        let cfg = PipelineConfig {
            rag: RagMode::Skeleton,
            validation_runs: 4,
            detect_runs: 16,
            seed: 0xFEED,
            ..PipelineConfig::default()
        };
        let serial = run_arm_with("s", cfg.clone(), &FleetConfig::serial(), &cases, Some(&db));
        for threads in [2, 8] {
            let par = run_arm_with(
                "p",
                cfg.clone(),
                &FleetConfig::new(threads),
                &cases,
                Some(&db),
            );
            assert_eq!(par.outcomes, serial.outcomes, "threads={threads}");
            assert_eq!(par.fixed(), serial.fixed());
        }
    }

    #[test]
    fn scale_defaults() {
        let s = Scale {
            cases: 10,
            db_pairs: 20,
            validation_runs: 4,
            policy: SchedulePolicy::Random,
            dedup_streak: Some(8),
        };
        assert_eq!(s.cases, 10);
        assert_eq!(s.policy.label(), "random");
        assert_eq!(s.dedup_streak, Some(8));
    }
}
