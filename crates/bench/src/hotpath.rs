//! The deterministic hot-path workload behind `BENCH_hotpath.json`.
//!
//! One *scan* runs every exposure-corpus case under every built-in
//! schedule policy as a full validation-style campaign and aggregates
//! the VM's [`govm::RunCounters`] per Table 3 category. Two kinds of
//! numbers come out:
//!
//! - **Deterministic cost counters** (VM steps, scheduling points,
//!   detector events, same-epoch fast-path hits, stack snapshots
//!   materialised/avoided, clock joins, clock allocations
//!   made/avoided, races, distinct schedules): exact functions of the
//!   seeded schedules, bit-identical on every machine and across
//!   repeats — so a checked-in baseline is an *exact* regression gate.
//! - **Wall-clock throughput** (instructions/sec): reported for humans
//!   and for the pre/post-optimization comparison, never gated (CI
//!   machines differ).
//!
//! [`run_scan`] executes the scan ([`HotpathScale::repeat`] times,
//! asserting the counters replay bit-identically and keeping the
//! fastest timing); [`check`] diffs a fresh scan against a baseline
//! report and returns the violations — `perfscan --check` is the CI
//! `perf-gate` entry point.

use corpus::{CorpusConfig, RaceCase};
use drfix::fleet::FleetConfig;
use drfix::PipelineConfig;
use govm::{
    compile_sources, run_test_many, CompileOptions, RunCounters, SchedulePolicy, TestConfig, Tier,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Corpus seed shared with the exposure suite and goldens.
pub const CORPUS_SEED: u64 = 0xD0F1;

/// Campaign base seed for every workload run.
pub const WORKLOAD_SEED: u64 = 0xBEEF;

/// Report schema version (bump when the JSON shape changes).
///
/// v2: lock-aware-cache counters (`read_sync_hits`, `write_sync_hits`,
/// `sync_epoch_hits`, `stack_cache_hits`), the LargeHeap workload
/// family, and the PR 4 SyncHeavy wall-clock reference.
///
/// v3: shadow-state lifecycle counters (`states_collected`,
/// `clock_slots_reclaimed`, `peak_shadow_bytes`, `peak_clock_width`),
/// the Churn workload family (generational goroutine turnover — the
/// family the lifecycle exists for), and the sampling-recall section.
///
/// v4: the static-gate section (`candidates_rejected_static`,
/// `validation_instrs_saved`, verdict-mismatch cross-check) measuring
/// what the `statcheck` pre-validation gate saves on a candidate
/// workload derived from the eval corpus.
///
/// v5: the tournament section (`candidates`, `repair_iters`,
/// `validation_steps_per_fix`, static-only VM-step cross-check) gating
/// the multi-candidate tournament arm's candidate counts and dynamic
/// validation budget per fixed case on the statically-interesting
/// tournament corpus families.
///
/// v6: the campaign section (`queue_pops`, `steals`, `steal_probes`,
/// `folds`, `checkpoints`, in-flight/resident high-waters, and the
/// campaign digest) gating the `drfix::campaign` orchestrator's
/// bookkeeping overhead on the serial reference executor, plus the
/// pipelined-vs-serial digest cross-check (`digest_mismatches`, must
/// stay 0). Campaign wall-clock is reported, never gated.
///
/// v7: the tier section (`tier_mismatches`, `reg_fused_ops`,
/// `sync_heavy_vm_steps`) gating the register interpreter tier: the
/// SyncHeavy arms replayed on both tiers back-to-back in-process, every
/// campaign observable compared bit for bit (`tier_mismatches` must
/// stay 0), with the fused-superinstruction count pinned exactly as the
/// physical proof the register tier engaged. Both tiers' wall-clock
/// throughput and their ratio are reported, never gated.
pub const SCHEMA: u32 = 7;

/// Sampling granularities measured into the report's recall section.
/// `1` tracks every address (recall must be total); the coarser mods
/// keep 1/2 and 1/8 of addresses.
pub const SAMPLING_MODS: [u32; 3] = [1, 2, 8];

/// Tolerated relative drift for gated counters before the check fails.
pub const GATE_TOLERANCE: f64 = 0.10;

/// Scale knobs for the scan, read from the environment.
#[derive(Debug, Clone)]
pub struct HotpathScale {
    /// Exposure-corpus size (`DRFIX_PERF_CASES`, default 28).
    pub cases: usize,
    /// Schedules per campaign (`DRFIX_PERF_RUNS`, default 24).
    pub runs: u32,
    /// Timing repetitions (`DRFIX_PERF_REPEAT`, default 5); counters
    /// must replay bit-identically across all of them.
    pub repeat: usize,
    /// Large-heap (map/slice-heavy) programs in the workload
    /// (`DRFIX_PERF_HEAP_CASES`, default 3).
    pub heap_cases: usize,
    /// Churn (generational goroutine-turnover) programs in the
    /// workload (`DRFIX_PERF_CHURN_CASES`, default 3).
    pub churn_cases: usize,
    /// Eval-corpus cases feeding the static-gate candidate workload
    /// (`DRFIX_PERF_GATE_CASES`, default 6).
    pub gate_cases: usize,
    /// Tournament-corpus cases feeding the tournament arm
    /// (`DRFIX_PERF_TOURNAMENT_CASES`, default 8).
    pub tournament_cases: usize,
    /// Streamed cases in the campaign-orchestration arm
    /// (`DRFIX_PERF_CAMPAIGN_CASES`, default 96).
    pub campaign_cases: usize,
}

impl Default for HotpathScale {
    fn default() -> Self {
        HotpathScale {
            cases: 28,
            runs: 24,
            repeat: 5,
            heap_cases: 3,
            churn_cases: 3,
            gate_cases: 6,
            tournament_cases: 8,
            campaign_cases: 96,
        }
    }
}

impl HotpathScale {
    /// Reads `DRFIX_PERF_*` from the environment.
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        let d = HotpathScale::default();
        HotpathScale {
            cases: get("DRFIX_PERF_CASES", d.cases),
            runs: get("DRFIX_PERF_RUNS", d.runs as usize) as u32,
            repeat: get("DRFIX_PERF_REPEAT", d.repeat).max(1),
            heap_cases: get("DRFIX_PERF_HEAP_CASES", d.heap_cases),
            churn_cases: get("DRFIX_PERF_CHURN_CASES", d.churn_cases),
            gate_cases: get("DRFIX_PERF_GATE_CASES", d.gate_cases),
            tournament_cases: get("DRFIX_PERF_TOURNAMENT_CASES", d.tournament_cases),
            campaign_cases: get("DRFIX_PERF_CAMPAIGN_CASES", d.campaign_cases),
        }
    }
}

/// Synthetic synchronisation-heavy programs `(name, source, test)`:
/// mutex handoffs, RWMutex read/write mixes and wait-group fan-ins that
/// the (deliberately unsynchronised) exposure corpus never executes.
/// They put real numbers on the detector's lock-release buffer reuse —
/// without them `clock_allocs_avoided` would be untracked by the gate.
pub fn sync_heavy_cases() -> Vec<(&'static str, &'static str, &'static str)> {
    const MUTEX_COUNTER: &str = r#"package perf

import (
	"sync"
	"testing"
)

func Count() int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	n := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				mu.Lock()
				n = n + 1
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return n
}

func TestCount(t *testing.T) {
	if Count() != 160 {
		t.Errorf("lost updates")
	}
}
"#;

    const RWMUTEX_MIX: &str = r#"package perf

import (
	"sync"
	"testing"
)

func Observe() int {
	var mu sync.RWMutex
	var wg sync.WaitGroup
	total := 0
	value := 0
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				mu.Lock()
				value = value + 1
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := 0
			for j := 0; j < 30; j++ {
				mu.RLock()
				seen = seen + value
				mu.RUnlock()
			}
			mu.Lock()
			total = total + seen
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total + value
}

func TestObserve(t *testing.T) {
	if Observe() < 60 {
		t.Errorf("readers starved")
	}
}
"#;

    vec![
        ("sync-mutex-counter", MUTEX_COUNTER, "TestCount"),
        ("sync-rwmutex-mix", RWMUTEX_MIX, "TestObserve"),
    ]
}

/// The schedule policies every case is campaigned under.
pub fn workload_policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ]
}

/// The flat deterministic counter set the gate compares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSet {
    /// Instructions executed.
    pub vm_steps: u64,
    /// Scheduling decisions.
    pub sched_points: u64,
    /// Detector read/write events.
    pub det_events: u64,
    /// Reads answered by the same-epoch fast path.
    pub read_fast_hits: u64,
    /// Writes answered by the same-epoch fast path.
    pub write_fast_hits: u64,
    /// Stack snapshots materialised.
    pub stack_snapshots: u64,
    /// Accesses that needed no stack snapshot.
    pub snapshots_avoided: u64,
    /// Vector-clock joins.
    pub clock_joins: u64,
    /// Vector clocks allocated.
    pub clock_allocs: u64,
    /// Clock allocations avoided by in-place joins / buffer reuse.
    pub clock_allocs_avoided: u64,
    /// Reads absorbed by the detector's lock-aware owner cache.
    pub read_sync_hits: u64,
    /// Writes absorbed by the detector's lock-aware owner cache.
    pub write_sync_hits: u64,
    /// Acquire joins short-circuited by the per-sync release epoch.
    pub sync_epoch_hits: u64,
    /// Snapshot rebuilds avoided by the host's interned-stack cache.
    pub stack_cache_hits: u64,
    /// Shadow states retired by `Detector::collect` sweeps.
    pub states_collected: u64,
    /// Vector-clock slots reused after goroutine exit.
    pub clock_slots_reclaimed: u64,
    /// Per-campaign peak shadow footprints, summed (bytes). A gauge of
    /// resident detector memory, deterministic like every counter here.
    pub peak_shadow_bytes: u64,
    /// Per-campaign peak vector-clock widths, summed. With the
    /// lifecycle on this tracks live goroutines, not spawned ones.
    pub peak_clock_width: u64,
    /// Distinct races observed (summed over campaigns).
    pub races: u64,
    /// Distinct schedule signatures (summed over campaigns).
    pub distinct_schedules: u64,
}

impl CounterSet {
    fn add_outcome(&mut self, c: &RunCounters, races: u64, distinct: u64) {
        self.vm_steps += c.vm_steps;
        self.sched_points += c.sched_points;
        self.det_events += c.det.events;
        self.read_fast_hits += c.det.read_fast_hits;
        self.write_fast_hits += c.det.write_fast_hits;
        self.stack_snapshots += c.stack_snapshots;
        self.snapshots_avoided += c.snapshots_avoided;
        self.clock_joins += c.det.clock_joins;
        self.clock_allocs += c.det.clock_allocs;
        self.clock_allocs_avoided += c.det.clock_allocs_avoided;
        self.read_sync_hits += c.det.read_sync_hits;
        self.write_sync_hits += c.det.write_sync_hits;
        self.sync_epoch_hits += c.det.sync_epoch_hits;
        self.stack_cache_hits += c.stack_cache_hits;
        self.states_collected += c.states_collected;
        self.clock_slots_reclaimed += c.clock_slots_reclaimed;
        self.peak_shadow_bytes += c.peak_shadow_bytes;
        self.peak_clock_width += c.peak_clock_width;
        self.races += races;
        self.distinct_schedules += distinct;
    }

    fn accumulate(&mut self, other: &CounterSet) {
        self.vm_steps += other.vm_steps;
        self.sched_points += other.sched_points;
        self.det_events += other.det_events;
        self.read_fast_hits += other.read_fast_hits;
        self.write_fast_hits += other.write_fast_hits;
        self.stack_snapshots += other.stack_snapshots;
        self.snapshots_avoided += other.snapshots_avoided;
        self.clock_joins += other.clock_joins;
        self.clock_allocs += other.clock_allocs;
        self.clock_allocs_avoided += other.clock_allocs_avoided;
        self.read_sync_hits += other.read_sync_hits;
        self.write_sync_hits += other.write_sync_hits;
        self.sync_epoch_hits += other.sync_epoch_hits;
        self.stack_cache_hits += other.stack_cache_hits;
        self.states_collected += other.states_collected;
        self.clock_slots_reclaimed += other.clock_slots_reclaimed;
        self.peak_shadow_bytes += other.peak_shadow_bytes;
        self.peak_clock_width += other.peak_clock_width;
        self.races += other.races;
        self.distinct_schedules += other.distinct_schedules;
    }

    /// Share of detector events answered by the same-epoch fast path.
    pub fn fast_hit_rate(&self) -> f64 {
        if self.det_events == 0 {
            return 0.0;
        }
        (self.read_fast_hits + self.write_fast_hits) as f64 / self.det_events as f64
    }

    /// Share of detector events absorbed stack-free by *either* cheap
    /// path (same-epoch fast path or lock-aware owner cache).
    pub fn stackfree_hit_rate(&self) -> f64 {
        if self.det_events == 0 {
            return 0.0;
        }
        (self.read_fast_hits + self.write_fast_hits + self.read_sync_hits + self.write_sync_hits)
            as f64
            / self.det_events as f64
    }

    /// `(name, value, direction)` triples for the gate; `direction` is
    /// `Cost` (more = regression), `Benefit` (fewer = regression) or
    /// `Exact` (any drift = regression).
    pub fn gauges(&self) -> Vec<(&'static str, u64, Direction)> {
        vec![
            ("vm_steps", self.vm_steps, Direction::Cost),
            ("sched_points", self.sched_points, Direction::Cost),
            ("det_events", self.det_events, Direction::Cost),
            ("read_fast_hits", self.read_fast_hits, Direction::Benefit),
            ("write_fast_hits", self.write_fast_hits, Direction::Benefit),
            ("stack_snapshots", self.stack_snapshots, Direction::Cost),
            (
                "snapshots_avoided",
                self.snapshots_avoided,
                Direction::Benefit,
            ),
            ("clock_joins", self.clock_joins, Direction::Cost),
            ("clock_allocs", self.clock_allocs, Direction::Cost),
            (
                "clock_allocs_avoided",
                self.clock_allocs_avoided,
                Direction::Benefit,
            ),
            ("read_sync_hits", self.read_sync_hits, Direction::Benefit),
            ("write_sync_hits", self.write_sync_hits, Direction::Benefit),
            ("sync_epoch_hits", self.sync_epoch_hits, Direction::Benefit),
            (
                "stack_cache_hits",
                self.stack_cache_hits,
                Direction::Benefit,
            ),
            (
                "states_collected",
                self.states_collected,
                Direction::Benefit,
            ),
            (
                "clock_slots_reclaimed",
                self.clock_slots_reclaimed,
                Direction::Benefit,
            ),
            ("peak_shadow_bytes", self.peak_shadow_bytes, Direction::Cost),
            ("peak_clock_width", self.peak_clock_width, Direction::Cost),
            ("races", self.races, Direction::Exact),
            (
                "distinct_schedules",
                self.distinct_schedules,
                Direction::Exact,
            ),
        ]
    }
}

/// Which direction of drift counts as a regression for a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Higher is worse (work performed).
    Cost,
    /// Lower is worse (work avoided).
    Benefit,
    /// Any change is a regression (semantic fingerprints).
    Exact,
}

/// Aggregate for one corpus category (or the whole scan).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoryReport {
    /// Table 3 category name (or `"total"`).
    pub category: String,
    /// Cases in the category.
    pub cases: usize,
    /// Deterministic counters (gated).
    pub counters: CounterSet,
    /// Fastest wall-clock for the category's campaigns, seconds
    /// (reported, never gated).
    pub elapsed_s: f64,
    /// Instructions per second over the fastest repetition (reported,
    /// never gated).
    pub ips: f64,
}

/// The fixed pre-optimization reference: the same workload measured on
/// the seed tree (commit `75fee3a`, the state before PR 4's hot-path
/// pass) on the reference container. Wall-clock, so indicative — the
/// deterministic gate never compares against it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreOptimizationRef {
    /// Where the reference numbers came from.
    pub description: String,
    /// Instructions/sec over the exposure-corpus half of the workload
    /// (racy + human-fix campaigns) on the seed tree — the reference
    /// for the headline >=2x claim.
    pub exposure_ips: f64,
    /// VM steps of the exposure half on the seed tree (equal to the
    /// current scan by construction — pinned as a cross-check).
    pub exposure_vm_steps: u64,
    /// Instructions/sec over the full workload (exposure + sync-heavy)
    /// on the seed tree.
    pub total_ips: f64,
    /// VM steps of the full workload on the seed tree.
    pub total_vm_steps: u64,
}

/// Default pre-optimization reference for the default workload scale.
pub fn pre_optimization_reference() -> PreOptimizationRef {
    PreOptimizationRef {
        description: "seed tree 75fee3a, DRFIX_PERF_CASES=28 DRFIX_PERF_RUNS=24 \
                      (racy + human-fix + sync-heavy campaigns), reference \
                      container (1 core), fastest of 6 repetitions"
            .to_owned(),
        exposure_ips: 4_545_015.0,
        exposure_vm_steps: 431_835,
        total_ips: 7_815_249.0,
        total_vm_steps: 937_709,
    }
}

/// The PR 4 reference for the SyncHeavy arms: the same two sync-heavy
/// programs measured on the tree *before* the lock-aware sync-epoch
/// cache (commit `d181f2f`, whose checked-in baseline this is taken
/// from). Wall-clock, so indicative — the deterministic gate never
/// compares against it; it backs the "SyncHeavy ≥1.5×" claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pr4Reference {
    /// Where the reference numbers came from.
    pub description: String,
    /// SyncHeavy-category instructions/sec on the PR 4 tree.
    pub sync_heavy_ips: f64,
    /// SyncHeavy-category VM steps on the PR 4 tree (equal to the
    /// current scan by construction — pinned as a cross-check).
    pub sync_heavy_vm_steps: u64,
}

/// Default PR 4 SyncHeavy reference for the default workload scale.
pub fn pr4_reference() -> Pr4Reference {
    Pr4Reference {
        description: "PR 4 tree d181f2f, DRFIX_PERF_CASES=28 DRFIX_PERF_RUNS=24, \
                      SyncHeavy category of the checked-in BENCH_hotpath.json \
                      (reference container, 1 core, fastest of 5 repetitions)"
            .to_owned(),
        sync_heavy_ips: 19_419_943.0,
        sync_heavy_vm_steps: 505_874,
    }
}

/// The workload parameters a report was produced with; the gate refuses
/// to compare reports from different workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Exposure-corpus size.
    pub cases: usize,
    /// Schedules per campaign.
    pub runs: u32,
    /// Campaign base seed.
    pub seed: u64,
    /// Policy labels, in campaign order.
    pub policies: Vec<String>,
    /// Whether each case's human fix is also campaigned (the validate
    /// half of the workload).
    pub include_fixes: bool,
    /// Number of synthetic sync-heavy programs in the workload.
    pub sync_heavy_cases: usize,
    /// Number of large-heap (map/slice-heavy) programs in the workload.
    pub large_heap_cases: usize,
    /// Number of churn (goroutine-turnover) programs in the workload.
    pub churn_cases: usize,
    /// Eval-corpus cases feeding the static-gate candidate workload.
    pub gate_cases: usize,
    /// Tournament-corpus cases feeding the tournament arm.
    pub tournament_cases: usize,
    /// Streamed cases in the campaign-orchestration arm.
    pub campaign_cases: usize,
}

/// Detection recall at one sampling granularity, measured by running
/// the racy exposure programs under PCT with `sample_mod` set and
/// counting the cases that still expose their planted race.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingRecall {
    /// The `VmOptions::sample_mod` the campaigns ran with.
    pub sample_mod: u32,
    /// Racy cases whose planted race was still reported.
    pub exposed: usize,
    /// Racy cases campaigned.
    pub total: usize,
    /// `exposed / total`; 1.0 by construction at `sample_mod == 1`.
    pub recall: f64,
}

/// What the `statcheck` pre-validation gate buys, measured on a
/// candidate workload derived from the eval corpus: every diagnosed
/// repair strategy applied both cleanly and botched, each candidate
/// validated twice — gate on and gate off — with identical seeds.
/// Fully deterministic (seeded schedules, no wall-clock), so every
/// field is gated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticGateReport {
    /// Candidate patches produced and validated (both arms).
    pub candidates: u64,
    /// Candidates the gate rejected before any schedule ran.
    pub candidates_rejected_static: u64,
    /// Candidates that passed the gate yet validated differently with
    /// the gate off — must stay 0 (the gate is invisible to survivors).
    pub verdict_mismatches: u64,
    /// VM instructions spent by dynamic validation with the gate on.
    pub validation_vm_steps_gated: u64,
    /// VM instructions spent by dynamic validation with the gate off.
    pub validation_vm_steps_ungated: u64,
    /// Instructions the gate saved (`ungated - gated`).
    pub validation_instrs_saved: u64,
}

impl StaticGateReport {
    /// `(name, value, direction)` triples for the gate, mirroring
    /// [`CounterSet::gauges`]. Candidate/rejection counts and the
    /// mismatch cross-check are exact fingerprints; the instruction
    /// columns get the usual cost/benefit tolerance.
    pub fn gauges(&self) -> Vec<(&'static str, u64, Direction)> {
        vec![
            ("candidates", self.candidates, Direction::Exact),
            (
                "candidates_rejected_static",
                self.candidates_rejected_static,
                Direction::Exact,
            ),
            (
                "verdict_mismatches",
                self.verdict_mismatches,
                Direction::Exact,
            ),
            (
                "validation_vm_steps_gated",
                self.validation_vm_steps_gated,
                Direction::Cost,
            ),
            (
                "validation_instrs_saved",
                self.validation_instrs_saved,
                Direction::Benefit,
            ),
        ]
    }
}

/// Measures [`StaticGateReport`]: for each racy eval-corpus case, the
/// diagnosed repair strategies are applied cleanly (`botch 0`) and
/// botched (`botch 1`) — the same candidate distribution the synthetic
/// model emits — and every candidate is validated twice with identical
/// seeds, static gate on and off. Deterministic by construction.
pub fn measure_static_gate(scale: &HotpathScale) -> StaticGateReport {
    let corpus = corpus::generate_eval_corpus(&CorpusConfig {
        eval_cases: scale.gate_cases,
        db_pairs: 0,
        seed: CORPUS_SEED,
    });
    let mut rep = StaticGateReport::default();
    for case in corpus.iter().filter(|c| c.fixable && c.hard.is_none()) {
        let Ok(prog) = compile_sources(&case.files, &CompileOptions::default()) else {
            continue;
        };
        let detect = run_test_many(
            &prog,
            &case.test,
            &TestConfig {
                runs: 8,
                seed: WORKLOAD_SEED,
                stop_on_race: true,
                ..TestConfig::default()
            },
        );
        let Some(race) = detect.races.first() else {
            continue;
        };
        let bug_hash = race.bug_hash();
        for (idx, (_, src)) in case.files.iter().enumerate() {
            let Ok(file) = golite::parse_file(src) else {
                continue;
            };
            let mut targets: Vec<_> = synthllm::diagnose::diagnose(&file, &race.var_name)
                .into_iter()
                .map(|d| (d.strategy, d.target))
                .collect();
            targets.dedup();
            targets.truncate(3);
            for (strategy, target) in &targets {
                for botch in 0u8..=1 {
                    let Ok(patched_file) =
                        synthllm::strategy::apply(*strategy, &file, target, botch)
                    else {
                        continue;
                    };
                    let mut patched = case.files.clone();
                    patched[idx].1 = golite::print_file(&patched_file);
                    let vcfg = TestConfig {
                        runs: scale.runs.min(8),
                        seed: WORKLOAD_SEED,
                        stop_on_race: false,
                        ..TestConfig::default()
                    };
                    let gated = drfix::validate_patch_report(
                        &patched,
                        &case.test,
                        &bug_hash,
                        &vcfg,
                        &drfix::ValidationOptions { static_gate: true },
                    );
                    let ungated = drfix::validate_patch_report(
                        &patched,
                        &case.test,
                        &bug_hash,
                        &vcfg,
                        &drfix::ValidationOptions { static_gate: false },
                    );
                    rep.candidates += 1;
                    rep.validation_vm_steps_gated += gated.vm_steps;
                    rep.validation_vm_steps_ungated += ungated.vm_steps;
                    if gated.rejected_static {
                        rep.candidates_rejected_static += 1;
                    } else if gated.verdict.is_ok() != ungated.verdict.is_ok() {
                        rep.verdict_mismatches += 1;
                    }
                }
            }
        }
    }
    rep.validation_instrs_saved = rep
        .validation_vm_steps_ungated
        .saturating_sub(rep.validation_vm_steps_gated);
    rep
}

/// What the multi-candidate tournament arm costs and buys, measured on
/// the statically-interesting tournament corpus families (RWMutex
/// upgrades, double-checked locking, channel selects, racy returns)
/// against the single-path loop on identical per-case seeds. Fully
/// deterministic (seeded model draws, seeded schedules), so every
/// field is gated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TournamentBenchReport {
    /// Tournament-corpus cases campaigned (both arms).
    pub cases: u64,
    /// Cases the tournament arm fixed.
    pub cases_fixed: u64,
    /// Cases the single-path reference loop fixed — the superset
    /// invariant keeps this ≤ `cases_fixed`.
    pub cases_fixed_single_path: u64,
    /// Candidates the tournament enumerated across all cases.
    pub candidates: u64,
    /// Candidates rejected by the static gate, at zero schedule cost.
    pub candidates_rejected_static: u64,
    /// Repair-loop iterations run against `statcheck` diagnostics.
    pub repair_iters: u64,
    /// Static lint probes taken by the repair loop.
    pub lint_probes: u64,
    /// Dynamic validation campaigns launched.
    pub validations: u64,
    /// VM instructions spent by dynamic validation.
    pub validation_vm_steps: u64,
    /// `validation_vm_steps / cases_fixed` — the dynamic budget one
    /// landed fix costs. The headline ratio the gate watches.
    pub validation_steps_per_fix: u64,
    /// VM instructions spent on cases whose *entire* roster died at the
    /// static gate — must stay 0 (the repair loop and the gate burn no
    /// schedules).
    pub static_only_vm_steps: u64,
}

impl TournamentBenchReport {
    /// `(name, value, direction)` triples, mirroring
    /// [`StaticGateReport::gauges`]. Case, candidate, and repair counts
    /// are exact fingerprints of the seeded tournament; the VM-step
    /// columns get the usual cost tolerance; the static-only column is
    /// exact (and zero) by the repair loop's no-schedules invariant.
    pub fn gauges(&self) -> Vec<(&'static str, u64, Direction)> {
        vec![
            ("cases", self.cases, Direction::Exact),
            ("cases_fixed", self.cases_fixed, Direction::Exact),
            (
                "cases_fixed_single_path",
                self.cases_fixed_single_path,
                Direction::Exact,
            ),
            ("candidates", self.candidates, Direction::Exact),
            (
                "candidates_rejected_static",
                self.candidates_rejected_static,
                Direction::Exact,
            ),
            ("repair_iters", self.repair_iters, Direction::Exact),
            ("lint_probes", self.lint_probes, Direction::Exact),
            ("validations", self.validations, Direction::Exact),
            (
                "validation_vm_steps",
                self.validation_vm_steps,
                Direction::Cost,
            ),
            (
                "validation_steps_per_fix",
                self.validation_steps_per_fix,
                Direction::Cost,
            ),
            (
                "static_only_vm_steps",
                self.static_only_vm_steps,
                Direction::Exact,
            ),
        ]
    }
}

/// Measures [`TournamentBenchReport`]: the tournament corpus is run
/// through the single-path loop and the tournament arm on identical
/// per-case seeds (serial fleet — the outcomes are bit-identical at
/// any thread count, so the cheapest shard plan is fine for counters).
pub fn measure_tournament(scale: &HotpathScale) -> TournamentBenchReport {
    let cases = corpus::generate_tournament_corpus(&CorpusConfig {
        eval_cases: scale.tournament_cases,
        db_pairs: 0,
        seed: CORPUS_SEED,
    });
    let cfg = PipelineConfig {
        tier: synthllm::ModelTier::Gpt4Turbo,
        rag: drfix::RagMode::None,
        validation_runs: scale.runs.min(8),
        detect_runs: 24,
        seed: WORKLOAD_SEED,
        ..PipelineConfig::default()
    };
    let fleet = FleetConfig::serial();
    let single = crate::run_arm_with("single-path", cfg.clone(), &fleet, &cases, None);
    let tourn = crate::run_arm_with(
        "tournament",
        PipelineConfig {
            tournament: Some(drfix::TournamentConfig::default()),
            ..cfg
        },
        &fleet,
        &cases,
        None,
    );
    let mut rep = TournamentBenchReport {
        cases: cases.len() as u64,
        cases_fixed_single_path: single.fixed() as u64,
        ..TournamentBenchReport::default()
    };
    for out in &tourn.outcomes {
        rep.cases_fixed += out.fixed as u64;
        rep.candidates_rejected_static += u64::from(out.rejected_static);
        rep.validations += u64::from(out.validations);
        rep.validation_vm_steps += out.validation_vm_steps;
        let Some(t) = &out.tournament else { continue };
        rep.candidates += t.candidates.len() as u64;
        rep.repair_iters += u64::from(t.repair_iters);
        rep.lint_probes += u64::from(t.lint_probes);
        let all_static = !t.candidates.is_empty()
            && t.candidates
                .iter()
                .all(|c| matches!(c.outcome, drfix::CandidateOutcome::RejectedStatic { .. }));
        if all_static {
            rep.static_only_vm_steps += out.validation_vm_steps;
        }
    }
    rep.validation_steps_per_fix = rep
        .validation_vm_steps
        .checked_div(rep.cases_fixed)
        .unwrap_or(0);
    rep
}

/// What the `drfix::campaign` orchestrator's bookkeeping costs at
/// campaign scale, measured on the serial reference executor (whose
/// queue/steal/fold counters are exact functions of the configuration)
/// with a pipelined run alongside as the determinism cross-check.
/// Wall-clock fields are reported, never gated.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignBenchReport {
    /// Streamed cases in the campaign.
    pub cases: u64,
    /// Queue shards.
    pub shards: u64,
    /// Successful claims from the sharded queues (serial run).
    pub queue_pops: u64,
    /// Claims served off the home shard (serial run: the lone worker
    /// drains shard 0 then walks the rest, so this is exact).
    pub steals: u64,
    /// Shard queues examined across all claims (serial run).
    pub steal_probes: u64,
    /// Result-collection instructions: outcomes folded into the
    /// per-shard digests (serial run).
    pub folds: u64,
    /// Checkpoint snapshots written (serial run).
    pub checkpoints: u64,
    /// Cases whose detection exposed a race.
    pub raced: u64,
    /// VM instructions spent detecting.
    pub detect_vm_steps: u64,
    /// Resident generated-case-bytes high-water of the serial run — the
    /// streaming invariant's floor (exactly one case resident).
    pub peak_resident_case_bytes: u64,
    /// Resident case-bytes high-water of the pipelined run — bounded by
    /// the in-flight window, not the campaign length.
    pub pipelined_peak_resident_case_bytes: u64,
    /// In-flight high-water of the pipelined run (≤ the window).
    pub pipelined_peak_in_flight: u64,
    /// The campaign digest of the serial run (exact fingerprint of
    /// every folded outcome).
    pub digest: u64,
    /// Pipelined runs whose digest differed from the serial reference —
    /// must stay 0 (work-stealing changes placement, never outcomes).
    pub digest_mismatches: u64,
    /// Serial wall-clock seconds (reported, never gated).
    pub wall_seconds_serial: f64,
    /// Pipelined wall-clock seconds (reported, never gated).
    pub wall_seconds_pipelined: f64,
}

impl CampaignBenchReport {
    /// `(name, value, direction)` triples, mirroring
    /// [`TournamentBenchReport::gauges`]. The orchestration counters
    /// (queue ops, steals, folds, checkpoints) and the digest are exact
    /// fingerprints of the serial reference; the VM-step and serial
    /// resident-bytes columns get the usual cost tolerance. The
    /// pipelined high-waters are *bounded* by configuration but land
    /// wherever thread timing puts them, so — like wall-clock — they
    /// are reported, never gated (the bound itself is asserted by
    /// [`measure_campaign`] and the A/B test suite).
    pub fn gauges(&self) -> Vec<(&'static str, u64, Direction)> {
        vec![
            ("cases", self.cases, Direction::Exact),
            ("shards", self.shards, Direction::Exact),
            ("queue_pops", self.queue_pops, Direction::Exact),
            ("steals", self.steals, Direction::Exact),
            ("steal_probes", self.steal_probes, Direction::Exact),
            ("folds", self.folds, Direction::Exact),
            ("checkpoints", self.checkpoints, Direction::Exact),
            ("raced", self.raced, Direction::Exact),
            ("detect_vm_steps", self.detect_vm_steps, Direction::Cost),
            (
                "peak_resident_case_bytes",
                self.peak_resident_case_bytes,
                Direction::Cost,
            ),
            ("digest", self.digest, Direction::Exact),
            (
                "digest_mismatches",
                self.digest_mismatches,
                Direction::Exact,
            ),
        ]
    }
}

/// The campaign arm's fixed configuration (shared by the serial
/// reference and the pipelined cross-check so their digests compare).
fn campaign_bench_config(scale: &HotpathScale) -> drfix::CampaignConfig {
    let mut cfg = drfix::CampaignConfig::new(
        scale.campaign_cases,
        4,
        corpus::stream::StreamConfig {
            family: corpus::stream::StreamFamily::Exposure,
            seed: CORPUS_SEED,
        },
    );
    cfg.pipeline = PipelineConfig {
        seed: WORKLOAD_SEED,
        detect_runs: 12,
        ..PipelineConfig::default()
    };
    // Scales with the arm so checkpoints fire (≈2 per shard) at any
    // DRFIX_PERF_CAMPAIGN_CASES — deterministic, hence gateable.
    cfg.checkpoint_every = (scale.campaign_cases / (cfg.shards * 2)).max(1);
    cfg
}

/// Measures [`CampaignBenchReport`]: one serial campaign for the exact
/// orchestration counters, one pipelined campaign (4 workers) for the
/// digest cross-check and the bounded-window high-waters.
pub fn measure_campaign(scale: &HotpathScale) -> CampaignBenchReport {
    let cfg = campaign_bench_config(scale);
    let serial =
        drfix::campaign::run_campaign(&cfg, None, None).expect("serial campaign bench run");
    let mut pcfg = cfg.clone();
    pcfg.workers = 4;
    let pipelined =
        drfix::campaign::run_campaign(&pcfg, None, None).expect("pipelined campaign bench run");
    assert!(
        pipelined.metrics.peak_in_flight <= pcfg.in_flight_limit() as u64,
        "pipelined campaign exceeded its in-flight window: {} > {}",
        pipelined.metrics.peak_in_flight,
        pcfg.in_flight_limit(),
    );
    let sm = &serial.metrics;
    CampaignBenchReport {
        cases: scale.campaign_cases as u64,
        shards: cfg.shards as u64,
        queue_pops: sm.queue_pops,
        steals: sm.steals,
        steal_probes: sm.steal_probes,
        folds: sm.folds,
        checkpoints: sm.checkpoints,
        raced: sm.tallies.raced,
        detect_vm_steps: sm.tallies.detect_vm_steps,
        peak_resident_case_bytes: sm.peak_resident_case_bytes,
        pipelined_peak_resident_case_bytes: pipelined.metrics.peak_resident_case_bytes,
        pipelined_peak_in_flight: pipelined.metrics.peak_in_flight,
        digest: serial.snapshot.digest(),
        digest_mismatches: u64::from(pipelined.snapshot.digest() != serial.snapshot.digest()),
        wall_seconds_serial: sm.wall_seconds,
        wall_seconds_pipelined: pipelined.metrics.wall_seconds,
    }
}

/// The interpreter-tier section: the SyncHeavy arms replayed on the
/// stack tier and the lowered register tier back-to-back in the same
/// process. The deterministic halves (`tier_mismatches`,
/// `reg_fused_ops`, `sync_heavy_vm_steps`) are gated; the wall-clock
/// halves (`stack_ips`, `reg_ips`, `reg_speedup`) are reported, never
/// gated.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TierBenchReport {
    /// `(case, policy)` campaigns whose observables (counters, step
    /// totals, schedule-dedup tallies, race reports, test failures)
    /// differed between tiers — must stay 0: the register tier is
    /// logically invisible.
    pub tier_mismatches: u64,
    /// Fused superinstructions the register tier executed across all
    /// SyncHeavy campaigns. An exact function of the seeded schedules;
    /// pinned so the register tier can never silently degrade to the
    /// unfused loop (and the stack tier never fuses at all).
    pub reg_fused_ops: u64,
    /// SyncHeavy VM steps — identical on both tiers by construction,
    /// pinned as the cross-check that both arms ran the same work.
    pub sync_heavy_vm_steps: u64,
    /// Stack-tier SyncHeavy throughput, instr/s (reported, never gated).
    pub stack_ips: f64,
    /// Register-tier SyncHeavy throughput, instr/s (reported, never
    /// gated).
    pub reg_ips: f64,
    /// `reg_ips / stack_ips` (reported, never gated).
    pub reg_speedup: f64,
}

impl TierBenchReport {
    /// `(name, value, direction)` triples, mirroring
    /// [`CampaignBenchReport::gauges`]. Every deterministic field is an
    /// exact fingerprint; wall-clock never appears here.
    pub fn gauges(&self) -> Vec<(&'static str, u64, Direction)> {
        vec![
            ("tier_mismatches", self.tier_mismatches, Direction::Exact),
            ("reg_fused_ops", self.reg_fused_ops, Direction::Exact),
            (
                "sync_heavy_vm_steps",
                self.sync_heavy_vm_steps,
                Direction::Exact,
            ),
        ]
    }
}

/// Measures [`TierBenchReport`]: every SyncHeavy `(case, policy)`
/// campaign runs under both tiers with identical seeds,
/// [`HotpathScale::repeat`] timing repetitions each (fastest kept,
/// counters asserted to replay), and the per-campaign observables are
/// compared bit for bit.
pub fn measure_tiers(scale: &HotpathScale) -> TierBenchReport {
    let arms: Vec<(String, govm::Program)> = sync_heavy_cases()
        .into_iter()
        .map(|(name, src, test)| {
            let prog = compile_sources(
                &[(format!("{name}.go"), src.to_owned())],
                &CompileOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            (test.to_owned(), prog)
        })
        .collect();
    let policies = workload_policies();
    // Everything one campaign observed that the tiers must agree on.
    type Summary = (RunCounters, u64, u32, u32, Vec<String>, Vec<String>);
    let campaign = |tier: Tier| -> (Vec<Summary>, u64, f64) {
        let mut summaries: Vec<Summary> = Vec::new();
        let mut fused = 0u64;
        let mut best = f64::MAX;
        for rep in 0..scale.repeat {
            let mut rep_summaries: Vec<Summary> = Vec::new();
            let mut rep_fused = 0u64;
            let mut elapsed = 0.0;
            for (test, prog) in &arms {
                for policy in &policies {
                    let cfg = TestConfig {
                        runs: scale.runs,
                        seed: WORKLOAD_SEED,
                        stop_on_race: false,
                        policy: policy.clone(),
                        vm: govm::VmOptions {
                            tier,
                            ..govm::VmOptions::default()
                        },
                        ..TestConfig::default()
                    };
                    let t0 = Instant::now();
                    let out = run_test_many(prog, test, &cfg);
                    elapsed += t0.elapsed().as_secs_f64();
                    rep_fused += out.fused_ops;
                    rep_summaries.push((
                        out.counters,
                        out.steps,
                        out.distinct_schedules,
                        out.duplicate_schedules,
                        out.races.iter().map(|r| r.bug_hash()).collect(),
                        out.test_failures,
                    ));
                }
            }
            if rep == 0 {
                summaries = rep_summaries;
                fused = rep_fused;
            } else {
                assert_eq!(
                    summaries, rep_summaries,
                    "tier campaigns must replay bit-identically across repetitions"
                );
                assert_eq!(fused, rep_fused);
            }
            if elapsed < best {
                best = elapsed;
            }
        }
        (summaries, fused, best)
    };
    let (stack_sums, stack_fused, stack_best) = campaign(Tier::Stack);
    let (reg_sums, reg_fused, reg_best) = campaign(Tier::Reg);
    assert_eq!(stack_fused, 0, "the stack tier must never fuse");
    let tier_mismatches = stack_sums
        .iter()
        .zip(reg_sums.iter())
        .filter(|(a, b)| a != b)
        .count() as u64;
    let vm_steps: u64 = stack_sums.iter().map(|s| s.0.vm_steps).sum();
    let stack_ips = if stack_best > 0.0 && stack_best < f64::MAX {
        vm_steps as f64 / stack_best
    } else {
        0.0
    };
    let reg_ips = if reg_best > 0.0 && reg_best < f64::MAX {
        vm_steps as f64 / reg_best
    } else {
        0.0
    };
    TierBenchReport {
        tier_mismatches,
        reg_fused_ops: reg_fused,
        sync_heavy_vm_steps: vm_steps,
        stack_ips,
        reg_ips,
        reg_speedup: if stack_ips > 0.0 {
            reg_ips / stack_ips
        } else {
            0.0
        },
    }
}

/// The `BENCH_hotpath.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Schema version.
    pub schema: u32,
    /// Workload parameters.
    pub workload: WorkloadSpec,
    /// Fixed pre-optimization reference (wall-clock, indicative).
    pub pre_optimization: PreOptimizationRef,
    /// Fixed PR 4 SyncHeavy reference (wall-clock, indicative).
    pub pr4: Pr4Reference,
    /// Exposure-corpus throughput vs the pre-optimization reference —
    /// the headline number (only meaningful at the default scale).
    pub exposure_speedup_vs_pre_optimization: f64,
    /// Full-workload throughput vs the pre-optimization reference
    /// (0 when the workload differs — e.g. the LargeHeap arms added in
    /// schema 2 — making the ratio meaningless).
    pub speedup_vs_pre_optimization: f64,
    /// SyncHeavy-category throughput vs the PR 4 reference — the
    /// lock-aware sync-epoch cache's headline number (only meaningful
    /// at the default scale).
    pub sync_heavy_speedup_vs_pr4: f64,
    /// SyncHeavy throughput with the lock-aware caches *disabled*,
    /// measured back-to-back in the same process (machine-controlled
    /// A/B; instructions are bit-identical either way).
    pub sync_heavy_nocache_ips: f64,
    /// SyncHeavy cache-on over cache-off throughput — the
    /// noise-immune measure of what the caches themselves buy.
    pub sync_heavy_cache_speedup: f64,
    /// Detection recall per sampling granularity (`SAMPLING_MODS`),
    /// measured on the racy exposure programs. Deterministic, but not
    /// part of the counter gate — the `sample_mod == 1` entry's total
    /// recall is asserted by the test suite instead.
    pub sampling: Vec<SamplingRecall>,
    /// What the `statcheck` pre-validation gate saves on the candidate
    /// workload (deterministic; every field gated).
    pub static_gate: StaticGateReport,
    /// What the multi-candidate tournament arm costs and buys vs the
    /// single-path loop (deterministic; every field gated).
    pub tournament: TournamentBenchReport,
    /// What the campaign orchestrator's bookkeeping costs at campaign
    /// scale (serial counters exact-gated; pipelined digest cross-check;
    /// wall-clock reported, never gated).
    pub campaign: CampaignBenchReport,
    /// The register-tier A/B on the SyncHeavy arms (mismatch and
    /// fused-op counts exact-gated; wall-clock reported, never gated).
    pub tier: TierBenchReport,
    /// Exposure-corpus aggregate (racy + human-fix campaigns; excludes
    /// the sync-heavy add-on).
    pub exposure: CategoryReport,
    /// Whole-scan aggregate.
    pub total: CategoryReport,
    /// Per-category aggregates, sorted by category name.
    pub categories: Vec<CategoryReport>,
}

/// One compiled program of the workload, with its reporting category.
struct WorkloadProgram {
    category: String,
    id: String,
    test: String,
    prog: govm::Program,
}

fn workload_programs(scale: &HotpathScale) -> (Vec<RaceCase>, Vec<WorkloadProgram>) {
    let corpus = corpus::generate_exposure_corpus(&CorpusConfig {
        eval_cases: scale.cases,
        db_pairs: 0,
        seed: CORPUS_SEED,
    });
    // Two programs per exposure case: the racy rendition (the paper's
    // reproduce step — detector slow paths, spin-heavy schedules) and
    // the human fix (the validate step — where a campaign spends most
    // of its instructions). Plus the synthetic sync-heavy programs,
    // which exercise the lock-handoff clock-reuse path.
    let mut programs = Vec::new();
    for case in &corpus {
        let cat = format!("{:?}", case.category);
        let racy = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        programs.push(WorkloadProgram {
            category: cat.clone(),
            id: case.id.clone(),
            test: case.test.clone(),
            prog: racy,
        });
        if let Some(fix) = &case.human_fix {
            let fixed = compile_sources(fix, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{} fix: {e}", case.id));
            programs.push(WorkloadProgram {
                category: cat,
                id: format!("{}-fixed", case.id),
                test: case.test.clone(),
                prog: fixed,
            });
        }
    }
    for (name, src, test) in sync_heavy_cases() {
        let prog = compile_sources(
            &[(format!("{name}.go"), src.to_owned())],
            &CompileOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        programs.push(WorkloadProgram {
            category: "SyncHeavy".to_owned(),
            id: name.to_owned(),
            test: test.to_owned(),
            prog,
        });
    }
    // The large-heap family: map/slice-heavy working sets of hundreds
    // of tracked cells (dense detector state, read-shared promotion at
    // scale, per-element RLock traffic).
    for case in corpus::generate_large_heap_corpus(scale.heap_cases, CORPUS_SEED) {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        programs.push(WorkloadProgram {
            category: "LargeHeap".to_owned(),
            id: case.id.clone(),
            test: case.test.clone(),
            prog,
        });
    }
    // The churn family: generations of short-lived goroutines over
    // fresh buffers — the workload whose shadow/clock footprint the
    // lifecycle (shadow GC + clock-slot reclamation) keeps bounded.
    for case in corpus::generate_churn_corpus(scale.churn_cases, CORPUS_SEED) {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        programs.push(WorkloadProgram {
            category: "Churn".to_owned(),
            id: case.id.clone(),
            test: case.test.clone(),
            prog,
        });
    }
    (corpus, programs)
}

/// Measures detection recall per sampling granularity: every racy
/// exposure program is campaigned under PCT (the proven exposer —
/// median 1 schedule at `sample_mod == 1`) with each mod in
/// [`SAMPLING_MODS`], and a case counts as exposed if any schedule in
/// the budget reports a race. Fully deterministic.
pub fn measure_sampling_recall(scale: &HotpathScale) -> Vec<SamplingRecall> {
    let corpus = corpus::generate_exposure_corpus(&CorpusConfig {
        eval_cases: scale.cases,
        db_pairs: 0,
        seed: CORPUS_SEED,
    });
    let progs: Vec<(String, govm::Program)> = corpus
        .iter()
        .map(|case| {
            let prog = compile_sources(&case.files, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", case.id));
            (case.test.clone(), prog)
        })
        .collect();
    SAMPLING_MODS
        .iter()
        .map(|&sample_mod| {
            let exposed = progs
                .iter()
                .filter(|(test, prog)| {
                    let cfg = TestConfig {
                        runs: scale.runs,
                        seed: WORKLOAD_SEED,
                        stop_on_race: true,
                        policy: SchedulePolicy::pct(),
                        vm: govm::VmOptions {
                            sample_mod,
                            ..govm::VmOptions::default()
                        },
                        ..TestConfig::default()
                    };
                    !run_test_many(prog, test, &cfg).races.is_empty()
                })
                .count();
            SamplingRecall {
                sample_mod,
                exposed,
                total: progs.len(),
                recall: if progs.is_empty() {
                    0.0
                } else {
                    exposed as f64 / progs.len() as f64
                },
            }
        })
        .collect()
}

/// Runs the deterministic scan and returns the report.
///
/// The scan is repeated [`HotpathScale::repeat`] times: counters must
/// replay bit-identically across repetitions (panics otherwise — that
/// determinism is the foundation of the CI gate), and each category
/// keeps its fastest timing.
pub fn run_scan(scale: &HotpathScale) -> Report {
    // A/B knob: `DRFIX_PERF_NOCACHE=1` runs the identical workload with
    // the lock-aware caches off. The logical counters are bit-identical
    // either way (the whole point), so the only difference is
    // wall-clock — a machine-controlled before/after measurement.
    let nocache = std::env::var("DRFIX_PERF_NOCACHE")
        .map(|v| v == "1")
        .unwrap_or(false);
    // Same idea for the shadow-state lifecycle: `DRFIX_PERF_NOGC=1`
    // disables GC + clock reclamation. Logical counters stay
    // bit-identical (pinned by the shadow-GC golden); the lifecycle
    // gauges collapse (reclaimed to zero, peaks up), so never bake a
    // NOGC run into the baseline.
    let nogc = std::env::var("DRFIX_PERF_NOGC")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (_corpus, programs) = workload_programs(scale);
    let policies = workload_policies();

    let mut counters: BTreeMap<String, CounterSet> = BTreeMap::new();
    let mut best_elapsed: BTreeMap<String, f64> = BTreeMap::new();
    let mut case_count: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();

    for rep in 0..scale.repeat {
        let mut rep_counters: BTreeMap<String, CounterSet> = BTreeMap::new();
        let mut rep_elapsed: BTreeMap<String, f64> = BTreeMap::new();
        for wp in &programs {
            for policy in &policies {
                let cfg = TestConfig {
                    runs: scale.runs,
                    seed: WORKLOAD_SEED,
                    stop_on_race: false,
                    policy: policy.clone(),
                    vm: govm::VmOptions {
                        sync_epoch_cache: !nocache,
                        shadow_gc: !nogc,
                        ..govm::VmOptions::default()
                    },
                    ..TestConfig::default()
                };
                let t0 = Instant::now();
                let out = run_test_many(&wp.prog, &wp.test, &cfg);
                let dt = t0.elapsed().as_secs_f64();
                rep_counters
                    .entry(wp.category.clone())
                    .or_default()
                    .add_outcome(
                        &out.counters,
                        out.races.len() as u64,
                        u64::from(out.distinct_schedules),
                    );
                *rep_elapsed.entry(wp.category.clone()).or_default() += dt;
                if rep == 0 {
                    case_count
                        .entry(wp.category.clone())
                        .or_default()
                        .insert(wp.id.clone());
                }
            }
        }
        if rep == 0 {
            counters = rep_counters;
            best_elapsed = rep_elapsed;
        } else {
            assert_eq!(
                counters, rep_counters,
                "hot-path counters must replay bit-identically across repetitions"
            );
            for (cat, dt) in rep_elapsed {
                let best = best_elapsed.entry(cat).or_insert(f64::MAX);
                if dt < *best {
                    *best = dt;
                }
            }
        }
    }

    let mut categories: Vec<CategoryReport> = Vec::new();
    let mut total = CategoryReport {
        category: "total".to_owned(),
        ..CategoryReport::default()
    };
    let mut exposure = CategoryReport {
        category: "exposure".to_owned(),
        ..CategoryReport::default()
    };
    for (cat, set) in &counters {
        let elapsed = best_elapsed.get(cat).copied().unwrap_or(0.0);
        let cases = case_count.get(cat).map(|s| s.len()).unwrap_or(0);
        categories.push(CategoryReport {
            category: cat.clone(),
            cases,
            counters: *set,
            elapsed_s: elapsed,
            ips: if elapsed > 0.0 {
                set.vm_steps as f64 / elapsed
            } else {
                0.0
            },
        });
        total.cases += cases;
        total.counters.accumulate(set);
        total.elapsed_s += elapsed;
        if cat != "SyncHeavy" && cat != "LargeHeap" && cat != "Churn" {
            exposure.cases += cases;
            exposure.counters.accumulate(set);
            exposure.elapsed_s += elapsed;
        }
    }
    total.ips = if total.elapsed_s > 0.0 {
        total.counters.vm_steps as f64 / total.elapsed_s
    } else {
        0.0
    };
    exposure.ips = if exposure.elapsed_s > 0.0 {
        exposure.counters.vm_steps as f64 / exposure.elapsed_s
    } else {
        0.0
    };

    let pre = pre_optimization_reference();
    // The speedup claims are only apples-to-apples when this scan
    // executed exactly the instructions the seed tree was measured on;
    // at any other scale (or after a workload-changing edit) they are
    // reported as 0 rather than as a bogus ratio.
    let speedup = if pre.total_ips > 0.0 && total.counters.vm_steps == pre.total_vm_steps {
        total.ips / pre.total_ips
    } else {
        0.0
    };
    let exposure_speedup =
        if pre.exposure_ips > 0.0 && exposure.counters.vm_steps == pre.exposure_vm_steps {
            exposure.ips / pre.exposure_ips
        } else {
            0.0
        };
    let pr4 = pr4_reference();
    // Same apples-to-apples guard as above: the SyncHeavy ratio is only
    // reported when this scan executed exactly the instructions the
    // PR 4 baseline measured.
    let sync_heavy_cat = categories
        .iter()
        .find(|c| c.category == "SyncHeavy")
        .cloned();
    let sync_heavy_speedup = sync_heavy_cat
        .as_ref()
        .filter(|c| pr4.sync_heavy_ips > 0.0 && c.counters.vm_steps == pr4.sync_heavy_vm_steps)
        .map(|c| c.ips / pr4.sync_heavy_ips)
        .unwrap_or(0.0);

    // Machine-controlled A/B: replay only the sync-heavy arms with the
    // lock-aware caches off, back-to-back in this same process. The
    // instruction stream is bit-identical (pinned by the lock-regime
    // goldens), so the ratio isolates what the caches buy without any
    // cross-run machine noise.
    let (sync_heavy_nocache_ips, sync_heavy_cache_speedup) = if nocache {
        (0.0, 0.0)
    } else {
        let mut best = f64::MAX;
        let mut steps_off = 0u64;
        for _ in 0..scale.repeat {
            let mut elapsed = 0.0;
            steps_off = 0;
            for wp in programs.iter().filter(|wp| wp.category == "SyncHeavy") {
                for policy in &policies {
                    let cfg = TestConfig {
                        runs: scale.runs,
                        seed: WORKLOAD_SEED,
                        stop_on_race: false,
                        policy: policy.clone(),
                        vm: govm::VmOptions {
                            sync_epoch_cache: false,
                            ..govm::VmOptions::default()
                        },
                        ..TestConfig::default()
                    };
                    let t0 = Instant::now();
                    let out = run_test_many(&wp.prog, &wp.test, &cfg);
                    elapsed += t0.elapsed().as_secs_f64();
                    steps_off += out.counters.vm_steps;
                }
            }
            if elapsed < best {
                best = elapsed;
            }
        }
        let off_ips = if best > 0.0 && best < f64::MAX {
            steps_off as f64 / best
        } else {
            0.0
        };
        let ratio = match &sync_heavy_cat {
            Some(c) if off_ips > 0.0 && steps_off == c.counters.vm_steps => c.ips / off_ips,
            _ => 0.0,
        };
        (off_ips, ratio)
    };
    let sampling = measure_sampling_recall(scale);
    let static_gate = measure_static_gate(scale);
    let tournament = measure_tournament(scale);
    let campaign = measure_campaign(scale);
    let tier = measure_tiers(scale);
    Report {
        schema: SCHEMA,
        workload: WorkloadSpec {
            cases: scale.cases,
            runs: scale.runs,
            seed: WORKLOAD_SEED,
            policies: policies.iter().map(|p| p.label()).collect(),
            include_fixes: true,
            sync_heavy_cases: sync_heavy_cases().len(),
            large_heap_cases: scale.heap_cases,
            churn_cases: scale.churn_cases,
            gate_cases: scale.gate_cases,
            tournament_cases: scale.tournament_cases,
            campaign_cases: scale.campaign_cases,
        },
        pre_optimization: pre,
        pr4,
        exposure_speedup_vs_pre_optimization: exposure_speedup,
        speedup_vs_pre_optimization: speedup,
        sync_heavy_speedup_vs_pr4: sync_heavy_speedup,
        sync_heavy_nocache_ips,
        sync_heavy_cache_speedup,
        sampling,
        static_gate,
        tournament,
        campaign,
        tier,
        exposure,
        total,
        categories,
    }
}

/// One gate violation: which counter drifted, where, and by how much —
/// structured so `perfscan --check` can render a baseline-vs-current
/// diff table instead of a bare boolean.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Aggregation scope (`total`, `exposure`, or a category name) —
    /// empty for workload/schema-level mismatches.
    pub scope: String,
    /// Drifted counter name (empty for workload/schema mismatches).
    pub counter: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
    /// Human-readable message (the whole story for non-counter
    /// violations).
    pub message: String,
}

impl Violation {
    fn structural(message: String) -> Violation {
        Violation {
            scope: String::new(),
            counter: String::new(),
            baseline: 0,
            current: 0,
            message,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

fn check_gauges(
    scope: &str,
    base: &[(&'static str, u64, Direction)],
    cur: &[(&'static str, u64, Direction)],
    out: &mut Vec<Violation>,
) {
    for ((name, b, dir), (_, c, _)) in base.iter().copied().zip(cur.iter().copied()) {
        let bad = match dir {
            Direction::Cost => c as f64 > b as f64 * (1.0 + GATE_TOLERANCE),
            Direction::Benefit => (c as f64) < b as f64 * (1.0 - GATE_TOLERANCE),
            Direction::Exact => c != b,
        };
        if bad {
            let how = match dir {
                Direction::Cost => "rose",
                Direction::Benefit => "fell",
                Direction::Exact => "changed",
            };
            let message = format!(
                "{scope}: {name} {how} {b} -> {c} ({:+.1}%)",
                if b == 0 {
                    f64::INFINITY
                } else {
                    100.0 * (c as f64 - b as f64) / b as f64
                }
            );
            out.push(Violation {
                scope: scope.to_owned(),
                counter: name.to_owned(),
                baseline: b,
                current: c,
                message,
            });
        }
    }
}

fn check_set(scope: &str, base: &CounterSet, cur: &CounterSet, out: &mut Vec<Violation>) {
    check_gauges(scope, &base.gauges(), &cur.gauges(), out);
}

/// Renders violations as a `diff`-style table (baseline vs current per
/// drifted counter, grouped by scope) for the perf-gate failure output.
pub fn render_violations(violations: &[Violation]) -> String {
    let mut out = String::new();
    let (counters, structural): (Vec<_>, Vec<_>) =
        violations.iter().partition(|v| !v.counter.is_empty());
    for v in structural {
        out.push_str(&format!("! {}\n", v.message));
    }
    if !counters.is_empty() {
        out.push_str(&format!(
            "  {:<18} {:<22} {:>14} {:>14} {:>9}\n",
            "scope", "counter", "baseline", "current", "drift"
        ));
        for v in counters {
            let drift = if v.baseline == 0 {
                "+inf".to_owned()
            } else {
                format!(
                    "{:+.1}%",
                    100.0 * (v.current as f64 - v.baseline as f64) / v.baseline as f64
                )
            };
            out.push_str(&format!(
                "- {:<18} {:<22} {:>14} {:>14} {:>9}\n",
                v.scope, v.counter, v.baseline, v.current, drift
            ));
        }
    }
    out
}

/// Diffs `current` against `baseline`; an empty vector means the gate
/// passes. Wall-clock fields are never compared.
pub fn check(baseline: &Report, current: &Report) -> Vec<Violation> {
    let mut out = Vec::new();
    if baseline.schema != current.schema {
        out.push(Violation::structural(format!(
            "schema mismatch: baseline {} vs current {}",
            baseline.schema, current.schema
        )));
        return out;
    }
    if baseline.workload != current.workload {
        out.push(Violation::structural(format!(
            "workload mismatch: baseline {:?} vs current {:?} — regenerate the baseline \
             or unset DRFIX_PERF_*",
            baseline.workload, current.workload
        )));
        return out;
    }
    check_set(
        "total",
        &baseline.total.counters,
        &current.total.counters,
        &mut out,
    );
    check_set(
        "exposure",
        &baseline.exposure.counters,
        &current.exposure.counters,
        &mut out,
    );
    check_gauges(
        "static-gate",
        &baseline.static_gate.gauges(),
        &current.static_gate.gauges(),
        &mut out,
    );
    check_gauges(
        "tournament",
        &baseline.tournament.gauges(),
        &current.tournament.gauges(),
        &mut out,
    );
    check_gauges(
        "campaign",
        &baseline.campaign.gauges(),
        &current.campaign.gauges(),
        &mut out,
    );
    check_gauges(
        "tier",
        &baseline.tier.gauges(),
        &current.tier.gauges(),
        &mut out,
    );
    let cur_by_cat: BTreeMap<&str, &CategoryReport> = current
        .categories
        .iter()
        .map(|c| (c.category.as_str(), c))
        .collect();
    for base_cat in &baseline.categories {
        match cur_by_cat.get(base_cat.category.as_str()) {
            Some(cur_cat) => check_set(
                &base_cat.category,
                &base_cat.counters,
                &cur_cat.counters,
                &mut out,
            ),
            None => out.push(Violation::structural(format!(
                "category `{}` missing from the current scan",
                base_cat.category
            ))),
        }
    }
    for cur_cat in &current.categories {
        if !baseline
            .categories
            .iter()
            .any(|b| b.category == cur_cat.category)
        {
            out.push(Violation::structural(format!(
                "category `{}` absent from the baseline",
                cur_cat.category
            )));
        }
    }
    out
}

/// Renders the per-category table for terminal output.
pub fn render_table(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>5} {:>12} {:>10} {:>9} {:>9} {:>10} {:>10} {:>12}\n",
        "category", "cases", "vm_steps", "events", "fast%", "cache%", "snaps", "joins", "ips"
    ));
    for cat in report
        .categories
        .iter()
        .chain([&report.exposure, &report.total])
    {
        let c = &cat.counters;
        out.push_str(&format!(
            "{:<22} {:>5} {:>12} {:>10} {:>8.1}% {:>8.1}% {:>10} {:>10} {:>12.0}\n",
            cat.category,
            cat.cases,
            c.vm_steps,
            c.det_events,
            100.0 * c.fast_hit_rate(),
            100.0 * (c.stackfree_hit_rate() - c.fast_hit_rate()),
            c.stack_snapshots,
            c.clock_joins,
            cat.ips,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> HotpathScale {
        HotpathScale {
            cases: 7,
            runs: 4,
            repeat: 2,
            heap_cases: 3,
            churn_cases: 2,
            gate_cases: 4,
            tournament_cases: 6,
            campaign_cases: 18,
        }
    }

    #[test]
    fn scan_is_deterministic_and_covers_all_categories() {
        let a = run_scan(&tiny_scale());
        let b = run_scan(&tiny_scale());
        assert_eq!(a.total.counters, b.total.counters);
        assert_eq!(
            a.categories.len(),
            10,
            "Table 3 categories + SyncHeavy + LargeHeap + Churn"
        );
        assert!(a.total.counters.vm_steps > 0);
        // The tiny test scale is dominated by the sync-heavy programs
        // (every lock release advances the epoch, so few same-epoch
        // repeats); the full workload's ~60% hit rate is pinned by the
        // checked-in BENCH_hotpath.json baseline instead.
        assert!(
            a.total.counters.fast_hit_rate() > 0.05,
            "same-epoch fast path vanished: {:?}",
            a.total.counters
        );
        // The lock-aware cache must be carrying the sync-heavy arms…
        let sync_cat = a
            .categories
            .iter()
            .find(|c| c.category == "SyncHeavy")
            .expect("SyncHeavy category");
        assert!(
            sync_cat.counters.read_sync_hits + sync_cat.counters.write_sync_hits > 0,
            "owner cache never engaged: {:?}",
            sync_cat.counters
        );
        assert!(sync_cat.counters.sync_epoch_hits > 0);
        // …and the large-heap arms are clean, busy, and cache-assisted.
        let heap = a
            .categories
            .iter()
            .find(|c| c.category == "LargeHeap")
            .expect("LargeHeap category");
        assert_eq!(heap.counters.races, 0, "large-heap arms must be clean");
        assert!(heap.counters.det_events > 0);
        assert!(heap.counters.stack_cache_hits > 0);
        // …and the churn arms are clean with the lifecycle engaged:
        // exited workers' clock slots get reused generation after
        // generation, so width stays O(live), far below O(spawned).
        let churn = a
            .categories
            .iter()
            .find(|c| c.category == "Churn")
            .expect("Churn category");
        assert_eq!(churn.counters.races, 0, "churn arms must be clean");
        assert!(
            churn.counters.clock_slots_reclaimed > 0,
            "goroutine exit never recycled a clock slot: {:?}",
            churn.counters
        );
        assert!(churn.counters.peak_shadow_bytes > 0);
        assert!(
            churn.counters.peak_clock_width < churn.counters.clock_slots_reclaimed,
            "clock width should stay far below goroutine turnover: {:?}",
            churn.counters
        );
        // Sampling recall: deterministic, total at sample_mod == 1,
        // and a fraction of the corpus at every granularity.
        assert_eq!(a.sampling, b.sampling);
        assert_eq!(a.sampling.len(), SAMPLING_MODS.len());
        assert_eq!(a.sampling[0].sample_mod, 1);
        assert!(
            (a.sampling[0].recall - 1.0).abs() < f64::EPSILON,
            "full tracking must expose every planted race: {:?}",
            a.sampling
        );
        for s in &a.sampling {
            assert_eq!(s.total, tiny_scale().cases);
            assert!((0.0..=1.0).contains(&s.recall), "{:?}", s);
        }
        // Static gate: deterministic, rejecting at least one botched
        // candidate without ever flipping a survivor's verdict, and the
        // instruction ledger must balance.
        assert_eq!(a.static_gate, b.static_gate);
        assert!(a.static_gate.candidates > 0, "{:?}", a.static_gate);
        assert!(
            a.static_gate.candidates_rejected_static > 0,
            "gate never fired on the botched candidates: {:?}",
            a.static_gate
        );
        assert_eq!(
            a.static_gate.verdict_mismatches, 0,
            "gate changed a surviving candidate's verdict: {:?}",
            a.static_gate
        );
        assert_eq!(
            a.static_gate.validation_vm_steps_gated + a.static_gate.validation_instrs_saved,
            a.static_gate.validation_vm_steps_ungated,
            "{:?}",
            a.static_gate
        );
        assert!(
            a.static_gate.validation_instrs_saved > 0,
            "rejections must translate into schedules not run: {:?}",
            a.static_gate
        );
        // Tournament: deterministic, fixing at least what single-path
        // fixes, with the repair loop engaged and never a schedule run
        // on an all-statically-rejected roster.
        assert_eq!(a.tournament, b.tournament);
        assert!(a.tournament.candidates > 0, "{:?}", a.tournament);
        assert!(
            a.tournament.cases_fixed >= a.tournament.cases_fixed_single_path,
            "superset invariant broken: {:?}",
            a.tournament
        );
        assert!(
            a.tournament.repair_iters > 0,
            "repair loop never engaged: {:?}",
            a.tournament
        );
        assert_eq!(
            a.tournament.static_only_vm_steps, 0,
            "lint-rejected rosters burned VM steps: {:?}",
            a.tournament
        );
        // Tier: the register tier must be logically invisible (zero
        // mismatching campaigns), physically engaged (fused ops), and
        // running the exact same instruction stream as the stack tier.
        assert_eq!(a.tier.gauges(), b.tier.gauges());
        assert_eq!(
            a.tier.tier_mismatches, 0,
            "register tier diverged from the stack tier: {:?}",
            a.tier
        );
        assert!(
            a.tier.reg_fused_ops > 0,
            "register tier executed no fused superinstructions: {:?}",
            a.tier
        );
        let sync_heavy = a
            .categories
            .iter()
            .find(|c| c.category == "SyncHeavy")
            .expect("SyncHeavy category");
        assert_eq!(
            a.tier.sync_heavy_vm_steps, sync_heavy.counters.vm_steps,
            "tier arm ran a different SyncHeavy workload than the scan"
        );
        // Campaign: the serial orchestration counters and digest replay
        // bit-identically, the pipelined cross-check agrees, and the
        // serial lone worker's shard walk is exactly accounted for.
        assert_eq!(a.campaign.gauges(), b.campaign.gauges());
        assert_eq!(a.campaign.folds, a.campaign.cases);
        assert_eq!(a.campaign.queue_pops, a.campaign.cases);
        assert_eq!(
            a.campaign.digest_mismatches, 0,
            "pipelined campaign diverged from the serial reference: {:?}",
            a.campaign
        );
        assert!(a.campaign.raced > 0, "{:?}", a.campaign);
        assert!(a.campaign.checkpoints > 0, "{:?}", a.campaign);
        assert!(a.campaign.peak_resident_case_bytes > 0, "{:?}", a.campaign);
        assert!(check(&a, &b).is_empty());
    }

    #[test]
    fn gate_flags_cost_benefit_and_exact_drift() {
        let base = run_scan(&tiny_scale());
        let mut cur = base.clone();
        cur.total.counters.vm_steps = base.total.counters.vm_steps * 2;
        cur.total.counters.read_fast_hits = 0;
        cur.total.counters.races += 1;
        cur.static_gate.candidates_rejected_static += 1;
        cur.tournament.cases_fixed += 1;
        cur.campaign.digest ^= 1;
        cur.tier.tier_mismatches += 1;
        cur.tier.reg_fused_ops = 0;
        let violations = check(&base, &cur);
        let text = violations
            .iter()
            .map(|v| v.message.clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("vm_steps rose"), "{text}");
        assert!(text.contains("read_fast_hits fell"), "{text}");
        assert!(text.contains("races changed"), "{text}");
        assert!(
            text.contains("candidates_rejected_static changed"),
            "{text}"
        );
        assert!(text.contains("cases_fixed changed"), "{text}");
        assert!(text.contains("digest changed"), "{text}");
        assert!(text.contains("tier_mismatches changed"), "{text}");
        assert!(text.contains("reg_fused_ops changed"), "{text}");
        let table = render_violations(&violations);
        assert!(table.contains("vm_steps"), "{table}");
        assert!(table.contains("baseline"), "{table}");
        // Within-tolerance drift passes.
        let mut small = base.clone();
        small.total.counters.vm_steps += base.total.counters.vm_steps / 20;
        assert!(check(&base, &small).is_empty());
    }

    #[test]
    fn gate_refuses_mismatched_workloads() {
        let base = run_scan(&tiny_scale());
        let mut cur = base.clone();
        cur.workload.runs += 1;
        let v = check(&base, &cur);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("workload mismatch"));
        assert!(
            render_violations(&v).contains("workload mismatch"),
            "structural violations must survive the diff rendering"
        );
    }
}
