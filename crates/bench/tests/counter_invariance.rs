//! The perf counters' determinism contract.
//!
//! The CI perf gate only works because the hot-path counters are exact
//! functions of the seeded schedules. This suite pins the two ways that
//! could silently break:
//!
//! - **Thread invariance**: summing campaign counters over the fleet
//!   must be bit-identical at `DRFIX_THREADS` 1, 2 and 8 — the counters
//!   live inside each campaign's VMs, so sharding must not touch them.
//! - **Replay invariance**: re-running a campaign with the same seed
//!   under each [`SchedulePolicy`] must reproduce the counters bit for
//!   bit (wall-clock may differ; nothing else may).

use corpus::CorpusConfig;
use drfix::fleet::{self, FleetConfig};
use govm::{
    compile_sources, run_test_many, CompileOptions, Program, RunCounters, SchedulePolicy,
    TestConfig,
};

const CASES: usize = 7;
const RUNS: u32 = 8;
const SEED: u64 = 0xBEEF;

fn compiled_corpus() -> Vec<(Program, String)> {
    corpus::generate_exposure_corpus(&CorpusConfig {
        eval_cases: CASES,
        db_pairs: 0,
        seed: 0xD0F1,
    })
    .iter()
    .map(|case| {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        (prog, case.test.clone())
    })
    .collect()
}

fn policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ]
}

/// Campaign counters for every `(case, policy)` job, computed across a
/// fleet of `threads` workers.
fn fleet_counters(programs: &[(Program, String)], threads: usize) -> Vec<RunCounters> {
    let policies = policies();
    let jobs: Vec<(usize, usize)> = (0..programs.len())
        .flat_map(|c| (0..policies.len()).map(move |p| (c, p)))
        .collect();
    let run = fleet::run_indexed(&FleetConfig::new(threads), jobs.len(), |i| {
        let (c, p) = jobs[i];
        let (prog, test) = &programs[c];
        let cfg = TestConfig {
            runs: RUNS,
            seed: SEED,
            stop_on_race: false,
            policy: policies[p].clone(),
            ..TestConfig::default()
        };
        run_test_many(prog, test, &cfg).counters
    });
    run.results
}

#[test]
fn counters_are_bit_identical_across_thread_counts() {
    let programs = compiled_corpus();
    let serial = fleet_counters(&programs, 1);
    assert!(serial.iter().any(|c| c.det.events > 0), "workload is empty");
    for threads in [2, 8] {
        let par = fleet_counters(&programs, threads);
        assert_eq!(
            serial, par,
            "per-campaign counters drifted at DRFIX_THREADS={threads}"
        );
    }
}

#[test]
fn counters_replay_bit_identically_per_policy() {
    let programs = compiled_corpus();
    for policy in policies() {
        for (prog, test) in &programs {
            let cfg = TestConfig {
                runs: RUNS,
                seed: SEED,
                stop_on_race: false,
                policy: policy.clone(),
                ..TestConfig::default()
            };
            let a = run_test_many(prog, test, &cfg);
            let b = run_test_many(prog, test, &cfg);
            assert_eq!(
                a.counters,
                b.counters,
                "{} under {} did not replay",
                test,
                policy.label()
            );
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.distinct_schedules, b.distinct_schedules);
        }
    }
}

#[test]
fn counters_track_real_work() {
    // Sanity-pin the counter semantics on one campaign: fast hits and
    // slow-path snapshots partition the detector events, and the
    // campaign totals match the per-field sums the perf scan relies on.
    let programs = compiled_corpus();
    let (prog, test) = &programs[0];
    let cfg = TestConfig {
        runs: RUNS,
        seed: SEED,
        stop_on_race: false,
        ..TestConfig::default()
    };
    let out = run_test_many(prog, test, &cfg);
    let c = out.counters;
    assert_eq!(c.vm_steps, out.steps, "vm_steps mirrors the step total");
    assert_eq!(
        c.snapshots_avoided,
        c.det.read_fast_hits + c.det.write_fast_hits,
        "every fast hit avoids exactly one snapshot"
    );
    assert!(
        c.det.events >= c.det.read_fast_hits + c.det.write_fast_hits,
        "hits cannot exceed events: {c:?}"
    );
    // Slow-path events each materialise one snapshot; goroutine
    // creation stacks add a few more.
    let slow_events = c.det.events - c.det.read_fast_hits - c.det.write_fast_hits;
    assert!(
        c.stack_snapshots >= slow_events,
        "every slow event needs a stack identity: {c:?}"
    );
    // `stack_snapshots` is a logical count; the caches can only absorb
    // a subset of it (the rest were physical rebuilds).
    let absorbed = c.stack_cache_hits + c.det.read_sync_hits + c.det.write_sync_hits;
    assert!(
        absorbed <= c.stack_snapshots,
        "caches cannot absorb more identities than were required: {c:?}"
    );
    assert!(c.det.clock_joins > 0, "channel edges must join clocks");
}
