//! Tier identity under the fleet: the register tier must produce the
//! same campaign observables as the stack tier at every
//! `DRFIX_THREADS` width.
//!
//! [`counter_invariance`] pins that sharding cannot touch the counters;
//! this suite pins the other axis — that the interpreter *tier* cannot
//! either, at fleet widths 1, 2 and 8. Each `(case, policy)` campaign
//! is summarised by its counters, step total, schedule-dedup tallies
//! and the stable bug hashes of every race it exposed; the summaries
//! must be bit-identical between `Tier::Stack` and `Tier::Reg`, and
//! across thread counts.

use corpus::CorpusConfig;
use drfix::fleet::{self, FleetConfig};
use govm::{
    compile_sources, run_test_many, CompileOptions, Program, RunCounters, SchedulePolicy,
    TestConfig, Tier, VmOptions,
};

const CASES: usize = 5;
const RUNS: u32 = 6;
const SEED: u64 = 0x7E1E;

fn compiled_corpus() -> Vec<(Program, String)> {
    corpus::generate_exposure_corpus(&CorpusConfig {
        eval_cases: CASES,
        db_pairs: 0,
        seed: 0xD0F1,
    })
    .iter()
    .map(|case| {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        (prog, case.test.clone())
    })
    .collect()
}

fn policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ]
}

/// Everything a campaign observed that the tiers must agree on.
#[derive(Debug, Clone, PartialEq)]
struct CampaignSummary {
    counters: RunCounters,
    steps: u64,
    distinct_schedules: u32,
    duplicate_schedules: u32,
    bug_hashes: Vec<String>,
    test_failures: Vec<String>,
}

/// Campaign summaries for every `(case, policy)` job across a fleet of
/// `threads` workers, with every VM on `tier`.
fn fleet_summaries(
    programs: &[(Program, String)],
    threads: usize,
    tier: Tier,
) -> Vec<CampaignSummary> {
    let policies = policies();
    let jobs: Vec<(usize, usize)> = (0..programs.len())
        .flat_map(|c| (0..policies.len()).map(move |p| (c, p)))
        .collect();
    let run = fleet::run_indexed(&FleetConfig::new(threads), jobs.len(), |i| {
        let (c, p) = jobs[i];
        let (prog, test) = &programs[c];
        let cfg = TestConfig {
            runs: RUNS,
            seed: SEED,
            stop_on_race: false,
            policy: policies[p].clone(),
            vm: VmOptions {
                tier,
                ..VmOptions::default()
            },
            ..TestConfig::default()
        };
        let out = run_test_many(prog, test, &cfg);
        CampaignSummary {
            counters: out.counters,
            steps: out.steps,
            distinct_schedules: out.distinct_schedules,
            duplicate_schedules: out.duplicate_schedules,
            bug_hashes: out.races.iter().map(|r| r.bug_hash()).collect(),
            test_failures: out.test_failures,
        }
    });
    run.results
}

#[test]
fn register_tier_matches_stack_tier_at_every_fleet_width() {
    let programs = compiled_corpus();
    let stack = fleet_summaries(&programs, 1, Tier::Stack);
    assert!(
        stack.iter().any(|s| s.counters.det.events > 0),
        "workload is empty"
    );
    for threads in [1, 2, 8] {
        let reg = fleet_summaries(&programs, threads, Tier::Reg);
        assert_eq!(
            stack, reg,
            "register tier diverged from stack tier at DRFIX_THREADS={threads}"
        );
    }
}
