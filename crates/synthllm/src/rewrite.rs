//! Shared AST-rewrite utilities used by the fix strategies.

use golite::ast::*;
use golite::span::Span;

/// Ensures `import "path"` exists in the file.
pub fn ensure_import(file: &mut File, path: &str) {
    if file.imports.iter().any(|i| i.path == path) {
        return;
    }
    file.imports.push(Import {
        alias: None,
        path: path.to_owned(),
        span: Span::DUMMY,
    });
}

/// Applies `tf` to every statement list in the function body, bottom-up,
/// including the bodies of nested function literals. `tf` receives the
/// list after its children were transformed and returns the replacement.
pub fn map_stmt_lists(f: &mut FuncDecl, tf: &mut impl FnMut(Vec<Stmt>) -> Vec<Stmt>) {
    if let Some(body) = &mut f.body {
        map_block(body, tf);
    }
}

fn map_block(b: &mut Block, tf: &mut impl FnMut(Vec<Stmt>) -> Vec<Stmt>) {
    for s in &mut b.stmts {
        map_stmt(s, tf);
    }
    let stmts = std::mem::take(&mut b.stmts);
    b.stmts = tf(stmts);
}

fn map_stmt(s: &mut Stmt, tf: &mut impl FnMut(Vec<Stmt>) -> Vec<Stmt>) {
    match s {
        Stmt::If(st) => {
            map_block(&mut st.then, tf);
            if let Some(el) = &mut st.else_ {
                map_stmt(el, tf);
            }
        }
        Stmt::For(st) => map_block(&mut st.body, tf),
        Stmt::Range(st) => map_block(&mut st.body, tf),
        Stmt::Switch(st) => {
            for c in &mut st.cases {
                for x in &mut c.body {
                    map_stmt(x, tf);
                }
                let body = std::mem::take(&mut c.body);
                c.body = tf(body);
            }
        }
        Stmt::Select(st) => {
            for c in &mut st.cases {
                for x in &mut c.body {
                    map_stmt(x, tf);
                }
                let body = std::mem::take(&mut c.body);
                c.body = tf(body);
            }
        }
        Stmt::Block(b) => map_block(b, tf),
        Stmt::Labeled { stmt, .. } => map_stmt(stmt, tf),
        Stmt::Go { call, .. } | Stmt::Defer { call, .. } => map_expr_blocks(call, tf),
        Stmt::Expr(e) => map_expr_blocks(e, tf),
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter_mut().chain(rhs.iter_mut()) {
                map_expr_blocks(e, tf);
            }
        }
        Stmt::ShortVar { values, .. } | Stmt::Return { values, .. } => {
            for e in values {
                map_expr_blocks(e, tf);
            }
        }
        Stmt::Decl(v) => {
            for e in &mut v.values {
                map_expr_blocks(e, tf);
            }
        }
        _ => {}
    }
}

fn map_expr_blocks(e: &mut Expr, tf: &mut impl FnMut(Vec<Stmt>) -> Vec<Stmt>) {
    match e {
        Expr::FuncLit { body, .. } => map_block(body, tf),
        Expr::Call { fun, args, .. } => {
            map_expr_blocks(fun, tf);
            for a in args {
                map_expr_blocks(a, tf);
            }
        }
        Expr::Selector { expr, .. }
        | Expr::Paren { expr, .. }
        | Expr::Unary { expr, .. }
        | Expr::TypeAssert { expr, .. } => map_expr_blocks(expr, tf),
        Expr::Binary { lhs, rhs, .. } => {
            map_expr_blocks(lhs, tf);
            map_expr_blocks(rhs, tf);
        }
        Expr::Index { expr, index, .. } => {
            map_expr_blocks(expr, tf);
            map_expr_blocks(index, tf);
        }
        Expr::CompositeLit { elems, .. } => {
            for el in elems {
                if let Some(k) = &mut el.key {
                    map_expr_blocks(k, tf);
                }
                map_expr_blocks(&mut el.value, tf);
            }
        }
        _ => {}
    }
}

/// Returns `true` if the statement *directly* (not inside a nested
/// function literal) references `var`.
pub fn stmt_uses_var_directly(s: &Stmt, var: &str) -> bool {
    let mut found = false;
    shallow_stmt_exprs(s, &mut |e| {
        expr_uses_var_shallow(e, var, &mut found);
    });
    if found {
        return true;
    }
    match s {
        Stmt::ShortVar { names, .. } => names.iter().any(|n| n == var),
        Stmt::Decl(v) => v.names.iter().any(|n| n == var),
        _ => false,
    }
}

fn expr_uses_var_shallow(e: &Expr, var: &str, found: &mut bool) {
    match e {
        Expr::Ident { name, .. } if name == var => {
            *found = true;
        }
        Expr::Ident { .. } => {}
        Expr::FuncLit { .. } => {} // do not descend into closures
        Expr::Selector { expr, .. }
        | Expr::Paren { expr, .. }
        | Expr::Unary { expr, .. }
        | Expr::TypeAssert { expr, .. } => expr_uses_var_shallow(expr, var, found),
        Expr::Index { expr, index, .. } => {
            expr_uses_var_shallow(expr, var, found);
            expr_uses_var_shallow(index, var, found);
        }
        Expr::SliceExpr { expr, lo, hi, .. } => {
            expr_uses_var_shallow(expr, var, found);
            if let Some(lo) = lo {
                expr_uses_var_shallow(lo, var, found);
            }
            if let Some(hi) = hi {
                expr_uses_var_shallow(hi, var, found);
            }
        }
        Expr::Call { fun, args, .. } => {
            expr_uses_var_shallow(fun, var, found);
            for a in args {
                expr_uses_var_shallow(a, var, found);
            }
        }
        Expr::Make { args, .. } => {
            for a in args {
                expr_uses_var_shallow(a, var, found);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            expr_uses_var_shallow(lhs, var, found);
            expr_uses_var_shallow(rhs, var, found);
        }
        Expr::CompositeLit { elems, .. } => {
            for el in elems {
                expr_uses_var_shallow(&el.value, var, found);
            }
        }
        _ => {}
    }
}

fn shallow_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Decl(v) => {
            for e in &v.values {
                f(e);
            }
        }
        Stmt::ShortVar { values, .. } | Stmt::Return { values, .. } => {
            for e in values {
                f(e);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs) {
                f(e);
            }
        }
        Stmt::IncDec { expr, .. } => f(expr),
        Stmt::Expr(e) => f(e),
        Stmt::Send { chan, value, .. } => {
            f(chan);
            f(value);
        }
        Stmt::If(st) => f(&st.cond),
        Stmt::For(st) => {
            if let Some(c) = &st.cond {
                f(c);
            }
        }
        Stmt::Range(st) => f(&st.expr),
        Stmt::Switch(st) => {
            if let Some(t) = &st.tag {
                f(t);
            }
        }
        _ => {}
    }
}

/// Returns `true` if the statement declares `var` (`:=` or `var`).
pub fn stmt_declares_var(s: &Stmt, var: &str) -> bool {
    match s {
        Stmt::ShortVar { names, .. } => names.iter().any(|n| n == var),
        Stmt::Decl(v) => v.names.iter().any(|n| n == var),
        _ => false,
    }
}

/// `expr.Method(args...)` statement.
pub fn method_stmt(recv: Expr, method: &str, args: Vec<Expr>) -> Stmt {
    Stmt::Expr(Expr::method(recv, method, args))
}

/// Whether a statement is a `go` launch (or contains one at top level).
pub fn is_go_stmt(s: &Stmt) -> bool {
    matches!(s, Stmt::Go { .. })
}

/// Rebuilds `go func(...) { body }(args)` → pulls out the closure.
pub fn go_closure_mut(s: &mut Stmt) -> Option<&mut Block> {
    if let Stmt::Go {
        call: Expr::Call { fun, .. },
        ..
    } = s
    {
        if let Expr::FuncLit { body, .. } = fun.as_mut() {
            return Some(body);
        }
    }
    None
}

/// Whether a statement contains `return` at any nesting level outside
/// closures (lock-wrapping such statements is unsafe).
pub fn contains_return(s: &Stmt) -> bool {
    let mut found = false;
    fn walk(s: &Stmt, found: &mut bool) {
        match s {
            Stmt::Return { .. } => *found = true,
            Stmt::If(st) => {
                for x in &st.then.stmts {
                    walk(x, found);
                }
                if let Some(el) = &st.else_ {
                    walk(el, found);
                }
            }
            Stmt::For(st) => {
                for x in &st.body.stmts {
                    walk(x, found);
                }
            }
            Stmt::Range(st) => {
                for x in &st.body.stmts {
                    walk(x, found);
                }
            }
            Stmt::Block(b) => {
                for x in &b.stmts {
                    walk(x, found);
                }
            }
            Stmt::Switch(st) => {
                for c in &st.cases {
                    for x in &c.body {
                        walk(x, found);
                    }
                }
            }
            Stmt::Select(st) => {
                for c in &st.cases {
                    for x in &c.body {
                        walk(x, found);
                    }
                }
            }
            Stmt::Labeled { stmt, .. } => walk(stmt, found),
            _ => {}
        }
    }
    walk(s, &mut found);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::parse_file;

    #[test]
    fn ensure_import_is_idempotent() {
        let mut f = parse_file("package p\n\nimport \"sync\"\n").unwrap();
        ensure_import(&mut f, "sync");
        ensure_import(&mut f, "sync/atomic");
        ensure_import(&mut f, "sync/atomic");
        assert_eq!(f.imports.len(), 2);
    }

    #[test]
    fn map_stmt_lists_reaches_closures() {
        let mut file =
            parse_file("package p\nfunc f() {\n\ta()\n\tgo func() {\n\t\tb()\n\t}()\n}\n").unwrap();
        let mut count = 0;
        let func = file.find_func_mut("f").unwrap();
        map_stmt_lists(func, &mut |stmts| {
            count += stmts.len();
            stmts
        });
        // Outer list (2 stmts) + closure list (1 stmt).
        assert_eq!(count, 3);
    }

    #[test]
    fn shallow_use_skips_closures() {
        let file = parse_file(
            "package p\nfunc f() {\n\tgo func() {\n\t\tx = 1\n\t}()\n\ty := x\n\tuse(y)\n}\n",
        )
        .unwrap();
        let body = &file.find_func("f").unwrap().body.as_ref().unwrap().stmts;
        assert!(
            !stmt_uses_var_directly(&body[0], "x"),
            "go stmt captures, not uses"
        );
        assert!(stmt_uses_var_directly(&body[1], "x"));
    }

    #[test]
    fn contains_return_finds_nested() {
        let file = parse_file(
            "package p\nfunc f() int {\n\tif true {\n\t\treturn 1\n\t}\n\tx := 2\n\treturn x\n}\n",
        )
        .unwrap();
        let body = &file.find_func("f").unwrap().body.as_ref().unwrap().stmts;
        assert!(contains_return(&body[0]));
        assert!(!contains_return(&body[1]));
    }
}
