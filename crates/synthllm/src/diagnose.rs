//! Race-pattern diagnosers: map racy code + the reported variable to
//! candidate categories and repair strategies.
//!
//! These play the role of the LLM's "understanding" of the bug: given
//! the prompt's code and the marked racy accesses, what kind of race is
//! this and which repairs are plausible? Detection is purely structural
//! (AST queries), mirroring the patterns catalogued by Chabbi &
//! Ramanathan's study and the paper's Table 3.

use crate::{RaceCategory, StrategyKind};
use golite::ast::*;
use golite::visit;
use serde::{Deserialize, Serialize};

/// Where a fix strategy must operate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// A variable local to `func`.
    Local {
        /// Enclosing function.
        func: String,
        /// Variable name.
        var: String,
    },
    /// A struct field (file-level fixes).
    Field {
        /// Declared type name.
        type_name: String,
        /// Field name.
        field: String,
    },
    /// A package-level variable.
    Global {
        /// Variable name.
        var: String,
    },
    /// A structural pattern inside `func` (no single variable target).
    Pattern {
        /// Enclosing function.
        func: String,
        /// Secondary variable of interest.
        var: String,
    },
}

impl Target {
    /// The function this target lives in, when known.
    pub fn func(&self) -> Option<&str> {
        match self {
            Target::Local { func, .. } | Target::Pattern { func, .. } => Some(func),
            _ => None,
        }
    }
}

/// One diagnosis: a candidate explanation + repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Race category.
    pub category: RaceCategory,
    /// Proposed repair strategy.
    pub strategy: StrategyKind,
    /// Repair target.
    pub target: Target,
    /// Structural confidence in `[0, 1]`.
    pub score: f64,
}

/// Diagnoses `file` given the reported racy variable. Returns candidates
/// ordered by score (best first).
pub fn diagnose(file: &File, racy_var: &str) -> Vec<Diagnosis> {
    let mut out = Vec::new();

    for f in file.funcs() {
        let Some(body) = &f.body else { continue };

        // 1. Loop-variable capture: racy var is a range binding whose loop
        //    body launches a goroutine using it.
        if let Some(()) = range_binding_captured(body, racy_var) {
            out.push(Diagnosis {
                category: RaceCategory::LoopVarCapture,
                strategy: StrategyKind::PrivatizeLoopVar,
                target: Target::Local {
                    func: f.name.clone(),
                    var: racy_var.to_owned(),
                },
                score: 0.95,
            });
        }

        // 2. wg.Add inside a goroutine (Listing 6).
        if wg_add_inside_goroutine(body) {
            out.push(Diagnosis {
                category: RaceCategory::MissingSync,
                strategy: StrategyKind::MoveWgAddBeforeGo,
                target: Target::Pattern {
                    func: f.name.clone(),
                    var: racy_var.to_owned(),
                },
                score: 0.93,
            });
        }

        // 3. Parallel table test sharing an object (Listing 7). Race
        // reports often point inside the shared object (`state` of a
        // hash); when the reported name is not a source variable, find
        // the shared constructor-built variable ourselves.
        if f.name.starts_with("Test") && parallel_subtests(body) {
            let shared_var = if shared_ctor_decl(body, racy_var).is_some() {
                Some(racy_var.to_owned())
            } else {
                find_shared_ctor_var(body)
            };
            if let Some(var) = shared_var {
                out.push(Diagnosis {
                    category: RaceCategory::ParallelTest,
                    strategy: StrategyKind::PerCaseInstance,
                    target: Target::Local {
                        func: f.name.clone(),
                        var,
                    },
                    score: 0.92,
                });
            }
        }

        let closures = go_closures(body);
        let assigned_in_closure = closures.iter().any(|c| assigns_var(c, racy_var));
        let read_in_closure = closures.iter().any(|c| reads_var(c, racy_var));
        let declared_here = declares_var(body, racy_var) || is_param(f, racy_var);

        if declared_here {
            // 4. Concurrent map/slice on a local.
            match local_var_kind(body, racy_var) {
                Some(VarKind::Map) if !closures.is_empty() => {
                    out.push(Diagnosis {
                        category: RaceCategory::ConcurrentMap,
                        strategy: StrategyKind::MapToSyncMap,
                        target: Target::Local {
                            func: f.name.clone(),
                            var: racy_var.to_owned(),
                        },
                        score: 0.88,
                    });
                    out.push(Diagnosis {
                        category: RaceCategory::ConcurrentMap,
                        strategy: StrategyKind::MutexGuard,
                        target: Target::Local {
                            func: f.name.clone(),
                            var: racy_var.to_owned(),
                        },
                        score: 0.6,
                    });
                }
                Some(VarKind::Slice) if !closures.is_empty() => {
                    out.push(Diagnosis {
                        category: RaceCategory::ConcurrentSlice,
                        strategy: StrategyKind::MutexGuard,
                        target: Target::Local {
                            func: f.name.clone(),
                            var: racy_var.to_owned(),
                        },
                        score: 0.85,
                    });
                }
                Some(VarKind::Counter) if assigned_in_closure => {
                    out.push(Diagnosis {
                        category: RaceCategory::MissingSync,
                        strategy: StrategyKind::AtomicCounter,
                        target: Target::Local {
                            func: f.name.clone(),
                            var: racy_var.to_owned(),
                        },
                        score: 0.72,
                    });
                    out.push(Diagnosis {
                        category: RaceCategory::MissingSync,
                        strategy: StrategyKind::MutexGuard,
                        target: Target::Local {
                            func: f.name.clone(),
                            var: racy_var.to_owned(),
                        },
                        score: 0.68,
                    });
                }
                _ => {}
            }

            // 5. Capture-by-reference flavours.
            if assigned_in_closure {
                if has_ctx_done_select(body) {
                    out.push(Diagnosis {
                        category: RaceCategory::CaptureByReference,
                        strategy: StrategyKind::ChannelResult,
                        target: Target::Local {
                            func: f.name.clone(),
                            var: racy_var.to_owned(),
                        },
                        score: 0.86,
                    });
                }
                if closure_reads_after_write(&closures, racy_var) {
                    out.push(Diagnosis {
                        category: RaceCategory::CaptureByReference,
                        strategy: StrategyKind::LocalCopyInGoroutine,
                        target: Target::Local {
                            func: f.name.clone(),
                            var: racy_var.to_owned(),
                        },
                        score: 0.87,
                    });
                }
                out.push(Diagnosis {
                    category: RaceCategory::CaptureByReference,
                    strategy: StrategyKind::RedeclareInGoroutine,
                    target: Target::Local {
                        func: f.name.clone(),
                        var: racy_var.to_owned(),
                    },
                    score: if local_var_kind(body, racy_var) == Some(VarKind::Error) {
                        0.9
                    } else {
                        0.55
                    },
                });
            } else if read_in_closure && writes_var_outside_closures(body, racy_var) {
                out.push(Diagnosis {
                    category: RaceCategory::CaptureByReference,
                    strategy: StrategyKind::PassParamToGoroutine,
                    target: Target::Local {
                        func: f.name.clone(),
                        var: racy_var.to_owned(),
                    },
                    score: 0.8,
                });
                out.push(Diagnosis {
                    category: RaceCategory::CaptureByReference,
                    strategy: StrategyKind::LocalCopyInGoroutine,
                    target: Target::Local {
                        func: f.name.clone(),
                        var: racy_var.to_owned(),
                    },
                    score: 0.55,
                });
            }
        }
    }

    // 6. Racy struct field: map/slice/plain field declared in this file.
    for d in &file.decls {
        if let Decl::Type(t) = d {
            if let Type::Struct(fields) = &t.ty {
                for fl in fields {
                    if fl.names.iter().any(|n| n == racy_var) {
                        let (cat, strat, score) = match &fl.ty {
                            Type::Map { .. } => (
                                RaceCategory::ConcurrentMap,
                                StrategyKind::MapToSyncMap,
                                0.88,
                            ),
                            Type::Slice(_) => (
                                RaceCategory::ConcurrentSlice,
                                StrategyKind::MutexGuard,
                                0.85,
                            ),
                            Type::Named { path, .. }
                                if matches!(path.join(".").as_str(), "int" | "int32" | "int64") =>
                            {
                                (RaceCategory::MissingSync, StrategyKind::AtomicCounter, 0.7)
                            }
                            _ => (RaceCategory::MissingSync, StrategyKind::MutexGuard, 0.66),
                        };
                        out.push(Diagnosis {
                            category: cat,
                            strategy: strat,
                            target: Target::Field {
                                type_name: t.name.clone(),
                                field: racy_var.to_owned(),
                            },
                            score,
                        });
                        if strat != StrategyKind::MutexGuard {
                            out.push(Diagnosis {
                                category: cat,
                                strategy: StrategyKind::MutexGuard,
                                target: Target::Field {
                                    type_name: t.name.clone(),
                                    field: racy_var.to_owned(),
                                },
                                score: score - 0.25,
                            });
                        }
                    }
                }
            }
        }
    }

    // 7. Shared global rand source / config. ThreadSanitizer reports on
    // PRNG internals name the source's `state` cell, not the global.
    let prng_internal = racy_var == "state" || racy_var == "pos";
    for d in &file.decls {
        if let Decl::Var(v) = d {
            if v.names.iter().any(|n| n == racy_var) || prng_internal {
                let is_rand = v.values.iter().any(|e| {
                    let mut found = false;
                    visit::walk_expr(e, &mut |x| {
                        if let Expr::Selector { name, .. } = x {
                            if name == "NewSource" {
                                found = true;
                            }
                        }
                    });
                    found
                });
                if is_rand {
                    out.push(Diagnosis {
                        category: RaceCategory::Other,
                        strategy: StrategyKind::FreshSourcePerUse,
                        target: Target::Global {
                            var: racy_var.to_owned(),
                        },
                        score: 0.9,
                    });
                } else {
                    out.push(Diagnosis {
                        category: RaceCategory::MissingSync,
                        strategy: StrategyKind::MutexGuard,
                        target: Target::Global {
                            var: racy_var.to_owned(),
                        },
                        score: 0.5,
                    });
                }
            }
        }
    }

    // 8. Shared struct passed to goroutines → copy before modification.
    for f in file.funcs() {
        let Some(body) = &f.body else { continue };
        let closures = go_closures(body);
        if closures.len() >= 2
            && closures
                .iter()
                .all(|c| field_write_on(c, racy_var) || reads_var(c, racy_var))
            && closures.iter().any(|c| field_write_on(c, racy_var))
        {
            out.push(Diagnosis {
                category: RaceCategory::Other,
                strategy: StrategyKind::StructCopy,
                target: Target::Local {
                    func: f.name.clone(),
                    var: racy_var.to_owned(),
                },
                score: 0.78,
            });
        }
    }

    // 8c. Closures share a locally-constructed aggregate whose field is
    // racy (the LCA pattern): privatise by copying the aggregate.
    for d in &file.decls {
        let Decl::Type(t) = d else { continue };
        let Type::Struct(fields) = &t.ty else {
            continue;
        };
        if !fields.iter().any(|f| f.names.iter().any(|n| n == racy_var)) {
            continue;
        }
        for f in file.funcs() {
            let Some(body) = &f.body else { continue };
            let closures = go_closures(body);
            if closures.len() < 2 {
                continue;
            }
            // A local built from a composite literal of the type…
            let mut candidates: Vec<String> = Vec::new();
            visit::walk_stmts(body, &mut |s| {
                if let Stmt::ShortVar { names, values, .. } = s {
                    if names.len() == 1 && values.len() == 1 {
                        let lit_of_type = {
                            let mut found = false;
                            visit::walk_expr(&values[0], &mut |e| {
                                if let Expr::CompositeLit { ty: Some(ct), .. } = e {
                                    if ct.is_named(&t.name) {
                                        found = true;
                                    }
                                }
                            });
                            found
                        };
                        if lit_of_type && !candidates.contains(&names[0]) {
                            candidates.push(names[0].clone());
                        }
                    }
                }
            });
            for var in candidates {
                if closures.iter().filter(|c| reads_var(c, &var)).count() >= 2 {
                    out.push(Diagnosis {
                        category: RaceCategory::Other,
                        strategy: StrategyKind::StructCopy,
                        target: Target::Local {
                            func: f.name.clone(),
                            var,
                        },
                        score: 0.82,
                    });
                }
            }
        }
    }

    // 8b. The report names a struct *field* (`Limit`): find goroutine
    // closures writing that field through a shared local and copy it.
    for f in file.funcs() {
        let Some(body) = &f.body else { continue };
        let closures = go_closures(body);
        if closures.len() < 2 {
            continue;
        }
        let mut roots: Vec<String> = Vec::new();
        for c in &closures {
            for r in field_write_roots(c, racy_var) {
                if !roots.contains(&r) {
                    roots.push(r);
                }
            }
        }
        if roots.len() == 1 {
            out.push(Diagnosis {
                category: RaceCategory::Other,
                strategy: StrategyKind::StructCopy,
                target: Target::Local {
                    func: f.name.clone(),
                    var: roots.remove(0),
                },
                score: 0.8,
            });
        }
    }

    // 9. Fallbacks: blanket approaches, always present, always last.
    if let Some(f) = file.funcs().find(|f| {
        f.body
            .as_ref()
            .map(|b| mentions_var(b, racy_var))
            .unwrap_or(false)
    }) {
        out.push(Diagnosis {
            category: RaceCategory::MissingSync,
            strategy: StrategyKind::MutexGuard,
            target: Target::Local {
                func: f.name.clone(),
                var: racy_var.to_owned(),
            },
            score: 0.35,
        });
        out.push(Diagnosis {
            category: RaceCategory::MissingSync,
            strategy: StrategyKind::BlanketMutex,
            target: Target::Local {
                func: f.name.clone(),
                var: racy_var.to_owned(),
            },
            score: 0.3,
        });
    }

    // Dedup by (strategy, target), keep the highest score, sort.
    let mut deduped: Vec<Diagnosis> = Vec::new();
    for d in out {
        if let Some(existing) = deduped
            .iter_mut()
            .find(|e| e.strategy == d.strategy && e.target == d.target)
        {
            if d.score > existing.score {
                *existing = d;
            }
        } else {
            deduped.push(d);
        }
    }
    deduped.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    deduped
}

// ------------------------------------------------------------- structural

/// The goroutine-launch closures in a body: `go func(){}` bodies and
/// closures passed to `.Go(...)` / `t.Run(...)`.
pub fn go_closures(body: &Block) -> Vec<Block> {
    let mut out = Vec::new();
    visit::walk_stmts(body, &mut |s| match s {
        Stmt::Go {
            call: Expr::Call { fun, .. },
            ..
        } => {
            if let Expr::FuncLit { body, .. } = fun.as_ref() {
                out.push(body.clone());
            }
        }
        Stmt::Expr(Expr::Call { fun, args, .. }) => {
            if let Expr::Selector { name, .. } = fun.as_ref() {
                if name == "Go" || name == "Run" {
                    for a in args {
                        if let Expr::FuncLit { body, .. } = a {
                            out.push(body.clone());
                        }
                    }
                }
            }
        }
        _ => {}
    });
    out
}

fn assigns_var(block: &Block, var: &str) -> bool {
    let mut found = false;
    visit::walk_stmts(block, &mut |s| match s {
        Stmt::Assign { lhs, .. } if lhs.iter().any(|e| e.as_ident() == Some(var)) => {
            found = true;
        }
        Stmt::IncDec { expr, .. } if expr.as_ident() == Some(var) => {
            found = true;
        }
        _ => {}
    });
    found
}

fn reads_var(block: &Block, var: &str) -> bool {
    let mut found = false;
    visit::walk_exprs(block, &mut |e| {
        if let Expr::Ident { name, .. } = e {
            if name == var {
                found = true;
            }
        }
    });
    found
}

fn mentions_var(block: &Block, var: &str) -> bool {
    reads_var(block, var) || declares_var(block, var)
}

fn declares_var(block: &Block, var: &str) -> bool {
    let mut found = false;
    visit::walk_stmts(block, &mut |s| match s {
        Stmt::ShortVar { names, .. } if names.iter().any(|n| n == var) => {
            found = true;
        }
        Stmt::Decl(v) if v.names.iter().any(|n| n == var) => {
            found = true;
        }
        _ => {}
    });
    found
}

fn is_param(f: &FuncDecl, var: &str) -> bool {
    f.sig.param_names().any(|(n, _)| n == var)
        || f.receiver.as_ref().map(|r| r.name == var).unwrap_or(false)
}

fn writes_var_outside_closures(body: &Block, var: &str) -> bool {
    // Direct statements only (not descending into function literals).
    fn scan(stmts: &[Stmt], var: &str, found: &mut bool) {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, .. } if lhs.iter().any(|e| e.as_ident() == Some(var)) => {
                    *found = true;
                }
                Stmt::IncDec { expr, .. } if expr.as_ident() == Some(var) => {
                    *found = true;
                }
                Stmt::If(st) => {
                    scan(&st.then.stmts, var, found);
                    if let Some(e) = &st.else_ {
                        scan(std::slice::from_ref(e), var, found);
                    }
                }
                Stmt::For(st) => scan(&st.body.stmts, var, found),
                Stmt::Range(st) => scan(&st.body.stmts, var, found),
                Stmt::Block(b) => scan(&b.stmts, var, found),
                _ => {}
            }
        }
    }
    let mut found = false;
    scan(&body.stmts, var, &mut found);
    found
}

/// Rough type classification of a local variable from its declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Map,
    Slice,
    Counter,
    Error,
    Other,
}

fn local_var_kind(body: &Block, var: &str) -> Option<VarKind> {
    let mut kind = None;
    visit::walk_stmts(body, &mut |s| {
        let (names, values, ty): (&[String], &[Expr], Option<&Type>) = match s {
            Stmt::ShortVar { names, values, .. } => (names, values, None),
            Stmt::Decl(v) => (&v.names, &v.values, v.ty.as_ref()),
            _ => return,
        };
        let Some(idx) = names.iter().position(|n| n == var) else {
            return;
        };
        if let Some(t) = ty {
            kind = Some(match t {
                Type::Map { .. } => VarKind::Map,
                Type::Slice(_) => VarKind::Slice,
                Type::Named { path, .. } => match path.join(".").as_str() {
                    "int" | "int32" | "int64" => VarKind::Counter,
                    "error" => VarKind::Error,
                    _ => VarKind::Other,
                },
                _ => VarKind::Other,
            });
            return;
        }
        let Some(v) = values.get(idx.min(values.len().saturating_sub(1))) else {
            return;
        };
        kind = Some(match v {
            Expr::Make {
                ty: Type::Map { .. },
                ..
            } => VarKind::Map,
            Expr::Make {
                ty: Type::Slice(_), ..
            } => VarKind::Slice,
            Expr::CompositeLit {
                ty: Some(Type::Map { .. }),
                ..
            } => VarKind::Map,
            Expr::CompositeLit {
                ty: Some(Type::Slice(_)),
                ..
            } => VarKind::Slice,
            Expr::IntLit { .. } => VarKind::Counter,
            Expr::Call { fun, .. } => {
                // err := f() — callee returning error by convention.
                if fun
                    .as_ident()
                    .map(|n| n.to_lowercase().contains("work") || n.to_lowercase().contains("task"))
                    .unwrap_or(false)
                    || var == "err"
                {
                    VarKind::Error
                } else {
                    VarKind::Other
                }
            }
            _ => VarKind::Other,
        });
    });
    kind
}

fn range_binding_captured(body: &Block, var: &str) -> Option<()> {
    let mut hit = None;
    visit::walk_stmts(body, &mut |s| {
        if let Stmt::Range(st) = s {
            let bound = st
                .key
                .as_ref()
                .and_then(|e| e.as_ident())
                .map(|n| n == var)
                .unwrap_or(false)
                || st
                    .value
                    .as_ref()
                    .and_then(|e| e.as_ident())
                    .map(|n| n == var)
                    .unwrap_or(false);
            if !bound {
                return;
            }
            // Rebinding (`v := v`) would shadow the loop var — then this
            // is not the classic race.
            let rebound = st.body.stmts.iter().any(|x| {
                matches!(x, Stmt::ShortVar { names, values, .. }
                    if names.len() == 1 && names[0] == var
                        && values.len() == 1 && values[0].as_ident() == Some(var))
            });
            if rebound {
                return;
            }
            for c in go_closures(&st.body) {
                if reads_var(&c, var) {
                    hit = Some(());
                }
            }
        }
    });
    hit
}

fn wg_add_inside_goroutine(body: &Block) -> bool {
    let mut found = false;
    visit::walk_stmts(body, &mut |s| {
        if let Stmt::Go {
            call: Expr::Call { fun, .. },
            ..
        } = s
        {
            if let Expr::FuncLit { body: cb, .. } = fun.as_ref() {
                visit::walk_exprs(cb, &mut |e| {
                    if let Expr::Call { fun, .. } = e {
                        if let Expr::Selector { name, .. } = fun.as_ref() {
                            if name == "Add" {
                                found = true;
                            }
                        }
                    }
                });
            }
        }
    });
    found
}

fn parallel_subtests(body: &Block) -> bool {
    let mut has_run = false;
    let mut has_parallel = false;
    visit::walk_exprs(body, &mut |e| {
        if let Expr::Call { fun, .. } = e {
            if let Expr::Selector { name, .. } = fun.as_ref() {
                if name == "Run" {
                    has_run = true;
                }
                if name == "Parallel" {
                    has_parallel = true;
                }
            }
        }
    });
    has_run && has_parallel
}

/// Finds a `v := ctor(...)` declaration for the shared object in a test.
fn shared_ctor_decl(body: &Block, var: &str) -> Option<Expr> {
    let mut ctor = None;
    for s in &body.stmts {
        if let Stmt::ShortVar { names, values, .. } = s {
            if names.len() == 1
                && names[0] == var
                && values.len() == 1
                && matches!(&values[0], Expr::Call { .. })
            {
                ctor = Some(values[0].clone());
            }
        }
    }
    ctor
}

fn closure_reads_after_write(closures: &[Block], var: &str) -> bool {
    closures.iter().any(|c| {
        let mut wrote = false;
        let mut read_after = false;
        visit::walk_stmts(c, &mut |s| match s {
            Stmt::Assign { lhs, rhs, .. } => {
                if lhs.iter().any(|e| e.as_ident() == Some(var)) {
                    wrote = true;
                }
                if wrote {
                    for e in rhs {
                        let mut f = false;
                        visit::walk_expr(e, &mut |x| {
                            if let Expr::Ident { name, .. } = x {
                                if name == var {
                                    f = true;
                                }
                            }
                        });
                        if f {
                            read_after = true;
                        }
                    }
                }
            }
            Stmt::Expr(e) if wrote => {
                visit::walk_expr(e, &mut |x| {
                    if let Expr::Ident { name, .. } = x {
                        if name == var {
                            read_after = true;
                        }
                    }
                });
            }
            _ => {}
        });
        wrote && read_after
    })
}

fn has_ctx_done_select(body: &Block) -> bool {
    let mut found = false;
    visit::walk_stmts(body, &mut |s| {
        if let Stmt::Select(st) = s {
            for c in &st.cases {
                if let golite::ast::CommClause::Recv { chan, .. } = &c.comm {
                    let mut done = false;
                    visit::walk_expr(chan, &mut |e| {
                        if let Expr::Selector { name, .. } = e {
                            if name == "Done" {
                                done = true;
                            }
                        }
                    });
                    if done {
                        found = true;
                    }
                }
            }
        }
    });
    found
}

fn field_write_on(block: &Block, var: &str) -> bool {
    let mut found = false;
    visit::walk_stmts(block, &mut |s| {
        if let Stmt::Assign { lhs, .. } = s {
            for e in lhs {
                if let Expr::Selector { expr, .. } = e {
                    if expr.as_ident() == Some(var) {
                        found = true;
                    }
                }
            }
        }
    });
    found
}

/// Finds a `v := ctor(...)` whose `v` is used at least twice afterwards —
/// the shared object of a table test.
fn find_shared_ctor_var(body: &Block) -> Option<String> {
    for s in &body.stmts {
        if let Stmt::ShortVar { names, values, .. } = s {
            if names.len() == 1 && values.len() == 1 && matches!(&values[0], Expr::Call { .. }) {
                let var = &names[0];
                let mut uses = 0;
                visit::walk_exprs(body, &mut |e| {
                    if let Expr::Ident { name, .. } = e {
                        if name == var {
                            uses += 1;
                        }
                    }
                });
                if uses >= 2 {
                    return Some(var.clone());
                }
            }
        }
    }
    None
}

/// Root identifiers `x` with a `x.field = …` write in the block.
fn field_write_roots(block: &Block, field: &str) -> Vec<String> {
    let mut out = Vec::new();
    visit::walk_stmts(block, &mut |s| {
        if let Stmt::Assign { lhs, .. } = s {
            for e in lhs {
                if let Expr::Selector { expr, name, .. } = e {
                    if name == field {
                        if let Some(root) = expr.as_ident() {
                            if !out.iter().any(|x| x == root) {
                                out.push(root.to_owned());
                            }
                        }
                    }
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(src: &str, var: &str) -> Vec<Diagnosis> {
        let file = golite::parse_file(src).unwrap();
        diagnose(&file, var)
    }

    #[test]
    fn err_capture_suggests_redeclare_first() {
        let src = r#"
package p

import "sync"

func F() error {
	err := work()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = task(); err != nil {
			note()
		}
	}()
	if err = task2(); err != nil {
		note()
	}
	wg.Wait()
	return err
}

func work() error  { return nil }
func task() error  { return nil }
func task2() error { return nil }
func note()        {}
"#;
        let ds = diag(src, "err");
        assert_eq!(ds[0].strategy, StrategyKind::RedeclareInGoroutine);
        assert_eq!(ds[0].category, RaceCategory::CaptureByReference);
    }

    #[test]
    fn loop_var_suggests_privatize() {
        let src = r#"
package p

import "sync"

func F(nums []int) {
	var wg sync.WaitGroup
	for _, num := range nums {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(num)
		}()
	}
	wg.Wait()
}

func use(x int) {}
"#;
        let ds = diag(src, "num");
        assert_eq!(ds[0].strategy, StrategyKind::PrivatizeLoopVar);
        assert_eq!(ds[0].category, RaceCategory::LoopVarCapture);
    }

    #[test]
    fn rebound_loop_var_is_not_flagged() {
        let src = r#"
package p

func F(nums []int) {
	for _, num := range nums {
		num := num
		go func() {
			use(num)
		}()
	}
}

func use(x int) {}
"#;
        let ds = diag(src, "num");
        assert!(ds
            .iter()
            .all(|d| d.strategy != StrategyKind::PrivatizeLoopVar));
    }

    #[test]
    fn wg_add_in_goroutine_detected() {
        let src = r#"
package p

import "sync"

func F() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		go func(n int) {
			wg.Add(1)
			defer wg.Done()
			use(n)
		}(i)
	}
	wg.Wait()
}

func use(x int) {}
"#;
        let ds = diag(src, "m");
        assert!(ds
            .iter()
            .any(|d| d.strategy == StrategyKind::MoveWgAddBeforeGo));
    }

    #[test]
    fn local_map_suggests_syncmap() {
        let src = r#"
package p

import "sync"

func F() {
	m := make(map[int]int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m[1] = 1
	}()
	m[2] = 2
	wg.Wait()
}
"#;
        let ds = diag(src, "m");
        assert_eq!(ds[0].strategy, StrategyKind::MapToSyncMap);
    }

    #[test]
    fn field_map_targets_the_type() {
        let src = r#"
package p

type Scanner struct {
	lockMap map[string]int
}

func (t *Scanner) runShards() {
	for k := range t.lockMap {
		delete(t.lockMap, k)
	}
}
"#;
        let ds = diag(src, "lockMap");
        assert_eq!(ds[0].strategy, StrategyKind::MapToSyncMap);
        assert!(matches!(&ds[0].target, Target::Field { type_name, field }
            if type_name == "Scanner" && field == "lockMap"));
    }

    #[test]
    fn table_test_suggests_per_case_instance() {
        let src = r#"
package p

import (
	"testing"
	"crypto/md5"
)

func TestRead(t *testing.T) {
	sampleHash := md5.New()
	tests := []struct {
		name string
	}{
		{name: "one"},
		{name: "two"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			sampleHash.Write(tt.name)
		})
	}
}
"#;
        let ds = diag(src, "sampleHash");
        assert_eq!(ds[0].strategy, StrategyKind::PerCaseInstance);
        assert_eq!(ds[0].category, RaceCategory::ParallelTest);
    }

    #[test]
    fn global_rand_source_detected() {
        let src = r#"
package p

import "math/rand"

var source = rand.NewSource(1001)

func handler() {
	random := rand.New(source)
	use(random.Intn(10))
}

func use(x int) {}
"#;
        let ds = diag(src, "source");
        assert_eq!(ds[0].strategy, StrategyKind::FreshSourcePerUse);
    }

    #[test]
    fn ctx_select_suggests_channel_result() {
        let src = r#"
package p

import "context"

func F(ctx context.Context) error {
	resultChan := make(chan int, 1)
	var err error
	go func() {
		var result int
		result, err = evaluate()
		resultChan <- result
	}()
	select {
	case r := <-resultChan:
		use(r)
	case <-ctx.Done():
		use(0)
	}
	return err
}

func evaluate() (int, error) { return 1, nil }
func use(x int)              {}
"#;
        let ds = diag(src, "err");
        assert!(ds
            .iter()
            .take(2)
            .any(|d| d.strategy == StrategyKind::ChannelResult));
    }

    #[test]
    fn fallback_always_offers_mutex() {
        let src = "package p\n\nfunc F() {\n\tx := 1\n\tuse(x)\n}\n\nfunc use(v int) {}\n";
        let ds = diag(src, "x");
        assert!(ds
            .iter()
            .any(|d| d.strategy == StrategyKind::MutexGuard
                || d.strategy == StrategyKind::BlanketMutex));
    }

    #[test]
    fn diagnoses_are_sorted_and_deduped() {
        let src = r#"
package p

import "sync"

func F() {
	counter := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		counter = counter + 1
	}()
	counter = counter + 1
	wg.Wait()
}
"#;
        let ds = diag(src, "counter");
        for w in ds.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let mut seen = std::collections::HashSet::new();
        for d in &ds {
            assert!(seen.insert((d.strategy, format!("{:?}", d.target))));
        }
    }
}
