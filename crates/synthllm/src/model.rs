//! The synthetic LLM: prompt in, complete revised source out.
//!
//! `generate` mirrors the paper's prompt contract (Appendix E): the
//! response is the entire revised code, nothing else. Internally the
//! model (1) diagnoses the racy code, (2) infers the repair idiom of the
//! retrieved example (if any) from the example's own diff, (3) ranks
//! candidate strategies by structural confidence × tier prior × example
//! guidance, (4) rolls deterministic capability dice for mis-localisation
//! and botching, and (5) applies a *real* AST rewrite.

use crate::capability::{draw, CapabilityModel, ModelTier};
use crate::diagnose::{diagnose, Diagnosis, Target};
use crate::strategy::{self, StrategyKind};
use crate::{FixRequest, FixResponse, RaceCategory, Scope};

/// One enumerated candidate patch (tournament mode, §4.4 generalized):
/// a complete revised source plus the model's self-reported confidence.
///
/// Confidence is a *prior* — structural fit times tier skill, scaled to
/// the best-ranked candidate — and deliberately ignores the botch dice:
/// a model does not know when it has botched.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Full revised code.
    pub code: String,
    /// The strategy applied.
    pub strategy: StrategyKind,
    /// The diagnosis target the strategy was applied to (needed to
    /// re-apply the same strategy during repair).
    pub target: Target,
    /// Whether the application was degraded by the capability model.
    pub degraded: bool,
    /// Self-reported confidence in `(0, 1]`.
    pub confidence: f64,
    /// Enumeration rank within this request (0 = the strategy
    /// `generate` would pick first).
    pub rank: usize,
    /// Free-text note.
    pub note: String,
}

/// The synthetic LLM.
#[derive(Debug, Clone)]
pub struct SynthLlm {
    cap: CapabilityModel,
    seed: u64,
}

/// Score-ranked diagnoses plus the strategy excluded by feedback.
type RankedDiagnoses = (Vec<(f64, Diagnosis)>, Option<StrategyKind>);

impl SynthLlm {
    /// Creates a model of the given tier with a sampling seed.
    pub fn new(tier: ModelTier, seed: u64) -> Self {
        SynthLlm {
            cap: CapabilityModel::new(tier),
            seed,
        }
    }

    /// The tier.
    pub fn tier(&self) -> ModelTier {
        self.cap.tier()
    }

    /// Generates a candidate fix for the request.
    pub fn generate(&self, req: &FixRequest) -> FixResponse {
        let Ok(file) = golite::parse_file(&req.code) else {
            return FixResponse {
                code: None,
                strategy: None,
                degraded: false,
                note: "prompt code does not parse".into(),
            };
        };

        let (ranked, example_idiom) = match self.rank_diagnoses(req, &file) {
            Ok(r) => r,
            Err(note) => {
                return FixResponse {
                    code: None,
                    strategy: None,
                    degraded: false,
                    note: note.into(),
                }
            }
        };

        let attempt_tag = format!("attempt{}", req.feedback.len());

        // Mis-localisation roll (file scope only).
        let misloc_p = self.cap.mislocalisation(
            req.scope == Scope::File,
            req.context_funcs,
            req.example.is_some(),
            !req.feedback.is_empty(),
        );
        let misloc_roll = draw(
            self.seed,
            &[&req.case_key, &req.racy_var, &attempt_tag],
            "misloc",
        );
        if misloc_roll < misloc_p {
            // Lost in the middle: the model rewrites a plausible-looking
            // but wrong site; the emitted code changes nothing relevant.
            let degraded_code = golite::print_file(&file);
            return FixResponse {
                code: Some(degraded_code),
                strategy: ranked.first().map(|(_, d)| d.strategy),
                degraded: true,
                note: "long-context attention slipped to the wrong site".into(),
            };
        }

        // Per-race comprehension (§5.3): without a matching example some
        // races are simply misunderstood — every unguided attempt botches.
        let comprehends =
            draw(self.seed, &[&req.case_key], "comprehend") < self.cap.comprehension();

        // Try candidates in order; a strategy that structurally does not
        // apply (e.g. needs the type declaration, invisible at function
        // scope) is skipped, like an LLM revising its plan.
        for (i, (_, diag)) in ranked.iter().take(4).enumerate() {
            let (botch, guided) = self.roll_botch(req, diag, example_idiom, comprehends);
            match strategy::apply(diag.strategy, &file, &diag.target, botch) {
                Ok(new_file) => {
                    return FixResponse {
                        code: Some(golite::print_file(&new_file)),
                        strategy: Some(diag.strategy),
                        degraded: botch != 0,
                        note: format!(
                            "applied {} ({}){}",
                            diag.strategy.display(),
                            diag.category.display(),
                            if guided { " guided by example" } else { "" }
                        ),
                    };
                }
                Err(_) if i + 1 < ranked.len().min(4) => continue,
                Err(e) => {
                    return FixResponse {
                        code: None,
                        strategy: Some(diag.strategy),
                        degraded: false,
                        note: format!("could not realise a fix: {e}"),
                    };
                }
            }
        }
        FixResponse {
            code: None,
            strategy: None,
            degraded: false,
            note: "no applicable strategy".into(),
        }
    }

    /// Enumerates up to `max` candidate patches for one request — the
    /// tournament generalization of [`SynthLlm::generate`]. The same
    /// deterministic dice are rolled per strategy, so the candidate
    /// `generate` would return is always in the list (when it returns
    /// one at all); the list simply keeps going past the first success.
    pub fn enumerate(&self, req: &FixRequest, max: usize) -> Vec<Candidate> {
        let Ok(file) = golite::parse_file(&req.code) else {
            return Vec::new();
        };
        let Ok((ranked, example_idiom)) = self.rank_diagnoses(req, &file) else {
            return Vec::new();
        };
        let attempt_tag = format!("attempt{}", req.feedback.len());
        let misloc_p = self.cap.mislocalisation(
            req.scope == Scope::File,
            req.context_funcs,
            req.example.is_some(),
            !req.feedback.is_empty(),
        );
        let misloc_roll = draw(
            self.seed,
            &[&req.case_key, &req.racy_var, &attempt_tag],
            "misloc",
        );
        let top_score = ranked.first().map(|(s, _)| *s).unwrap_or(1.0).max(1e-9);
        if misloc_roll < misloc_p {
            // Same degraded no-op response `generate` produces: one
            // candidate, so the tournament sees what single-path saw.
            let (_, top) = &ranked[0];
            return vec![Candidate {
                code: golite::print_file(&file),
                strategy: top.strategy,
                target: top.target.clone(),
                degraded: true,
                confidence: 0.05,
                rank: 0,
                note: "long-context attention slipped to the wrong site".into(),
            }];
        }
        let comprehends =
            draw(self.seed, &[&req.case_key], "comprehend") < self.cap.comprehension();

        let mut out = Vec::new();
        for (score, diag) in ranked.iter().take(max) {
            let (botch, guided) = self.roll_botch(req, diag, example_idiom, comprehends);
            if let Ok(new_file) = strategy::apply(diag.strategy, &file, &diag.target, botch) {
                out.push(Candidate {
                    code: golite::print_file(&new_file),
                    strategy: diag.strategy,
                    target: diag.target.clone(),
                    degraded: botch != 0,
                    confidence: 0.2 + 0.8 * (score / top_score),
                    rank: out.len(),
                    note: format!(
                        "applied {} ({}){}",
                        diag.strategy.display(),
                        diag.category.display(),
                        if guided { " guided by example" } else { "" }
                    ),
                });
            }
        }
        out
    }

    /// Revises an earlier candidate against a static-analyzer finding
    /// (the tournament's bounded repair loop). The lint rule pinpoints
    /// the defect, so the retry rolls *guided* dice — unlike a bare
    /// retry, which would deterministically repeat the same mistake —
    /// but a repair can still botch. Returns `None` when the strategy no
    /// longer applies to the request code.
    pub fn repair(
        &self,
        req: &FixRequest,
        cand: &Candidate,
        rule: &str,
        iter: u32,
    ) -> Option<Candidate> {
        let file = golite::parse_file(&req.code).ok()?;
        let skill = self.cap.effective_skill(cand.strategy, true);
        let tag = format!("repair{iter}");
        let roll = draw(
            self.seed,
            &[&req.case_key, &req.racy_var, cand.strategy.display(), rule],
            &tag,
        );
        let botch = if roll < skill { 0 } else { 1 };
        let new_file = strategy::apply(cand.strategy, &file, &cand.target, botch).ok()?;
        Some(Candidate {
            code: golite::print_file(&new_file),
            degraded: botch != 0,
            note: format!("revised {} after `{rule}`", cand.strategy.display()),
            ..cand.clone()
        })
    }

    /// Shared diagnosis + ranking of [`SynthLlm::generate`] and
    /// [`SynthLlm::enumerate`]; `Err` carries the decline note.
    fn rank_diagnoses(
        &self,
        req: &FixRequest,
        file: &golite::ast::File,
    ) -> Result<RankedDiagnoses, &'static str> {
        let mut candidates = diagnose(file, &req.racy_var);
        // The prompt points at one function (leaf/test/LCA location):
        // function-level diagnoses elsewhere are out of focus. Type- and
        // global-level repairs stay visible from any location.
        if let Some(focus) = &req.focus_func {
            candidates.retain(|d| d.target.func().map(|f| f == focus).unwrap_or(true));
        }
        if candidates.is_empty() {
            return Err("no plausible repair found");
        }

        // Strategies that already failed (feedback loop, §4.4.2).
        let failed: Vec<StrategyKind> = req.feedback.iter().filter_map(|f| f.strategy).collect();
        candidates.retain(|d| !failed.contains(&d.strategy));
        if candidates.is_empty() {
            return Err("all known repairs already failed");
        }

        // Infer the example's idiom from its own before/after diff.
        let example_idiom = req
            .example
            .as_ref()
            .and_then(|e| classify_example(&e.buggy, &e.fixed));

        // Rank.
        let mut ranked: Vec<(f64, Diagnosis)> = candidates
            .into_iter()
            .map(|d| {
                let mut score = d.score * (0.4 + 0.6 * self.cap.skill(d.strategy));
                if let Some(idiom) = example_idiom {
                    if idiom == d.strategy {
                        score += 1.0;
                    } else if category_of(idiom) == d.category {
                        score += 0.25;
                    }
                }
                (score, d)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        Ok((ranked, example_idiom))
    }

    /// The guided/anchored skill model plus the race-keyed botch roll
    /// for one ranked diagnosis. Returns `(botch, guided)`.
    fn roll_botch(
        &self,
        req: &FixRequest,
        diag: &Diagnosis,
        example_idiom: Option<StrategyKind>,
        comprehends: bool,
    ) -> (u8, bool) {
        // The example guides only when its idiom matches a structurally
        // plausible candidate; an example from the wrong pattern
        // *anchors* the model on an inapplicable fix instead (this is
        // why raw-text retrieval barely helps, Fig. 3).
        let guided = example_idiom == Some(diag.strategy) && diag.score >= 0.65;
        let anchored =
            example_idiom.is_some() && example_idiom != Some(diag.strategy) && !comprehends;
        let skill = if guided {
            self.cap.effective_skill(diag.strategy, true)
        } else if comprehends {
            let s = self.cap.effective_skill(diag.strategy, false);
            if example_idiom.is_some() && example_idiom != Some(diag.strategy) {
                s * 0.75 // mild distraction
            } else {
                s
            }
        } else if anchored {
            0.0
        } else {
            // Misunderstood race: the patch looks plausible but misses
            // the point.
            0.0
        };
        // Keyed on the race, not the attempt: the model repeats its own
        // mistake if asked to try the same strategy again.
        let botch_roll = draw(
            self.seed,
            &[&req.case_key, &req.racy_var, diag.strategy.display()],
            "botch",
        );
        (if botch_roll < skill { 0 } else { 1 }, guided)
    }
}

/// Maps a strategy to its home category (for soft example matching).
pub fn category_of(s: StrategyKind) -> RaceCategory {
    use StrategyKind::*;
    match s {
        RedeclareInGoroutine | LocalCopyInGoroutine | PassParamToGoroutine | ChannelResult => {
            RaceCategory::CaptureByReference
        }
        PrivatizeLoopVar => RaceCategory::LoopVarCapture,
        MoveWgAddBeforeGo | MutexGuard | RwMutexGuard | AtomicCounter | BlanketMutex => {
            RaceCategory::MissingSync
        }
        MapToSyncMap => RaceCategory::ConcurrentMap,
        PerCaseInstance => RaceCategory::ParallelTest,
        StructCopy | FreshSourcePerUse => RaceCategory::Other,
    }
}

/// Infers the repair idiom of a `(buggy, fixed)` example from its textual
/// diff — the mechanism by which a retrieved example "nudges" the model
/// toward a family of solutions (§5.3).
pub fn classify_example(buggy: &str, fixed: &str) -> Option<StrategyKind> {
    let added = |needle: &str| fixed.matches(needle).count() > buggy.matches(needle).count();

    if added("sync.Map") {
        return Some(StrategyKind::MapToSyncMap);
    }
    if added("atomic.") {
        return Some(StrategyKind::AtomicCounter);
    }
    if added("sync.RWMutex") {
        return Some(StrategyKind::RwMutexGuard);
    }
    // Self-shadowing rebind `x := x`.
    if has_self_rebind(fixed) && !has_self_rebind(buggy) {
        return Some(StrategyKind::PrivatizeLoopVar);
    }
    if added("make(chan") && buggy.contains("select") {
        return Some(StrategyKind::ChannelResult);
    }
    if added("drfixMu") {
        return Some(StrategyKind::BlanketMutex);
    }
    if added("sync.Mutex") || added(".Lock()") {
        return Some(StrategyKind::MutexGuard);
    }
    if added("NewSource") {
        return Some(StrategyKind::FreshSourcePerUse);
    }
    if added(":= *") {
        return Some(StrategyKind::StructCopy);
    }
    if added("local") {
        return Some(StrategyKind::LocalCopyInGoroutine);
    }
    // wg.Add moved before the launch.
    if wg_add_before_go(fixed) && !wg_add_before_go(buggy) {
        return Some(StrategyKind::MoveWgAddBeforeGo);
    }
    // Parameter added to a goroutine literal.
    if added("go func(") && fixed.contains("go func(") && !buggy.contains("go func(") {
        return Some(StrategyKind::PassParamToGoroutine);
    }
    // Constructor duplicated per case.
    for ctor in ["md5.New()", "NewReader(", "New()"] {
        if fixed.matches(ctor).count() > buggy.matches(ctor).count()
            && fixed.matches(ctor).count() >= 2
            && buggy.matches(ctor).count() <= 1
        {
            return Some(StrategyKind::PerCaseInstance);
        }
    }
    // More `:=` inside goroutines without new sync — redeclaration.
    if fixed.matches(":=").count() > buggy.matches(":=").count() && buggy.contains("go func") {
        return Some(StrategyKind::RedeclareInGoroutine);
    }
    None
}

fn has_self_rebind(src: &str) -> bool {
    src.lines().any(|l| {
        let l = l.trim();
        if let Some((lhs, rhs)) = l.split_once(":=") {
            let lhs = lhs.trim();
            let rhs = rhs.trim();
            !lhs.is_empty() && lhs == rhs && lhs.chars().all(|c| c.is_alphanumeric() || c == '_')
        } else {
            false
        }
    })
}

fn wg_add_before_go(src: &str) -> bool {
    let add = src.find(".Add(");
    let go = src.find("go func");
    matches!((add, go), (Some(a), Some(g)) if a < g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Example, Feedback};

    const ERR_RACE: &str = r#"package p

import "sync"

func F() error {
	err := work()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = task(); err != nil {
			note()
		}
	}()
	if err = task2(); err != nil {
		note()
	}
	wg.Wait()
	return err
}

func work() error  { return nil }
func task() error  { return nil }
func task2() error { return nil }
func note()        {}
"#;

    fn req(code: &str, var: &str) -> FixRequest {
        FixRequest {
            code: code.to_owned(),
            scope: Scope::File,
            racy_var: var.to_owned(),
            racy_lines: vec![],
            example: None,
            feedback: vec![],
            context_funcs: 2,
            focus_func: None,
            case_key: format!("case-{var}"),
        }
    }

    #[test]
    fn generates_redeclare_fix_for_err_race() {
        let llm = SynthLlm::new(ModelTier::O1Preview, 3);
        let resp = llm.generate(&req(ERR_RACE, "err"));
        let code = resp.code.expect("fix produced");
        assert_eq!(resp.strategy, Some(StrategyKind::RedeclareInGoroutine));
        assert!(code.contains("if err := task()"), "{code}");
        // The parent assignment stays `=`.
        assert!(code.contains("if err = task2()"), "{code}");
    }

    #[test]
    fn response_reparses() {
        let llm = SynthLlm::new(ModelTier::O1Preview, 3);
        let resp = llm.generate(&req(ERR_RACE, "err"));
        golite::parse_file(&resp.code.unwrap()).expect("model output must be valid code");
    }

    #[test]
    fn deterministic_given_seed() {
        let llm = SynthLlm::new(ModelTier::Gpt4o, 11);
        let a = llm.generate(&req(ERR_RACE, "err"));
        let b = llm.generate(&req(ERR_RACE, "err"));
        assert_eq!(a.code, b.code);
        assert_eq!(a.strategy, b.strategy);
    }

    #[test]
    fn feedback_removes_failed_strategy() {
        let llm = SynthLlm::new(ModelTier::O1Preview, 3);
        let mut r = req(ERR_RACE, "err");
        r.feedback.push(Feedback {
            strategy: Some(StrategyKind::RedeclareInGoroutine),
            message: "tests still race".into(),
        });
        let resp = llm.generate(&r);
        assert_ne!(resp.strategy, Some(StrategyKind::RedeclareInGoroutine));
    }

    #[test]
    fn matching_example_boosts_its_idiom() {
        // An example whose fix is a mutex guard should steer the model
        // away from redeclaration.
        let llm = SynthLlm::new(ModelTier::Gpt4o, 5);
        let mut r = req(ERR_RACE, "err");
        r.example = Some(Example {
            buggy: "package p\nfunc g() {\n\tx := 0\n\tgo func() {\n\t\tx = 1\n\t}()\n}\n".into(),
            fixed: "package p\nimport \"sync\"\nvar muX sync.Mutex\nfunc g() {\n\tx := 0\n\tgo func() {\n\t\tmuX.Lock()\n\t\tx = 1\n\t\tmuX.Unlock()\n\t}()\n}\n".into(),
        });
        let resp = llm.generate(&r);
        assert_eq!(resp.strategy, Some(StrategyKind::MutexGuard));
    }

    #[test]
    fn classify_example_recognises_core_idioms() {
        assert_eq!(
            classify_example("m := make(map[int]int)", "var m sync.Map"),
            Some(StrategyKind::MapToSyncMap)
        );
        assert_eq!(
            classify_example("cnt = cnt + 1", "atomic.AddInt64(&cnt, 1)"),
            Some(StrategyKind::AtomicCounter)
        );
        assert_eq!(
            classify_example(
                "for _, v := range xs {\n\tgo use(v)\n}",
                "for _, v := range xs {\n\tv := v\n\tgo use(v)\n}"
            ),
            Some(StrategyKind::PrivatizeLoopVar)
        );
        assert_eq!(
            classify_example(
                "go func() {\n\twg.Add(1)\n}()",
                "wg.Add(1)\ngo func() {\n}()"
            ),
            Some(StrategyKind::MoveWgAddBeforeGo)
        );
        assert_eq!(classify_example("x := 1", "x := 1"), None);
    }

    #[test]
    fn enumerate_first_candidate_matches_generate() {
        // The tournament's candidate list must contain exactly what the
        // single-path pipeline would have been given, in front.
        for seed in 0..25u64 {
            for tier in [ModelTier::Gpt4Turbo, ModelTier::Gpt4o, ModelTier::O1Preview] {
                let llm = SynthLlm::new(tier, seed);
                let r = req(ERR_RACE, "err");
                let gen = llm.generate(&r);
                let cands = llm.enumerate(&r, 4);
                match gen.code {
                    Some(code) => {
                        let first = cands.first().expect("generate produced, enumerate empty");
                        assert_eq!(first.code, code, "seed {seed} tier {tier:?}");
                        assert_eq!(Some(first.strategy), gen.strategy);
                        assert_eq!(first.degraded, gen.degraded);
                    }
                    None => assert!(cands.is_empty(), "seed {seed} tier {tier:?}"),
                }
            }
        }
    }

    #[test]
    fn enumerate_goes_past_the_first_success() {
        let llm = SynthLlm::new(ModelTier::O1Preview, 3);
        let cands = llm.enumerate(&req(ERR_RACE, "err"), 8);
        assert!(cands.len() > 1, "only {} candidates", cands.len());
        // Confidence is ordered with rank and stays in (0, 1].
        for w in cands.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-9);
        }
        for c in &cands {
            assert!(c.confidence > 0.0 && c.confidence <= 1.0 + 1e-9);
            golite::parse_file(&c.code).expect("candidate code parses");
        }
        // Ranks are the enumeration order.
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.rank, i);
        }
    }

    #[test]
    fn repair_is_deterministic_and_reapplies_the_strategy() {
        let llm = SynthLlm::new(ModelTier::Gpt4Turbo, 9);
        let r = req(ERR_RACE, "err");
        let cands = llm.enumerate(&r, 4);
        let cand = cands.first().expect("candidate");
        let a = llm.repair(&r, cand, "inconsistent-lock", 0);
        let b = llm.repair(&r, cand, "inconsistent-lock", 0);
        let (a, b) = (a.expect("repair applies"), b.expect("repair applies"));
        assert_eq!(a.code, b.code);
        assert_eq!(a.strategy, cand.strategy);
        // A different iteration ordinal rolls fresh dice (possibly the
        // same outcome, but the draw is keyed differently).
        let c = llm.repair(&r, cand, "inconsistent-lock", 1).unwrap();
        assert_eq!(c.strategy, cand.strategy);
    }

    #[test]
    fn unparseable_prompt_declines() {
        let llm = SynthLlm::new(ModelTier::Gpt4o, 1);
        let resp = llm.generate(&req("this is not go", "x"));
        assert!(resp.code.is_none());
    }

    #[test]
    fn low_tier_on_hard_strategy_often_degrades() {
        // ChannelResult is hard for Turbo without guidance: across seeds
        // a substantial fraction of attempts must be degraded.
        let src = r#"package p

import "context"

func F(ctx context.Context) error {
	resultChan := make(chan int, 1)
	var err error
	go func() {
		var result int
		result, err = evaluate()
		resultChan <- result
		use(result)
	}()
	select {
	case r := <-resultChan:
		use(r)
	case <-ctx.Done():
		use(0)
	}
	return err
}

func evaluate() (int, error) { return 1, nil }
func use(x int)              {}
"#;
        let mut degraded = 0;
        let mut produced = 0;
        for seed in 0..40 {
            let llm = SynthLlm::new(ModelTier::Gpt4Turbo, seed);
            let resp = llm.generate(&req(src, "err"));
            if resp.code.is_some() {
                produced += 1;
                if resp.degraded {
                    degraded += 1;
                }
            }
        }
        assert!(produced > 0);
        assert!(
            degraded * 5 >= produced,
            "Turbo should degrade noticeably on hard fixes: {degraded}/{produced}"
        );
    }
}
