//! The capability model: what each LLM tier can and cannot do.
//!
//! The paper's ablations vary three things around a fixed model: the
//! example provided (none / raw-text-retrieved / skeleton-retrieved), the
//! context scope (function vs file, with and without failure feedback),
//! and the model generation (GPT-4 Turbo → GPT-4o → o1-preview). This
//! module expresses those axes as numbers:
//!
//! - **skill**: per-strategy probability of a clean application with no
//!   guidance — famous patterns (redeclaration, loop-variable capture)
//!   are near-certain, complex multi-edit repairs (channel rewrites,
//!   struct copies, reader/writer locks) are where tiers diverge (§5.4);
//! - **guidance**: how much a same-idiom retrieved example closes the
//!   skill gap (§5.3's "narrowed search space");
//! - **file-scope attention noise**: the probability that long contexts
//!   make the model edit the wrong site, the paper's "lost in the
//!   middle" effect (§5.3); feedback and examples reduce it.
//!
//! All draws are deterministic hashes of the request, so every experiment
//! is exactly reproducible.

use crate::StrategyKind;
use serde::{Deserialize, Serialize};

/// The model generations evaluated in the paper (Table 2, RQ3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelTier {
    /// GPT-4 Turbo — the deployment model of RQ1.
    Gpt4Turbo,
    /// GPT-4o — the ablation baseline of RQ2.
    Gpt4o,
    /// o1-preview — the stronger model of RQ3.
    O1Preview,
}

impl ModelTier {
    /// Display name.
    pub fn display(&self) -> &'static str {
        match self {
            ModelTier::Gpt4Turbo => "GPT-4 Turbo",
            ModelTier::Gpt4o => "GPT-4o",
            ModelTier::O1Preview => "o1-preview",
        }
    }
}

/// Capability parameters for one tier.
#[derive(Debug, Clone)]
pub struct CapabilityModel {
    tier: ModelTier,
}

impl CapabilityModel {
    /// Creates the capability model for a tier.
    pub fn new(tier: ModelTier) -> Self {
        CapabilityModel { tier }
    }

    /// The tier.
    pub fn tier(&self) -> ModelTier {
        self.tier
    }

    /// Unguided probability of a clean application of `strategy`.
    pub fn skill(&self, strategy: StrategyKind) -> f64 {
        use StrategyKind::*;
        let (turbo, gpt4o, o1) = match strategy {
            RedeclareInGoroutine => (0.62, 0.68, 0.78),
            PrivatizeLoopVar => (0.68, 0.72, 0.80),
            LocalCopyInGoroutine => (0.42, 0.50, 0.68),
            PassParamToGoroutine => (0.40, 0.48, 0.66),
            MoveWgAddBeforeGo => (0.38, 0.50, 0.70),
            MapToSyncMap => (0.32, 0.42, 0.62),
            MutexGuard => (0.34, 0.44, 0.60),
            RwMutexGuard => (0.20, 0.30, 0.55),
            AtomicCounter => (0.34, 0.44, 0.64),
            StructCopy => (0.08, 0.15, 0.60),
            ChannelResult => (0.06, 0.14, 0.62),
            PerCaseInstance => (0.38, 0.48, 0.66),
            FreshSourcePerUse => (0.40, 0.50, 0.68),
            BlanketMutex => (0.45, 0.45, 0.50),
        };
        match self.tier {
            ModelTier::Gpt4Turbo => turbo,
            ModelTier::Gpt4o => gpt4o,
            ModelTier::O1Preview => o1,
        }
    }

    /// Fraction of the remaining skill gap a same-idiom example closes.
    pub fn guidance(&self) -> f64 {
        match self.tier {
            ModelTier::Gpt4Turbo => 0.78,
            ModelTier::Gpt4o => 0.85,
            ModelTier::O1Preview => 0.92,
        }
    }

    /// Probability that the model grasps a race's root cause with no
    /// example to lean on. §5.3 observes exactly this failure mode: "some
    /// data races remain unfixed when our LLM is prompted without RAG,
    /// yet the same races are successfully patched once RAG is enabled" —
    /// comprehension is a per-race property, so the draw is keyed on the
    /// race, not the attempt.
    pub fn comprehension(&self) -> f64 {
        match self.tier {
            ModelTier::Gpt4Turbo => 0.60,
            ModelTier::Gpt4o => 0.66,
            ModelTier::O1Preview => 0.88,
        }
    }

    /// Base probability of editing the wrong site at file scope
    /// ("lost in the middle"; the paper's file-only arm drops to 33%).
    pub fn file_noise(&self) -> f64 {
        match self.tier {
            ModelTier::Gpt4Turbo => 0.70,
            ModelTier::Gpt4o => 0.58,
            ModelTier::O1Preview => 0.30,
        }
    }

    /// Effective clean-application probability.
    ///
    /// Guidance closes part of the remaining gap, scaled by the model's
    /// own skill: an example "narrows the search space" (§5.3), but a
    /// weak executor still has to assemble the multi-edit fix — so
    /// complex strategies benefit less on weaker tiers (this is what
    /// separates o1-preview from GPT-4o on Listing-10-style repairs).
    pub fn effective_skill(&self, strategy: StrategyKind, guided: bool) -> f64 {
        let s = self.skill(strategy);
        if guided {
            let executor = (2.0 * s).min(1.0);
            s + (1.0 - s) * self.guidance() * executor
        } else {
            s
        }
    }

    /// Mis-localisation probability for a request.
    pub fn mislocalisation(
        &self,
        at_file_scope: bool,
        context_funcs: usize,
        has_example: bool,
        has_feedback: bool,
    ) -> f64 {
        if !at_file_scope || context_funcs <= 1 {
            return 0.0;
        }
        let size_factor = ((1.0 + context_funcs as f64).ln() / (1.0 + 6.0f64).ln()).min(1.2);
        let mut p = self.file_noise() * size_factor;
        if has_example {
            p *= 0.75;
        }
        if has_feedback {
            p *= 0.60;
        }
        p.min(0.9)
    }
}

/// A deterministic pseudo-random draw in `[0, 1)` from request features.
pub fn draw(seed: u64, material: &[&str], tag: &str) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for m in material {
        mix(m.as_bytes());
        mix(b"|");
    }
    mix(tag.as_bytes());
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_monotonic_on_every_strategy() {
        let t = CapabilityModel::new(ModelTier::Gpt4Turbo);
        let o = CapabilityModel::new(ModelTier::Gpt4o);
        let p = CapabilityModel::new(ModelTier::O1Preview);
        for &s in StrategyKind::all() {
            assert!(t.skill(s) <= o.skill(s), "{s:?}");
            assert!(o.skill(s) <= p.skill(s), "{s:?}");
            assert!(t.skill(s) > 0.0 && p.skill(s) <= 1.0);
        }
    }

    #[test]
    fn guidance_raises_effective_skill() {
        let m = CapabilityModel::new(ModelTier::Gpt4o);
        for &s in StrategyKind::all() {
            assert!(m.effective_skill(s, true) >= m.effective_skill(s, false));
            assert!(m.effective_skill(s, true) <= 1.0);
        }
    }

    #[test]
    fn func_scope_has_no_attention_noise() {
        let m = CapabilityModel::new(ModelTier::Gpt4Turbo);
        assert_eq!(m.mislocalisation(false, 20, false, false), 0.0);
        assert!(m.mislocalisation(true, 8, false, false) > 0.0);
    }

    #[test]
    fn example_and_feedback_reduce_noise() {
        let m = CapabilityModel::new(ModelTier::Gpt4o);
        let base = m.mislocalisation(true, 8, false, false);
        let with_ex = m.mislocalisation(true, 8, true, false);
        let with_fb = m.mislocalisation(true, 8, false, true);
        let both = m.mislocalisation(true, 8, true, true);
        assert!(with_ex < base);
        assert!(with_fb < base);
        assert!(both < with_ex && both < with_fb);
    }

    #[test]
    fn draws_are_deterministic_and_spread() {
        let a = draw(1, &["code", "strategy"], "botch");
        let b = draw(1, &["code", "strategy"], "botch");
        let c = draw(2, &["code", "strategy"], "botch");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn bigger_models_are_less_noisy() {
        let t = CapabilityModel::new(ModelTier::Gpt4Turbo);
        let p = CapabilityModel::new(ModelTier::O1Preview);
        assert!(p.file_noise() < t.file_noise());
        assert!(p.guidance() > t.guidance());
    }
}
