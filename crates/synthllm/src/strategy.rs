//! The fix-strategy library: real AST rewrites for every repair idiom the
//! paper demonstrates (Listings 2, 5–12, Appendix D).
//!
//! Each strategy can be applied *cleanly* or in a deliberately *botched*
//! mode. Botches model the realistic failure modes of LLM-generated
//! patches — guarding only the writes, moving a statement to the wrong
//! place, missing one of several sites, forgetting a function argument —
//! and each produces code the `govm` validator genuinely rejects (still
//! racy, deadlocked, or failing to build/run).

use crate::diagnose::Target;
use crate::rewrite::*;
use golite::ast::*;
use golite::span::Span;
use serde::{Deserialize, Serialize};

/// The repair idioms (Table 4 / §5.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// `err =` → `err :=` inside the goroutine (Listing 2).
    RedeclareInGoroutine,
    /// `num := num` before the launch (Listing 11 / Go 1.22 semantics).
    PrivatizeLoopVar,
    /// `localLimit := limit` + rename inside the closure (Listing 5).
    LocalCopyInGoroutine,
    /// Pass the captured variable as a goroutine parameter (Listing 14).
    PassParamToGoroutine,
    /// Move `wg.Add` before the `go` statement (Listing 6).
    MoveWgAddBeforeGo,
    /// Replace a built-in map with `sync.Map`, rewriting all operations
    /// (Listing 8).
    MapToSyncMap,
    /// Introduce a mutex guarding every access to the variable/field
    /// (Listing 9).
    MutexGuard,
    /// Reader/writer lock variant (Listing 30).
    RwMutexGuard,
    /// Convert a shared integer to atomic operations (Listing 20).
    AtomicCounter,
    /// Copy a shared struct before modification (Listings 22/24/26).
    StructCopy,
    /// Route the result through a channel instead of sharing (Listing 10).
    ChannelResult,
    /// Fresh instance per test case / request (Listings 7, 12).
    PerCaseInstance,
    /// Inline a fresh `rand.NewSource` per use (Listing 12).
    FreshSourcePerUse,
    /// One big lock around everything racy — the naive fix the paper
    /// warns about (§1): correct placement serialises, careless placement
    /// deadlocks or misses sites.
    BlanketMutex,
}

impl StrategyKind {
    /// All strategies.
    pub fn all() -> &'static [StrategyKind] {
        use StrategyKind::*;
        &[
            RedeclareInGoroutine,
            PrivatizeLoopVar,
            LocalCopyInGoroutine,
            PassParamToGoroutine,
            MoveWgAddBeforeGo,
            MapToSyncMap,
            MutexGuard,
            RwMutexGuard,
            AtomicCounter,
            StructCopy,
            ChannelResult,
            PerCaseInstance,
            FreshSourcePerUse,
            BlanketMutex,
        ]
    }

    /// Short display name.
    pub fn display(&self) -> &'static str {
        match self {
            StrategyKind::RedeclareInGoroutine => "variable redeclaration",
            StrategyKind::PrivatizeLoopVar => "loop-variable privatization",
            StrategyKind::LocalCopyInGoroutine => "local copy in goroutine",
            StrategyKind::PassParamToGoroutine => "parameter passing",
            StrategyKind::MoveWgAddBeforeGo => "WaitGroup Add placement",
            StrategyKind::MapToSyncMap => "map → sync.Map",
            StrategyKind::MutexGuard => "mutex guard",
            StrategyKind::RwMutexGuard => "RWMutex guard",
            StrategyKind::AtomicCounter => "atomic operations",
            StrategyKind::StructCopy => "struct copy",
            StrategyKind::ChannelResult => "channel result passing",
            StrategyKind::PerCaseInstance => "per-case instance",
            StrategyKind::FreshSourcePerUse => "fresh source per use",
            StrategyKind::BlanketMutex => "blanket mutex",
        }
    }

    /// Whether a *clean* application is idiomatic (feeds the developer
    /// review model — blanket locks get rejected in review far more
    /// often, §5.2's rejection reasons).
    pub fn idiomatic(&self) -> bool {
        !matches!(self, StrategyKind::BlanketMutex)
    }
}

/// Applies `kind` to `file` for `target`. `botch == 0` is the clean
/// application; non-zero selects a degraded variant.
///
/// # Errors
///
/// Returns a message when the strategy does not apply to this code (for
/// example a field-level fix attempted at function scope where the type
/// declaration is invisible).
pub fn apply(kind: StrategyKind, file: &File, target: &Target, botch: u8) -> Result<File, String> {
    let mut out = file.clone();
    match kind {
        StrategyKind::RedeclareInGoroutine => redeclare(&mut out, target, botch)?,
        StrategyKind::PrivatizeLoopVar => privatize_loop_var(&mut out, target, botch)?,
        StrategyKind::LocalCopyInGoroutine => local_copy(&mut out, target, botch)?,
        StrategyKind::PassParamToGoroutine => pass_param(&mut out, target, botch)?,
        StrategyKind::MoveWgAddBeforeGo => move_wg_add(&mut out, target, botch)?,
        StrategyKind::MapToSyncMap => map_to_syncmap(&mut out, target, botch)?,
        StrategyKind::MutexGuard => mutex_guard(&mut out, target, botch, false)?,
        StrategyKind::RwMutexGuard => mutex_guard(&mut out, target, botch, true)?,
        StrategyKind::AtomicCounter => atomic_counter(&mut out, target, botch)?,
        StrategyKind::StructCopy => struct_copy(&mut out, target, botch)?,
        StrategyKind::ChannelResult => channel_result(&mut out, target, botch)?,
        StrategyKind::PerCaseInstance => per_case_instance(&mut out, target, botch)?,
        StrategyKind::FreshSourcePerUse => fresh_source(&mut out, target, botch)?,
        StrategyKind::BlanketMutex => blanket_mutex(&mut out, target, botch)?,
    }
    Ok(out)
}

fn target_func<'a>(file: &'a mut File, target: &Target) -> Result<&'a mut FuncDecl, String> {
    let name = target
        .func()
        .ok_or_else(|| "strategy needs a function target".to_owned())?;
    file.find_func_mut(name)
        .ok_or_else(|| format!("function `{name}` not in scope"))
}

fn target_var(target: &Target) -> Result<&str, String> {
    match target {
        Target::Local { var, .. } | Target::Pattern { var, .. } | Target::Global { var } => Ok(var),
        Target::Field { field, .. } => Ok(field),
    }
}

// ------------------------------------------------------------- strategies

/// Listing 2: first `var = …` inside each goroutine closure → `var := …`.
fn redeclare(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let var = target_var(target)?.to_owned();
    let f = target_func(file, target)?;
    let mut converted = 0usize;
    let mut closure_idx = 0usize;
    if let Some(body) = &mut f.body {
        for s in &mut body.stmts {
            if let Some(cb) = go_closure_mut(s) {
                closure_idx += 1;
                // Botch 1: skip every other closure — misses a site.
                if botch == 1 && closure_idx % 2 == 0 {
                    continue;
                }
                if convert_first_assign_to_decl(cb, &var) {
                    converted += 1;
                }
            }
        }
    }
    if converted == 0 {
        return Err(format!("no assignment to `{var}` in any goroutine"));
    }
    Ok(())
}

/// Converts the first `var = …` / `if var = …;` in the block to `:=`.
fn convert_first_assign_to_decl(block: &mut Block, var: &str) -> bool {
    fn conv(stmts: &mut [Stmt], var: &str) -> bool {
        for s in stmts.iter_mut() {
            match s {
                Stmt::Assign { lhs, op, rhs, span }
                    if *op == AssignOp::Assign
                        && lhs.iter().all(|e| e.as_ident().is_some())
                        && lhs.iter().any(|e| e.as_ident() == Some(var)) =>
                {
                    let names = lhs
                        .iter()
                        .map(|e| e.as_ident().expect("ident lhs").to_owned())
                        .collect();
                    *s = Stmt::ShortVar {
                        names,
                        values: rhs.clone(),
                        span: *span,
                    };
                    return true;
                }
                Stmt::If(st) => {
                    if let Some(init) = &mut st.init {
                        if conv(std::slice::from_mut(init.as_mut()), var) {
                            return true;
                        }
                    }
                    if conv(&mut st.then.stmts, var) {
                        return true;
                    }
                }
                _ => {
                    // Descend into the remaining nested-block statements.
                    let nested = match s {
                        Stmt::For(st) => Some(&mut st.body.stmts),
                        Stmt::Range(st) => Some(&mut st.body.stmts),
                        Stmt::Block(b) => Some(&mut b.stmts),
                        _ => None,
                    };
                    if let Some(stmts) = nested {
                        if conv(stmts, var) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
    conv(&mut block.stmts, var)
}

/// Listing 11: insert `var := var` at the top of the loop body.
fn privatize_loop_var(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let var = target_var(target)?.to_owned();
    let f = target_func(file, target)?;
    let mut done = false;
    map_stmt_lists(f, &mut |stmts| {
        stmts
            .into_iter()
            .map(|s| {
                if let Stmt::Range(mut st) = s {
                    let bound = st
                        .key
                        .as_ref()
                        .and_then(|e| e.as_ident())
                        .map(|n| n == var)
                        .unwrap_or(false)
                        || st
                            .value
                            .as_ref()
                            .and_then(|e| e.as_ident())
                            .map(|n| n == var)
                            .unwrap_or(false);
                    if bound && !done {
                        done = true;
                        let copy = Stmt::short_var(var.clone(), Expr::ident(var.clone()));
                        if botch == 1 {
                            // Botch: after the launch — useless.
                            st.body.stmts.push(copy);
                        } else {
                            st.body.stmts.insert(0, copy);
                        }
                    }
                    Stmt::Range(st)
                } else {
                    s
                }
            })
            .collect()
    });
    if done {
        Ok(())
    } else {
        Err(format!("no range loop binds `{var}`"))
    }
}

/// Listing 5: add `localVar := var` at closure start and rename uses.
fn local_copy(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let var = target_var(target)?.to_owned();
    let local = format!("local{}", capitalize(&var));
    let f = target_func(file, target)?;
    let mut touched = 0usize;
    if let Some(body) = &mut f.body {
        rewrite_go_closures(body, &mut |cb| {
            let mut uses = false;
            golite::visit::walk_exprs(cb, &mut |e| {
                if let Expr::Ident { name, .. } = e {
                    if *name == var {
                        uses = true;
                    }
                }
            });
            if !uses {
                return;
            }
            touched += 1;
            if botch != 1 {
                let mut r = golite::visit::RenameIdent {
                    from: &var,
                    to: &local,
                };
                use golite::visit::MutVisitor as _;
                r.visit_block(cb);
            }
            // Botch 1 inserts the copy without renaming — a dead local.
            cb.stmts
                .insert(0, Stmt::short_var(local.clone(), Expr::ident(var.clone())));
        });
    }
    if touched == 0 {
        return Err(format!("no goroutine uses `{var}`"));
    }
    Ok(())
}

/// Listing 14: `go func() {…}()` → `go func(var T) {…}(var)`.
fn pass_param(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let var = target_var(target)?.to_owned();
    let f = target_func(file, target)?;
    let mut touched = 0usize;
    if let Some(body) = &mut f.body {
        for s in &mut body.stmts {
            if let Stmt::Go {
                call: Expr::Call { fun, args, .. },
                ..
            } = s
            {
                if let Expr::FuncLit { sig, body: cb, .. } = fun.as_mut() {
                    let mut uses = false;
                    golite::visit::walk_exprs(cb, &mut |e| {
                        if let Expr::Ident { name, .. } = e {
                            if *name == var {
                                uses = true;
                            }
                        }
                    });
                    if !uses {
                        continue;
                    }
                    touched += 1;
                    sig.params.push(Param {
                        names: vec![var.clone()],
                        ty: Type::Interface(Vec::new()),
                        variadic: false,
                        span: Span::DUMMY,
                    });
                    if botch != 1 {
                        args.push(Expr::ident(var.clone()));
                    }
                    // Botch 1 forgets the argument → arity error at
                    // run time ("build failure" feedback).
                }
            }
        }
    }
    if touched == 0 {
        return Err(format!("no goroutine closure captures `{var}`"));
    }
    Ok(())
}

/// Listing 6: hoist `wg.Add(n)` out of the closure, before the launch.
fn move_wg_add(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let fname = target
        .func()
        .ok_or_else(|| "needs a function target".to_owned())?
        .to_owned();
    let f = file
        .find_func_mut(&fname)
        .ok_or_else(|| format!("function `{fname}` not in scope"))?;
    let mut moved = false;
    map_stmt_lists(f, &mut |stmts| {
        let mut out = Vec::with_capacity(stmts.len());
        for mut s in stmts {
            let mut adds = Vec::new();
            if let Some(cb) = go_closure_mut(&mut s) {
                let mut kept = Vec::with_capacity(cb.stmts.len());
                for cs in cb.stmts.drain(..) {
                    if let Stmt::Expr(Expr::Call { fun, args, .. }) = &cs {
                        if let Expr::Selector { name, expr, .. } = fun.as_ref() {
                            if name == "Add" && expr.as_ident().is_some() {
                                adds.push(Stmt::Expr(Expr::Call {
                                    fun: fun.clone(),
                                    args: args.clone(),
                                    variadic: false,
                                    span: Span::DUMMY,
                                }));
                                if botch == 1 {
                                    // Botch: duplicate instead of move —
                                    // the counter over-increments and
                                    // Wait deadlocks.
                                    kept.push(cs);
                                }
                                continue;
                            }
                        }
                    }
                    kept.push(cs);
                }
                cb.stmts = kept;
            }
            if !adds.is_empty() {
                moved = true;
                out.extend(adds);
            }
            out.push(s);
        }
        out
    });
    if moved {
        Ok(())
    } else {
        Err("no wg.Add inside a goroutine closure".into())
    }
}

/// Listing 8: convert the racy map to `sync.Map` and rewrite every
/// operation (index read/write, `delete`, `range`).
fn map_to_syncmap(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    ensure_import(file, "sync");
    match target {
        Target::Field { type_name, field } => {
            let td = file
                .find_type_mut(type_name)
                .ok_or_else(|| format!("type `{type_name}` not in scope"))?;
            if let Type::Struct(fields) = &mut td.ty {
                let mut changed = false;
                for fl in fields {
                    if fl.names.iter().any(|n| n == field) {
                        fl.ty = Type::named("sync.Map");
                        changed = true;
                    }
                }
                if !changed {
                    return Err(format!("field `{field}` not found"));
                }
            } else {
                return Err(format!("`{type_name}` is not a struct"));
            }
            // Rewrite accesses in every function; drop initialisers of the
            // field in composite literals.
            let funcs: Vec<String> = file.funcs().map(|f| f.name.clone()).collect();
            for name in funcs {
                let f = file.find_func_mut(&name).expect("listed function");
                rewrite_map_ops_in_func(f, field, true, botch)?;
            }
            strip_field_initialisers(file, type_name, field);
            Ok(())
        }
        Target::Local { func, var } => {
            let func = func.clone();
            let var = var.clone();
            let f = file
                .find_func_mut(&func)
                .ok_or_else(|| format!("function `{func}` not in scope"))?;
            // Convert the declaration.
            let mut declared = false;
            map_stmt_lists(f, &mut |stmts| {
                stmts
                    .into_iter()
                    .map(|s| match &s {
                        Stmt::ShortVar { names, values, .. }
                            if names.len() == 1
                                && names[0] == var
                                && values.len() == 1
                                && matches!(
                                    values[0],
                                    Expr::Make {
                                        ty: Type::Map { .. },
                                        ..
                                    } | Expr::CompositeLit {
                                        ty: Some(Type::Map { .. }),
                                        ..
                                    }
                                ) =>
                        {
                            declared = true;
                            Stmt::Decl(VarDecl {
                                names: vec![var.clone()],
                                ty: Some(Type::named("sync.Map")),
                                values: Vec::new(),
                                span: Span::DUMMY,
                            })
                        }
                        _ => s,
                    })
                    .collect()
            });
            if !declared {
                return Err(format!("`{var}` is not declared as a map here"));
            }
            rewrite_map_ops_in_func(f, &var, false, botch)?;
            Ok(())
        }
        _ => Err("sync.Map conversion needs a map variable or field".into()),
    }
}

/// Rewrites `m[k] = v` / `delete(m, k)` / `v := m[k]` / `range m` where
/// `m` is the racy map (field access `x.field` when `is_field`).
fn rewrite_map_ops_in_func(
    f: &mut FuncDecl,
    var: &str,
    is_field: bool,
    botch: u8,
) -> Result<(), String> {
    let matches_map = |e: &Expr| -> bool {
        if is_field {
            matches!(e, Expr::Selector { name, .. } if name == var)
        } else {
            e.as_ident() == Some(var)
        }
    };
    map_stmt_lists(f, &mut |stmts| {
        stmts
            .into_iter()
            .map(|s| {
                match &s {
                    // m[k] = v  →  m.Store(k, v)
                    Stmt::Assign { lhs, op, rhs, .. }
                        if *op == AssignOp::Assign && lhs.len() == 1 && rhs.len() == 1 =>
                    {
                        if let Expr::Index { expr, index, .. } = &lhs[0] {
                            if matches_map(expr) {
                                return method_stmt(
                                    (**expr).clone(),
                                    "Store",
                                    vec![(**index).clone(), rhs[0].clone()],
                                );
                            }
                        }
                        s
                    }
                    // delete(m, k) → m.Delete(k)
                    Stmt::Expr(Expr::Call { fun, args, .. })
                        if fun.as_ident() == Some("delete")
                            && args.len() == 2
                            && matches_map(&args[0]) =>
                    {
                        method_stmt(args[0].clone(), "Delete", vec![args[1].clone()])
                    }
                    // v := m[k] / v, ok := m[k] → Load
                    Stmt::ShortVar {
                        names,
                        values,
                        span,
                    } if values.len() == 1 => {
                        if let Expr::Index { expr, index, .. } = &values[0] {
                            if matches_map(expr) {
                                let mut names = names.clone();
                                if names.len() == 1 {
                                    names.push("_".into());
                                }
                                return Stmt::ShortVar {
                                    names,
                                    values: vec![Expr::method(
                                        (**expr).clone(),
                                        "Load",
                                        vec![(**index).clone()],
                                    )],
                                    span: *span,
                                };
                            }
                        }
                        s
                    }
                    // range m → m.Range(func(key, value interface{}) bool {…})
                    Stmt::Range(st) if matches_map(&st.expr) => {
                        if botch == 1 {
                            // Botch: forgot the range rewrite — ranging
                            // over a sync.Map value fails at run time.
                            return s;
                        }
                        let key_name = st
                            .key
                            .as_ref()
                            .and_then(|e| e.as_ident())
                            .unwrap_or("_")
                            .to_owned();
                        let val_name = st
                            .value
                            .as_ref()
                            .and_then(|e| e.as_ident())
                            .unwrap_or("_")
                            .to_owned();
                        let mut body = st.body.clone();
                        retarget_loop_exits(&mut body);
                        body.stmts.push(Stmt::Return {
                            values: vec![Expr::ident("true")],
                            span: Span::DUMMY,
                        });
                        let lit = Expr::FuncLit {
                            sig: FuncSig {
                                params: vec![Param {
                                    names: vec![key_name, val_name],
                                    ty: Type::Interface(Vec::new()),
                                    variadic: false,
                                    span: Span::DUMMY,
                                }],
                                results: vec![Param {
                                    names: Vec::new(),
                                    ty: Type::named("bool"),
                                    variadic: false,
                                    span: Span::DUMMY,
                                }],
                            },
                            body,
                            span: Span::DUMMY,
                        };
                        method_stmt(st.expr.clone(), "Range", vec![lit])
                    }
                    _ => s,
                }
            })
            .collect()
    });
    Ok(())
}

/// `break` → `return false`, `continue` → `return true` inside a Range
/// callback (top level of the converted loop body only).
fn retarget_loop_exits(body: &mut Block) {
    fn walk(stmts: &mut [Stmt]) {
        for s in stmts {
            match s {
                Stmt::Break { .. } => {
                    *s = Stmt::Return {
                        values: vec![Expr::ident("false")],
                        span: Span::DUMMY,
                    };
                }
                Stmt::Continue { .. } => {
                    *s = Stmt::Return {
                        values: vec![Expr::ident("true")],
                        span: Span::DUMMY,
                    };
                }
                Stmt::If(st) => {
                    walk(&mut st.then.stmts);
                    if let Some(el) = &mut st.else_ {
                        walk(std::slice::from_mut(el.as_mut()));
                    }
                }
                Stmt::Block(b) => walk(&mut b.stmts),
                _ => {}
            }
        }
    }
    walk(&mut body.stmts);
}

/// Removes `field: …` initialisers of the converted map field from every
/// composite literal of the type.
fn strip_field_initialisers(file: &mut File, type_name: &str, field: &str) {
    struct Strip<'a> {
        type_name: &'a str,
        field: &'a str,
    }
    impl golite::visit::MutVisitor for Strip<'_> {
        fn visit_expr(&mut self, e: &mut Expr) {
            if let Expr::CompositeLit {
                ty: Some(t), elems, ..
            } = e
            {
                if t.is_named(self.type_name) {
                    elems.retain(|el| {
                        el.key
                            .as_ref()
                            .and_then(|k| k.as_ident())
                            .map(|n| n != self.field)
                            .unwrap_or(true)
                    });
                }
            }
            self.walk_expr(e);
        }
    }
    use golite::visit::MutVisitor as _;
    let mut strip = Strip { type_name, field };
    for d in &mut file.decls {
        if let Decl::Func(f) = d {
            if let Some(b) = &mut f.body {
                strip.visit_block(b);
            }
        }
    }
}

/// Listings 9/30: introduce a mutex (or RWMutex) and guard every
/// statement touching the variable.
fn mutex_guard(file: &mut File, target: &Target, botch: u8, rw: bool) -> Result<(), String> {
    ensure_import(file, "sync");
    let mu_ty = if rw { "sync.RWMutex" } else { "sync.Mutex" };
    match target {
        Target::Field { type_name, field } => {
            let mu_name = format!("mu{}", capitalize(field));
            {
                let td = file
                    .find_type_mut(type_name)
                    .ok_or_else(|| format!("type `{type_name}` not in scope"))?;
                if let Type::Struct(fields) = &mut td.ty {
                    if !fields.iter().any(|f| f.names.iter().any(|n| n == &mu_name)) {
                        fields.push(Field {
                            names: vec![mu_name.clone()],
                            ty: Type::named(mu_ty),
                            span: Span::DUMMY,
                        });
                    }
                } else {
                    return Err(format!("`{type_name}` is not a struct"));
                }
            }
            // Guard statements in methods of the type.
            let methods: Vec<(String, String)> = file
                .funcs()
                .filter_map(|f| {
                    f.receiver.as_ref().and_then(|r| {
                        if r.ty.is_named(type_name) {
                            Some((f.name.clone(), r.name.clone()))
                        } else {
                            None
                        }
                    })
                })
                .collect();
            if methods.is_empty() {
                return Err(format!("no methods on `{type_name}` in scope"));
            }
            for (mname, recv) in methods {
                let f = file.find_func_mut(&mname).expect("listed method");
                let mu_expr = Expr::select(Expr::ident(recv), mu_name.clone());
                guard_in_func(f, field, &mu_expr, botch, rw);
            }
            Ok(())
        }
        Target::Local { func, var } => {
            let func = func.clone();
            let var = var.clone();
            let mu_name = format!("mu{}", capitalize(&var));
            let f = file
                .find_func_mut(&func)
                .ok_or_else(|| format!("function `{func}` not in scope"))?;
            // Declare the mutex right after the variable's declaration.
            let mut inserted = false;
            if let Some(body) = &mut f.body {
                let mut idx = None;
                for (i, s) in body.stmts.iter().enumerate() {
                    if stmt_declares_var(s, &var) {
                        idx = Some(i + 1);
                        break;
                    }
                }
                let at = idx.unwrap_or(0);
                body.stmts.insert(
                    at,
                    Stmt::Decl(VarDecl {
                        names: vec![mu_name.clone()],
                        ty: Some(Type::named(mu_ty)),
                        values: Vec::new(),
                        span: Span::DUMMY,
                    }),
                );
                inserted = true;
            }
            if !inserted {
                return Err("function has no body".into());
            }
            let mu_expr = Expr::ident(mu_name);
            guard_in_func(f, &var, &mu_expr, botch, rw);
            Ok(())
        }
        Target::Global { var } => {
            let var = var.clone();
            let mu_name = format!("mu{}", capitalize(&var));
            file.decls.insert(
                0,
                Decl::Var(VarDecl {
                    names: vec![mu_name.clone()],
                    ty: Some(Type::named(mu_ty)),
                    values: Vec::new(),
                    span: Span::DUMMY,
                }),
            );
            let funcs: Vec<String> = file.funcs().map(|f| f.name.clone()).collect();
            for name in funcs {
                let f = file.find_func_mut(&name).expect("listed function");
                let mu_expr = Expr::ident(mu_name.clone());
                guard_in_func(f, &var, &mu_expr, botch, rw);
            }
            Ok(())
        }
        Target::Pattern { .. } => Err("mutex guard needs a variable target".into()),
    }
}

/// Wraps every statement in `f` that directly uses `var` with
/// `mu.Lock(); S; mu.Unlock()` (RLock for read-only statements when `rw`).
/// Racy reads inside `return` expressions are hoisted into a guarded
/// temporary, since the statement itself cannot be wrapped.
fn guard_in_func(f: &mut FuncDecl, var: &str, mu: &Expr, botch: u8, rw: bool) {
    let var = var.to_owned();
    let mu = mu.clone();
    let mut hoisted = 0usize;
    map_stmt_lists(f, &mut |stmts| {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            let uses = stmt_uses_var_directly(&s, &var) || field_access_in_stmt(&s, &var);
            let declares = stmt_declares_var(&s, &var);
            let is_write = stmt_writes_var(&s, &var);
            if !uses || declares || is_go_stmt(&s) {
                out.push(s);
                continue;
            }
            // Botch 1: guard writes only — reads stay racy.
            if botch == 1 && !is_write {
                out.push(s);
                continue;
            }
            // Botch 2 (rw): RLock everywhere, including writes.
            let (lock, unlock) = if rw {
                if is_write && botch != 2 {
                    ("Lock", "Unlock")
                } else {
                    ("RLock", "RUnlock")
                }
            } else {
                ("Lock", "Unlock")
            };
            match s {
                // A `return` reading `var` cannot be wrapped (the lock
                // would never release); hoist the returned values into
                // guarded temporaries instead.
                Stmt::Return { values, span } if !values.is_empty() => {
                    let names: Vec<String> = (0..values.len())
                        .map(|k| format!("guarded{}{}", capitalize(&var), hoisted + k))
                        .collect();
                    hoisted += values.len();
                    out.push(method_stmt(mu.clone(), lock, vec![]));
                    out.push(Stmt::ShortVar {
                        names: names.clone(),
                        values,
                        span,
                    });
                    out.push(method_stmt(mu.clone(), unlock, vec![]));
                    out.push(Stmt::Return {
                        values: names.into_iter().map(Expr::ident).collect(),
                        span,
                    });
                }
                // Other return-bearing compound statements stay
                // unwrapped — a wrap would leak the lock on return, and
                // inner returns were already hoisted bottom-up.
                s if contains_return(&s) => out.push(s),
                s => {
                    out.push(method_stmt(mu.clone(), lock, vec![]));
                    out.push(s);
                    out.push(method_stmt(mu.clone(), unlock, vec![]));
                }
            }
        }
        out
    });
}

fn field_access_in_stmt(s: &Stmt, field: &str) -> bool {
    let mut found = false;
    fn scan_expr(e: &Expr, field: &str, found: &mut bool) {
        match e {
            Expr::Selector { name, expr, .. } => {
                if name == field {
                    *found = true;
                }
                scan_expr(expr, field, found);
            }
            Expr::FuncLit { .. } => {}
            Expr::Index { expr, index, .. } => {
                scan_expr(expr, field, found);
                scan_expr(index, field, found);
            }
            Expr::Call { fun, args, .. } => {
                // Method *names* are not field reads.
                if let Expr::Selector { expr, .. } = fun.as_ref() {
                    scan_expr(expr, field, found);
                } else {
                    scan_expr(fun, field, found);
                }
                for a in args {
                    scan_expr(a, field, found);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                scan_expr(lhs, field, found);
                scan_expr(rhs, field, found);
            }
            Expr::Unary { expr, .. } | Expr::Paren { expr, .. } => scan_expr(expr, field, found),
            _ => {}
        }
    }
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs) {
                scan_expr(e, field, &mut found);
            }
        }
        Stmt::Expr(e) => scan_expr(e, field, &mut found),
        Stmt::ShortVar { values, .. } | Stmt::Return { values, .. } => {
            for e in values {
                scan_expr(e, field, &mut found);
            }
        }
        Stmt::Range(st) => scan_expr(&st.expr, field, &mut found),
        Stmt::If(st) => scan_expr(&st.cond, field, &mut found),
        Stmt::IncDec { expr, .. } => scan_expr(expr, field, &mut found),
        _ => {}
    }
    found
}

fn stmt_writes_var(s: &Stmt, var: &str) -> bool {
    match s {
        Stmt::Assign { lhs, .. } => lhs.iter().any(|e| {
            e.root_ident() == Some(var)
                || matches!(e, Expr::Selector { name, .. } if name == var)
                || matches!(e, Expr::Index { expr, .. }
                    if expr.root_ident() == Some(var)
                        || matches!(expr.as_ref(), Expr::Selector { name, .. } if name == var))
        }),
        Stmt::IncDec { expr, .. } => expr.root_ident() == Some(var),
        Stmt::Expr(Expr::Call { fun, args, .. }) => {
            // delete(m, k) / append target writes.
            fun.as_ident() == Some("delete")
                && args
                    .first()
                    .map(|a| {
                        a.root_ident() == Some(var)
                            || matches!(a, Expr::Selector { name, .. } if name == var)
                    })
                    .unwrap_or(false)
        }
        _ => false,
    }
}

/// Listing 20: atomic operations on a shared integer.
fn atomic_counter(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    ensure_import(file, "sync/atomic");
    let (fnames, var, is_field): (Vec<String>, String, bool) = match target {
        Target::Local { func, var } => (vec![func.clone()], var.clone(), false),
        Target::Field { type_name, field } => {
            let methods: Vec<String> = file
                .funcs()
                .filter(|f| {
                    f.receiver
                        .as_ref()
                        .map(|r| r.ty.is_named(type_name))
                        .unwrap_or(false)
                })
                .map(|f| f.name.clone())
                .collect();
            if methods.is_empty() {
                return Err(format!("no methods on `{type_name}` in scope"));
            }
            (methods, field.clone(), true)
        }
        _ => return Err("atomic conversion needs a variable target".into()),
    };
    let mut changed = false;
    for fname in fnames {
        let f = file.find_func_mut(&fname).expect("listed function");
        changed |= atomics_in_func(f, &var, is_field, botch);
    }
    if changed {
        Ok(())
    } else {
        Err(format!("no integer accesses to `{var}` found"))
    }
}

fn atomics_in_func(f: &mut FuncDecl, var: &str, is_field: bool, botch: u8) -> bool {
    let mut changed = false;
    let is_target = |e: &Expr| -> bool {
        if is_field {
            matches!(e, Expr::Selector { name, .. } if name == var)
        } else {
            e.as_ident() == Some(var)
        }
    };
    let addr_of = |e: &Expr| -> Expr {
        Expr::Unary {
            op: UnOp::Addr,
            expr: Box::new(e.clone()),
            span: Span::DUMMY,
        }
    };
    // Pass 1: statement-level writes.
    map_stmt_lists(f, &mut |stmts| {
        stmts
            .into_iter()
            .map(|s| match &s {
                Stmt::Assign { lhs, op, rhs, .. } if lhs.len() == 1 && is_target(&lhs[0]) => {
                    changed = true;
                    match (op, &rhs[0]) {
                        // v = v + k → atomic.AddInt64(&v, k)
                        (
                            AssignOp::Assign,
                            Expr::Binary {
                                op: BinOp::Add,
                                lhs: bl,
                                rhs: br,
                                ..
                            },
                        ) if is_target(bl) => Stmt::Expr(Expr::call(
                            Expr::path("atomic.AddInt64"),
                            vec![addr_of(&lhs[0]), (**br).clone()],
                        )),
                        (AssignOp::Add, v) => Stmt::Expr(Expr::call(
                            Expr::path("atomic.AddInt64"),
                            vec![addr_of(&lhs[0]), v.clone()],
                        )),
                        (AssignOp::Sub, v) => Stmt::Expr(Expr::call(
                            Expr::path("atomic.AddInt64"),
                            vec![
                                addr_of(&lhs[0]),
                                Expr::Unary {
                                    op: UnOp::Neg,
                                    expr: Box::new(v.clone()),
                                    span: Span::DUMMY,
                                },
                            ],
                        )),
                        (_, v) => Stmt::Expr(Expr::call(
                            Expr::path("atomic.StoreInt64"),
                            vec![addr_of(&lhs[0]), v.clone()],
                        )),
                    }
                }
                Stmt::IncDec { expr, inc, .. } if is_target(expr) => {
                    changed = true;
                    Stmt::Expr(Expr::call(
                        Expr::path("atomic.AddInt64"),
                        vec![addr_of(expr), Expr::int(if *inc { 1 } else { -1 })],
                    ))
                }
                _ => s,
            })
            .collect()
    });
    // Pass 2: reads → atomic.LoadInt64 (skipped in the writes-only botch).
    if botch != 1 {
        struct Reads<'a> {
            var: &'a str,
            is_field: bool,
            changed: &'a mut bool,
        }
        impl golite::visit::MutVisitor for Reads<'_> {
            fn visit_expr(&mut self, e: &mut Expr) {
                // Do not rewrite under `&` (already an atomic operand).
                if let Expr::Unary { op: UnOp::Addr, .. } = e {
                    return;
                }
                let hit = if self.is_field {
                    matches!(e, Expr::Selector { name, .. } if name == self.var)
                } else {
                    e.as_ident() == Some(self.var)
                };
                if hit {
                    *self.changed = true;
                    let inner = e.clone();
                    *e = Expr::call(
                        Expr::path("atomic.LoadInt64"),
                        vec![Expr::Unary {
                            op: UnOp::Addr,
                            expr: Box::new(inner),
                            span: Span::DUMMY,
                        }],
                    );
                    return;
                }
                self.walk_expr(e);
            }

            fn visit_stmt(&mut self, s: &mut Stmt) {
                // Assignment targets stay raw (handled in pass 1).
                if let Stmt::Assign { rhs, .. } = s {
                    for e in rhs {
                        self.visit_expr(e);
                    }
                    return;
                }
                self.walk_stmt(s);
            }
        }
        use golite::visit::MutVisitor as _;
        if let Some(body) = &mut f.body {
            let mut r = Reads {
                var,
                is_field,
                changed: &mut changed,
            };
            r.visit_block(body);
        }
    }
    changed
}

/// Listings 22/24: copy the shared struct inside each goroutine before
/// modifying it.
fn struct_copy(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let var = target_var(target)?.to_owned();
    let local = format!("local{}", capitalize(&var));
    let f = target_func(file, target)?;
    let mut touched = 0usize;
    if let Some(body) = &mut f.body {
        rewrite_go_closures(body, &mut |cb| {
            let mut uses = false;
            golite::visit::walk_exprs(cb, &mut |e| {
                if let Expr::Ident { name, .. } = e {
                    if *name == var {
                        uses = true;
                    }
                }
            });
            if !uses {
                return;
            }
            touched += 1;
            if botch == 1 && touched > 1 {
                return; // copy only the first closure — still racy
            }
            let mut r = golite::visit::RenameIdent {
                from: &var,
                to: &local,
            };
            use golite::visit::MutVisitor as _;
            r.visit_block(cb);
            // localVar := *var (the VM copies structs on explicit deref,
            // matching Go's value semantics).
            cb.stmts.insert(
                0,
                Stmt::short_var(
                    local.clone(),
                    Expr::Unary {
                        op: UnOp::Deref,
                        expr: Box::new(Expr::ident(var.clone())),
                        span: Span::DUMMY,
                    },
                ),
            );
        });
    }
    if touched == 0 {
        return Err(format!("no goroutine modifies `{var}`"));
    }
    Ok(())
}

/// Listing 10: route the captured result variable through a buffered
/// channel.
fn channel_result(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let var = target_var(target)?.to_owned();
    let chan = format!("{var}Chan");
    let f = target_func(file, target)?;
    let body = f.body.as_mut().ok_or("function has no body")?;

    // Find the go statement whose closure assigns the variable.
    let mut go_idx = None;
    for (i, s) in body.stmts.iter().enumerate() {
        if let Stmt::Go {
            call: Expr::Call { fun, .. },
            ..
        } = s
        {
            if let Expr::FuncLit { body: cb, .. } = fun.as_ref() {
                let mut assigns = false;
                golite::visit::walk_stmts(cb, &mut |x| {
                    if let Stmt::Assign { lhs, .. } = x {
                        if lhs.iter().any(|e| e.as_ident() == Some(var.as_str())) {
                            assigns = true;
                        }
                    }
                });
                if assigns {
                    go_idx = Some(i);
                    break;
                }
            }
        }
    }
    let go_idx = go_idx.ok_or_else(|| format!("no goroutine assigns `{var}`"))?;

    // Insert `varChan := make(chan error, 1)` before the launch.
    body.stmts.insert(
        go_idx,
        Stmt::ShortVar {
            names: vec![chan.clone()],
            values: vec![Expr::Make {
                ty: Type::Chan {
                    dir: ChanDir::Both,
                    elem: Box::new(Type::named("error")),
                },
                args: vec![Expr::int(1)],
                span: Span::DUMMY,
            }],
            span: Span::DUMMY,
        },
    );

    // Rewrite the closure: redeclare locally, send on the channel.
    if let Some(cb) = go_closure_mut(&mut body.stmts[go_idx + 1]) {
        if botch != 1 {
            convert_first_assign_to_decl(cb, &var);
        }
        // Botch 1 keeps the shared write — still racy.
        append_send_after_assign(cb, &var, &chan);
    }

    // Receive in the parent: at the top of each non-Done select case.
    let mut received = false;
    for s in body.stmts.iter_mut().skip(go_idx + 2) {
        if let Stmt::Select(st) = s {
            for c in &mut st.cases {
                if let CommClause::Recv { chan: ch, .. } = &c.comm {
                    let mut is_done = false;
                    golite::visit::walk_expr(ch, &mut |e| {
                        if let Expr::Selector { name, .. } = e {
                            if name == "Done" {
                                is_done = true;
                            }
                        }
                    });
                    if !is_done {
                        c.body.insert(
                            0,
                            Stmt::assign(
                                Expr::ident(var.clone()),
                                Expr::Unary {
                                    op: UnOp::Recv,
                                    expr: Box::new(Expr::ident(chan.clone())),
                                    span: Span::DUMMY,
                                },
                            ),
                        );
                        received = true;
                    }
                }
            }
        }
    }
    if !received {
        return Err("no select to receive the result in".into());
    }
    Ok(())
}

fn append_send_after_assign(block: &mut Block, var: &str, chan: &str) {
    fn walk(stmts: &mut Vec<Stmt>, var: &str, chan: &str, done: &mut bool) {
        let mut i = 0;
        while i < stmts.len() {
            if *done {
                return;
            }
            let hits = match &stmts[i] {
                Stmt::Assign { lhs, .. } => lhs.iter().any(|e| e.as_ident() == Some(var)),
                Stmt::ShortVar { names, .. } => names.iter().any(|n| n == var),
                _ => false,
            };
            if hits {
                stmts.insert(
                    i + 1,
                    Stmt::Send {
                        chan: Expr::ident(chan.to_owned()),
                        value: Expr::ident(var.to_owned()),
                        span: Span::DUMMY,
                    },
                );
                *done = true;
                return;
            }
            match &mut stmts[i] {
                Stmt::If(st) => {
                    if let Some(init) = &mut st.init {
                        let h = match init.as_ref() {
                            Stmt::Assign { lhs, .. } => {
                                lhs.iter().any(|e| e.as_ident() == Some(var))
                            }
                            Stmt::ShortVar { names, .. } => names.iter().any(|n| n == var),
                            _ => false,
                        };
                        if h {
                            // Hoist: assignment out of the if-init so the
                            // send can follow it.
                            let hoisted =
                                std::mem::replace(init.as_mut(), Stmt::Empty { span: Span::DUMMY });
                            st.init = None;
                            let if_stmt = stmts.remove(i);
                            stmts.insert(i, hoisted);
                            stmts.insert(
                                i + 1,
                                Stmt::Send {
                                    chan: Expr::ident(chan.to_owned()),
                                    value: Expr::ident(var.to_owned()),
                                    span: Span::DUMMY,
                                },
                            );
                            stmts.insert(i + 2, if_stmt);
                            *done = true;
                            return;
                        }
                    }
                    walk(&mut st.then.stmts, var, chan, done);
                }
                Stmt::Block(b) => walk(&mut b.stmts, var, chan, done),
                _ => {}
            }
            i += 1;
        }
    }
    let mut done = false;
    walk(&mut block.stmts, var, chan, &mut done);
    if !done {
        // No assignment found (already redeclared) — send at the end.
        block.stmts.push(Stmt::Send {
            chan: Expr::ident(chan.to_owned()),
            value: Expr::ident(var.to_owned()),
            span: Span::DUMMY,
        });
    }
}

/// Listing 7: independent instance per test case.
fn per_case_instance(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let var = target_var(target)?.to_owned();
    let f = target_func(file, target)?;
    let body = f.body.as_mut().ok_or("function has no body")?;

    // Find and remove `var := ctor(...)`.
    let mut ctor = None;
    body.stmts.retain(|s| {
        if let Stmt::ShortVar { names, values, .. } = s {
            if names.len() == 1
                && names[0] == var
                && values.len() == 1
                && matches!(values[0], Expr::Call { .. })
            {
                ctor = Some(values[0].clone());
                return false;
            }
        }
        true
    });
    let ctor = ctor.ok_or_else(|| format!("`{var}` has no constructor declaration"))?;

    // Replace every remaining use with a fresh constructor call.
    struct Replace<'a> {
        var: &'a str,
        ctor: &'a Expr,
        count: usize,
        limit: Option<usize>,
    }
    impl golite::visit::MutVisitor for Replace<'_> {
        fn visit_expr(&mut self, e: &mut Expr) {
            if e.as_ident() == Some(self.var) {
                if let Some(l) = self.limit {
                    if self.count >= l {
                        return;
                    }
                }
                self.count += 1;
                *e = self.ctor.clone();
                return;
            }
            self.walk_expr(e);
        }
    }
    use golite::visit::MutVisitor as _;
    let mut rep = Replace {
        var: &var,
        ctor: &ctor,
        count: 0,
        // Botch: replace only the first use — remaining shares race (and
        // the leftover identifier no longer resolves → build error).
        limit: if botch == 1 { Some(1) } else { None },
    };
    rep.visit_block(body);
    if rep.count == 0 {
        return Err(format!("`{var}` is never used"));
    }
    Ok(())
}

/// Listing 12: inline a fresh `rand.NewSource` at each use site.
fn fresh_source(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    let var = target_var(target)?.to_owned();
    // The global's initialiser.
    let init = file
        .decls
        .iter()
        .find_map(|d| match d {
            Decl::Var(v) if v.names.iter().any(|n| n == &var) => v.values.first().cloned(),
            _ => None,
        })
        .ok_or_else(|| format!("global `{var}` (with initialiser) not in scope"))?;

    struct Inline<'a> {
        var: &'a str,
        init: &'a Expr,
        count: usize,
        limit: Option<usize>,
    }
    impl golite::visit::MutVisitor for Inline<'_> {
        fn visit_expr(&mut self, e: &mut Expr) {
            if e.as_ident() == Some(self.var) {
                if let Some(l) = self.limit {
                    if self.count >= l {
                        return;
                    }
                }
                self.count += 1;
                *e = self.init.clone();
                return;
            }
            self.walk_expr(e);
        }
    }
    use golite::visit::MutVisitor as _;
    let mut inline = Inline {
        var: &var,
        init: &init,
        count: 0,
        limit: if botch == 1 { Some(1) } else { None },
    };
    for d in &mut file.decls {
        if let Decl::Func(f) = d {
            if let Some(b) = &mut f.body {
                inline.visit_block(b);
            }
        }
    }
    if inline.count == 0 {
        return Err(format!("`{var}` is never used"));
    }
    Ok(())
}

/// The naive fix: a package-level mutex serialising all goroutine bodies
/// and the parent's racy statements.
fn blanket_mutex(file: &mut File, target: &Target, botch: u8) -> Result<(), String> {
    ensure_import(file, "sync");
    let var = target_var(target)?.to_owned();
    let fname = target.func().unwrap_or("").to_owned();
    file.decls.insert(
        0,
        Decl::Var(VarDecl {
            names: vec!["drfixMu".into()],
            ty: Some(Type::named("sync.Mutex")),
            values: Vec::new(),
            span: Span::DUMMY,
        }),
    );
    let names: Vec<String> = if fname.is_empty() {
        file.funcs().map(|f| f.name.clone()).collect()
    } else {
        vec![fname]
    };
    for name in names {
        let Some(f) = file.find_func_mut(&name) else {
            continue;
        };
        let Some(body) = &mut f.body else { continue };
        // Lock every goroutine body wholesale.
        rewrite_go_closures(body, &mut |cb| {
            cb.stmts
                .insert(0, method_stmt(Expr::ident("drfixMu"), "Lock", vec![]));
            cb.stmts.insert(
                1,
                Stmt::Defer {
                    call: Expr::method(Expr::ident("drfixMu"), "Unlock", vec![]),
                    span: Span::DUMMY,
                },
            );
        });
        if botch == 1 {
            continue; // parent accesses left unguarded — still racy
        }
        // Guard parent statements touching the variable. If one of them
        // is (or contains) a Wait, this deadlocks — the classic blanket
        // failure the paper warns about.
        let mu_expr = Expr::ident("drfixMu");
        guard_in_func(f, &var, &mu_expr, 0, false);
    }
    Ok(())
}

// ----------------------------------------------------------------- shared

/// Applies `tf` to the body of every `go func(){…}` (and `group.Go`)
/// closure in the block.
fn rewrite_go_closures(body: &mut Block, tf: &mut impl FnMut(&mut Block)) {
    fn walk(stmts: &mut [Stmt], tf: &mut impl FnMut(&mut Block)) {
        for s in stmts {
            match s {
                Stmt::Go {
                    call: Expr::Call { fun, .. },
                    ..
                } => {
                    if let Expr::FuncLit { body, .. } = fun.as_mut() {
                        tf(body);
                    }
                }
                Stmt::Expr(Expr::Call { fun, args, .. }) => {
                    if let Expr::Selector { name, .. } = fun.as_ref() {
                        if name == "Go" {
                            for a in args {
                                if let Expr::FuncLit { body, .. } = a {
                                    tf(body);
                                }
                            }
                        }
                    }
                }
                Stmt::If(st) => {
                    walk(&mut st.then.stmts, tf);
                    if let Some(el) = &mut st.else_ {
                        walk(std::slice::from_mut(el.as_mut()), tf);
                    }
                }
                Stmt::For(st) => walk(&mut st.body.stmts, tf),
                Stmt::Range(st) => walk(&mut st.body.stmts, tf),
                Stmt::Block(b) => walk(&mut b.stmts, tf),
                _ => {}
            }
        }
    }
    walk(&mut body.stmts, tf);
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrategyKind;

    #[test]
    fn local_copy_handles_multibyte_variable_names() {
        // `über` starts with a two-byte char: the old local-name code
        // byte-sliced at index 1 and panicked before even checking use.
        let src = "package p\n\nfunc f() {\n\tgo func() {\n\t\twork()\n\t}()\n}\n";
        let file = golite::parse_file(src).unwrap();
        let target = Target::Local {
            func: "f".into(),
            var: "über".into(),
        };
        let res = apply(StrategyKind::LocalCopyInGoroutine, &file, &target, 0);
        assert!(res.is_err(), "unused var should decline, not panic");
    }

    #[test]
    fn local_copy_renames_multibyte_variable_uses() {
        // The lexer is ASCII-only, so build the multi-byte identifier by
        // renaming a parsed AST — race reports carry names verbatim.
        let src = "package p\n\nfunc f() {\n\tx := 1\n\tgo func() {\n\t\tuse(x)\n\t}()\n}\n";
        let mut file = golite::parse_file(src).unwrap();
        {
            use golite::visit::MutVisitor as _;
            let mut r = golite::visit::RenameIdent {
                from: "x",
                to: "über",
            };
            let body = file.find_func_mut("f").unwrap().body.as_mut().unwrap();
            r.visit_block(body);
        }
        let target = Target::Local {
            func: "f".into(),
            var: "über".into(),
        };
        let patched = apply(StrategyKind::LocalCopyInGoroutine, &file, &target, 0).unwrap();
        let printed = golite::print_file(&patched);
        assert!(printed.contains("localÜber := über"), "{printed}");
        assert!(printed.contains("use(localÜber)"), "{printed}");
    }

    #[test]
    fn mutex_guard_hoists_racy_return_reads() {
        let src = concat!(
            "package p\n\n",
            "func f() {\n",
            "\tn := 0\n",
            "\tgo func() {\n",
            "\t\tn = n + 1\n",
            "\t}()\n",
            "\treturn n\n",
            "}\n",
        );
        let file = golite::parse_file(src).unwrap();
        let target = Target::Local {
            func: "f".into(),
            var: "n".into(),
        };
        let patched = apply(StrategyKind::MutexGuard, &file, &target, 0).unwrap();
        let printed = golite::print_file(&patched);
        let hoist = printed
            .find("guardedN0 := n")
            .expect("return value hoisted into a temporary");
        let ret = printed.find("return guardedN0").expect("return rewritten");
        assert!(hoist < ret, "{printed}");
        // The hoist is guarded: Lock before, Unlock between hoist and return.
        let lock = printed.rfind("muN.Lock()").expect("lock inserted");
        let unlock = printed.rfind("muN.Unlock()").expect("unlock inserted");
        assert!(lock < hoist && hoist < unlock && unlock < ret, "{printed}");
    }

    #[test]
    fn mutex_guard_field_return_hoist_uses_field_scan() {
        // The racy read sits inside `return len(m.samples)` — reachable
        // only through the field-access scan of return values.
        let src = concat!(
            "package p\n\n",
            "type M struct {\n\tsamples []int\n}\n\n",
            "func (m *M) last() int {\n",
            "\treturn len(m.samples)\n",
            "}\n\n",
            "func (m *M) add(v int) {\n",
            "\tm.samples = append(m.samples, v)\n",
            "}\n",
        );
        let file = golite::parse_file(src).unwrap();
        let target = Target::Field {
            type_name: "M".into(),
            field: "samples".into(),
        };
        let patched = apply(StrategyKind::MutexGuard, &file, &target, 0).unwrap();
        let printed = golite::print_file(&patched);
        assert!(
            printed.contains("guardedSamples0 := len(m.samples)"),
            "{printed}"
        );
        assert!(printed.contains("return guardedSamples0"), "{printed}");
        golite::parse_file(&printed).unwrap();
    }

    #[test]
    fn mutex_guard_botch_writes_only_leaves_returns_racy() {
        let src = concat!(
            "package p\n\n",
            "func f() {\n",
            "\tn := 0\n",
            "\tn = n + 1\n",
            "\treturn n\n",
            "}\n",
        );
        let file = golite::parse_file(src).unwrap();
        let target = Target::Local {
            func: "f".into(),
            var: "n".into(),
        };
        let patched = apply(StrategyKind::MutexGuard, &file, &target, 1).unwrap();
        let printed = golite::print_file(&patched);
        assert!(printed.contains("return n"), "{printed}");
        assert!(!printed.contains("guardedN0"), "{printed}");
    }
}
