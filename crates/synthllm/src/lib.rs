//! `synthllm` — the LLM substitute of the Dr.Fix reproduction.
//!
//! The paper's model `M` (GPT-4 Turbo / GPT-4o / o1-preview, Table 2)
//! turns a prompt — racy code, an optional retrieved example, optional
//! failure feedback — into a complete revised source file. This crate
//! reproduces that interface with three cooperating parts:
//!
//! - [`mod@diagnose`]: AST pattern detectors mapping racy code to candidate
//!   race categories and repair strategies;
//! - [`strategy`]: *real* AST-rewrite fix strategies (variable
//!   redeclaration, loop-variable privatization, `sync.Map` conversion,
//!   mutex insertion, atomics, channel-based result passing, …) — every
//!   produced patch is ordinary Go-subset code that the `govm` validator
//!   re-runs under the race detector;
//! - [`capability`]: the tier model. What an LLM would or would not
//!   manage is expressed as per-strategy skill levels, guidance gains
//!   from retrieved examples, and context-length attention noise — the
//!   knobs correspond one-to-one to the paper's ablation axes (Fig. 3,
//!   Fig. 4, RQ3). Everything is deterministic given the seed.
//!
//! # Example
//!
//! ```
//! use synthllm::{FixRequest, ModelTier, Scope, SynthLlm};
//!
//! let code = "package p\n\nimport \"sync\"\n\nfunc F() {\n\terr := work()\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\tgo func() {\n\t\tdefer wg.Done()\n\t\terr = work()\n\t\tuse(err)\n\t}()\n\terr = work()\n\twg.Wait()\n\tuse(err)\n}\n\nfunc work() error { return nil }\nfunc use(e error) {}\n";
//! let llm = SynthLlm::new(ModelTier::Gpt4o, 7);
//! let resp = llm.generate(&FixRequest {
//!     code: code.to_owned(),
//!     scope: Scope::File,
//!     racy_var: "err".into(),
//!     racy_lines: vec![11, 14],
//!     example: None,
//!     feedback: vec![],
//!     context_funcs: 3,
//!     focus_func: None,
//!     case_key: "demo".into(),
//! });
//! assert!(resp.code.is_some());
//! ```

#![warn(missing_docs)]

pub mod capability;
pub mod diagnose;
pub mod model;
pub mod rewrite;
pub mod strategy;

pub use capability::{CapabilityModel, ModelTier};
pub use diagnose::{diagnose, Diagnosis};
pub use model::{Candidate, SynthLlm};
pub use strategy::StrategyKind;

use serde::{Deserialize, Serialize};

/// The race-pattern categories of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RaceCategory {
    /// Capture-by-reference in goroutines (41% of Dr.Fix fixes).
    CaptureByReference,
    /// Missing or incorrect synchronization (26%).
    MissingSync,
    /// Parallel (table-driven) test suites (13%).
    ParallelTest,
    /// Capture of a loop variable (6%).
    LoopVarCapture,
    /// Concurrent map access (5%).
    ConcurrentMap,
    /// Concurrent slice access (5%).
    ConcurrentSlice,
    /// Everything else — shared `rand.Source`, shared config structs… (4%).
    Other,
}

impl RaceCategory {
    /// Display name matching Table 3.
    pub fn display(&self) -> &'static str {
        match self {
            RaceCategory::CaptureByReference => "Capture-by-reference in goroutines",
            RaceCategory::MissingSync => "Missing/incorrect synchronization",
            RaceCategory::ParallelTest => "Parallel test suite",
            RaceCategory::LoopVarCapture => "Capture of loop variable",
            RaceCategory::ConcurrentMap => "Concurrent map access",
            RaceCategory::ConcurrentSlice => "Concurrent slice access",
            RaceCategory::Other => "Others",
        }
    }

    /// All categories in Table 3 order.
    pub fn all() -> &'static [RaceCategory] {
        &[
            RaceCategory::CaptureByReference,
            RaceCategory::MissingSync,
            RaceCategory::ParallelTest,
            RaceCategory::LoopVarCapture,
            RaceCategory::ConcurrentMap,
            RaceCategory::ConcurrentSlice,
            RaceCategory::Other,
        ]
    }
}

/// Fix scope (§4.2): the model sees one function or a whole file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scope {
    /// Function-only context (succinct but limited).
    Func,
    /// Whole-file context (comprehensive but noisy).
    File,
}

/// A retrieved example: the paper's `(b*, f*)` pair (§3.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Example {
    /// The past racy code.
    pub buggy: String,
    /// Its accepted fix.
    pub fixed: String,
}

/// Structured feedback from a failed validation attempt (§4.4.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Feedback {
    /// The strategy the prior attempt applied, when known.
    pub strategy: Option<StrategyKind>,
    /// The validator's failure message.
    pub message: String,
}

/// One fix-generation request — the prompt (Appendix E).
#[derive(Debug, Clone)]
pub struct FixRequest {
    /// The code to fix (always a parseable file; function scope wraps the
    /// function in a stub package).
    pub code: String,
    /// Whether `code` is a lone function or a whole file.
    pub scope: Scope,
    /// The racy variable named by the race report.
    pub racy_var: String,
    /// Racy line numbers within `code`.
    pub racy_lines: Vec<u32>,
    /// Retrieved example, if any (`None` = the "empty example").
    pub example: Option<Example>,
    /// Feedback from earlier failed attempts.
    pub feedback: Vec<Feedback>,
    /// Number of functions in the *original* file (context-length noise
    /// model input; meaningful at file scope).
    pub context_funcs: usize,
    /// The function the prompt points the model at (the fix *location* of
    /// §4.2: leaf, test, or LCA). Diagnoses outside this function (other
    /// than type/global-level ones) are not considered — this is what
    /// makes the choice of location matter (RQ2.5).
    pub focus_func: Option<String>,
    /// A stable identifier of the underlying race (the bug hash). The
    /// capability dice are keyed on it, so retrying the *same* strategy
    /// on the *same* race reproduces the same mistake — feedback helps by
    /// redirecting to a different strategy, not by brute-force rerolls.
    pub case_key: String,
}

/// The model's answer.
#[derive(Debug, Clone)]
pub struct FixResponse {
    /// Full revised code, or `None` when the model declines.
    pub code: Option<String>,
    /// The strategy it applied (introspection for benchmarks/review).
    pub strategy: Option<StrategyKind>,
    /// Whether the application was degraded by the capability model
    /// (mis-localised or botched) — used by ablation accounting only.
    pub degraded: bool,
    /// Free-text note (mimics a chain-of-thought summary).
    pub note: String,
}
