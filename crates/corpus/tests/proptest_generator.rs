//! Property test: every seed yields parseable programs with the promised
//! invariants.

use corpus::{generate_eval_corpus, CorpusConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn all_generated_cases_are_well_formed(seed in 0u64..100_000) {
        let cases = generate_eval_corpus(&CorpusConfig {
            eval_cases: 12,
            db_pairs: 0,
            seed,
        });
        prop_assert_eq!(cases.len(), 12);
        for c in &cases {
            prop_assert!(c.test.starts_with("Test"));
            for (name, src) in &c.files {
                let parsed = golite::parse_file(src);
                prop_assert!(parsed.is_ok(), "{name}: {:?}", parsed.err());
            }
            if c.fixable {
                prop_assert!(c.human_fix.is_some());
                prop_assert!(c.human_fix_loc().unwrap_or(0) > 0);
            }
        }
    }
}
