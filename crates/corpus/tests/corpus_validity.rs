//! Ground-truth validation: every generated racy case must race under
//! the detector, and every human fix must come back clean.

use corpus::{generate_eval_corpus, CorpusConfig};
use govm::{compile_sources, CompileOptions, TestConfig};

fn compile(files: &[(String, String)]) -> Result<govm::Program, golite::Diag> {
    compile_sources(files, &CompileOptions::default())
}

#[test]
fn racy_cases_race_and_fixes_are_clean() {
    let cases = generate_eval_corpus(&CorpusConfig {
        eval_cases: 60,
        db_pairs: 0,
        seed: 0xBEEF,
    });
    let cfg = TestConfig {
        runs: 40,
        seed: 0,
        stop_on_race: true,
        ..TestConfig::default()
    };
    for case in &cases {
        let prog = compile(&case.files)
            .unwrap_or_else(|e| panic!("{} failed to build: {e}\n{}", case.id, dump(case)));
        let out = govm::run_test_many(&prog, &case.test, &cfg);
        assert!(
            out.error.is_none(),
            "{} ({:?}) errored: {:?}\n{}",
            case.id,
            case.category,
            out.error,
            dump(case)
        );
        assert!(
            !out.races.is_empty(),
            "{} ({:?} hard={:?}) never raced\n{}",
            case.id,
            case.category,
            case.hard,
            dump(case)
        );

        if let Some(fix) = &case.human_fix {
            let prog =
                compile(fix).unwrap_or_else(|e| panic!("{} fix failed to build: {e}", case.id));
            let clean_cfg = TestConfig {
                runs: 24,
                seed: 7,
                stop_on_race: true,
                ..TestConfig::default()
            };
            let out = govm::run_test_many(&prog, &case.test, &clean_cfg);
            assert!(
                out.races.is_empty(),
                "{} human fix still races:\n{}",
                case.id,
                out.races[0].render()
            );
            assert!(
                out.error.is_none(),
                "{} human fix errored: {:?}",
                case.id,
                out.error
            );
        }
    }
}

#[test]
fn race_reports_name_the_planted_variable() {
    let cases = generate_eval_corpus(&CorpusConfig {
        eval_cases: 20,
        db_pairs: 0,
        seed: 0xFACE,
    });
    let cfg = TestConfig {
        runs: 40,
        seed: 0,
        stop_on_race: true,
        ..TestConfig::default()
    };
    let mut named = 0;
    let mut total = 0;
    for case in &cases {
        let Ok(prog) = compile(&case.files) else {
            continue;
        };
        let out = govm::run_test_many(&prog, &case.test, &cfg);
        if let Some(r) = out.races.first() {
            total += 1;
            // The planted racy variable is recorded as a comment.
            let planted = case
                .files
                .iter()
                .flat_map(|(_, s)| s.lines())
                .find_map(|l| {
                    l.trim()
                        .strip_prefix("// racy:")
                        .map(|v| v.trim().to_owned())
                });
            if let Some(v) = planted {
                if r.var_name == v || r.var_name.contains(&v) || v.contains(&r.var_name) {
                    named += 1;
                }
            }
        }
    }
    assert!(total > 0);
    // Most reports should point at the planted variable (some point at a
    // derived cell like a map header with the same name).
    assert!(
        named * 3 >= total * 2,
        "only {named}/{total} reports named the planted variable"
    );
}

fn dump(case: &corpus::RaceCase) -> String {
    case.files
        .iter()
        .map(|(n, s)| format!("--- {n}\n{s}"))
        .collect::<Vec<_>>()
        .join("\n")
}
