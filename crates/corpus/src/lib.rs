//! `corpus` — the workload generator of the Dr.Fix reproduction.
//!
//! The paper evaluates on 403 reproducible data races from Uber's
//! monorepo (plus 404 in deployment) and retrieves examples from a
//! curated database of 272 past fixes. This crate synthesises both
//! populations: seeded racy Go-subset programs in exactly the Table 3
//! race categories, wrapped in randomized business-logic noise, plus the
//! Table 5 "hard" cases the tool cannot fix (races spanning a third
//! file, fixes that would remove parallelism, …). Every fixable case
//! ships with its ground-truth human fix, used to build the example
//! database and to compare fix sizes (Table 7).
//!
//! # Example
//!
//! ```
//! use corpus::{generate_eval_corpus, CorpusConfig};
//!
//! let cases = generate_eval_corpus(&CorpusConfig { eval_cases: 10, ..CorpusConfig::default() });
//! assert_eq!(cases.len(), 10);
//! assert!(cases.iter().any(|c| c.fixable));
//! ```

#![warn(missing_docs)]

pub mod noise;
pub mod stream;
pub mod templates;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
pub use synthllm::RaceCategory;

/// The unfixed-race categories of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HardCategory {
    /// Requires changes across more than two files (21%).
    MoreThanTwoFiles,
    /// The only fix changes/removes parallelism (19%).
    RemoveParallelism,
    /// Needs business-logic changes (15%).
    BusinessLogic,
    /// The failing test cannot be isolated (10%).
    IsolateTest,
    /// The race is in external code (10%).
    External,
    /// Requires a large refactoring (6%).
    LargeRefactoring,
    /// Miscellaneous unique challenges (6%).
    Others,
    /// Requires deep copies (5%).
    DeepCopy,
    /// A singleton needs redesign (4%).
    Singleton,
    /// Non-trivial even for experts (4%).
    NonTrivialExpert,
}

impl HardCategory {
    /// Display name matching Table 5.
    pub fn display(&self) -> &'static str {
        match self {
            HardCategory::MoreThanTwoFiles => "More than 2 File Changes",
            HardCategory::RemoveParallelism => "Change/Reduce/Remove Parallelism",
            HardCategory::BusinessLogic => "Change the Business Logic",
            HardCategory::IsolateTest => "Unable to Isolate the Failing Test",
            HardCategory::External => "External",
            HardCategory::LargeRefactoring => "Large Code Refactoring",
            HardCategory::Others => "Others",
            HardCategory::DeepCopy => "Using Deep Copy",
            HardCategory::Singleton => "Singleton Pattern",
            HardCategory::NonTrivialExpert => "Non-trivial Even for Experts",
        }
    }

    /// Table 5 order.
    pub fn all() -> &'static [HardCategory] {
        &[
            HardCategory::MoreThanTwoFiles,
            HardCategory::RemoveParallelism,
            HardCategory::BusinessLogic,
            HardCategory::IsolateTest,
            HardCategory::External,
            HardCategory::LargeRefactoring,
            HardCategory::Others,
            HardCategory::DeepCopy,
            HardCategory::Singleton,
            HardCategory::NonTrivialExpert,
        ]
    }
}

/// One synthetic race case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaceCase {
    /// Stable id, e.g. `race-0042`.
    pub id: String,
    /// Table 3 category of the planted race.
    pub category: RaceCategory,
    /// Set for Table 5 cases the pipeline is not expected to fix.
    pub hard: Option<HardCategory>,
    /// Whether the pipeline is expected to be able to fix this
    /// (hard-but-strategy-fixable cases are `true` with `hard` set).
    pub fixable: bool,
    /// Whether the fix is only reachable from the LCA location (RQ2.5).
    pub lca_only: bool,
    /// The racy source files `(name, content)` — at most 2 visible to the
    /// pipeline; hard multi-file cases carry a third.
    pub files: Vec<(String, String)>,
    /// The test function exercising the race.
    pub test: String,
    /// The ground-truth (human) fix, when one exists.
    pub human_fix: Option<Vec<(String, String)>>,
}

impl RaceCase {
    /// Lines of code across all racy files.
    pub fn loc(&self) -> usize {
        self.files.iter().map(|(_, s)| s.lines().count()).sum()
    }

    /// Unified-diff-style changed-line count between racy and fixed
    /// versions (Table 7's LoC metric).
    pub fn human_fix_loc(&self) -> Option<usize> {
        let fix = self.human_fix.as_ref()?;
        let mut changed = 0;
        for (name, fixed) in fix {
            let orig = self
                .files
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.as_str())
                .unwrap_or("");
            changed += diff_lines(orig, fixed);
        }
        Some(changed)
    }
}

/// Counts changed lines between two texts (symmetric difference of line
/// multisets — a cheap but stable proxy for diff size).
pub fn diff_lines(a: &str, b: &str) -> usize {
    use std::collections::HashMap;
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for l in a.lines() {
        *counts.entry(l).or_default() += 1;
    }
    for l in b.lines() {
        *counts.entry(l).or_default() -= 1;
    }
    counts.values().map(|v| v.unsigned_abs() as usize).sum()
}

/// Corpus-generation configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of evaluation cases (the paper reproduces 403).
    pub eval_cases: usize,
    /// Number of curated example-database pairs (the paper uses 272).
    pub db_pairs: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            eval_cases: 403,
            db_pairs: 272,
            seed: 0xD0F1,
        }
    }
}

/// A clean performance-workload program: no planted race, just a
/// deterministic source tree with a named test entry point.
///
/// The perf gate's LargeHeap arms are these — map/slice-heavy programs
/// with working sets of hundreds of tracked cells, generated by
/// [`generate_large_heap_corpus`] — campaigned exactly like race cases
/// but expected to come back clean.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfCase {
    /// Stable id, e.g. `heap-slice-00`.
    pub id: String,
    /// Source files `(name, content)`.
    pub files: Vec<(String, String)>,
    /// The test function driving the workload.
    pub test: String,
}

/// A curated example-database pair (§4.1): the racy code and its
/// accepted fix, labelled with its category for bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbPair {
    /// The racy code (single file).
    pub buggy: String,
    /// The accepted fix.
    pub fixed: String,
    /// The racy variable (used for skeletonization).
    pub racy_var: String,
    /// Category label (Table 3's VectorDB column).
    pub category: RaceCategory,
}

/// Builds the evaluation corpus: `eval_cases` races distributed so that
/// the *fixable* population follows Table 3 and the *hard* population
/// follows Table 5 (roughly 34% of the total, matching the paper's 66%
/// ceiling).
pub fn generate_eval_corpus(cfg: &CorpusConfig) -> Vec<RaceCase> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total = cfg.eval_cases;
    // 34.2% hard (138/403 in the paper).
    let hard_total = (total as f64 * 0.342).round() as usize;
    let fixable_total = total - hard_total;

    // Table 3 proportions over the fixable pool.
    let fixable_quota: Vec<(RaceCategory, usize)> = distribute(
        fixable_total,
        &[
            (RaceCategory::CaptureByReference, 0.41),
            (RaceCategory::MissingSync, 0.26),
            (RaceCategory::ParallelTest, 0.13),
            (RaceCategory::LoopVarCapture, 0.06),
            (RaceCategory::ConcurrentMap, 0.05),
            (RaceCategory::ConcurrentSlice, 0.05),
            (RaceCategory::Other, 0.04),
        ],
    );

    // Table 5 proportions over the hard pool.
    let hard_quota: Vec<(HardCategory, usize)> = distribute(
        hard_total,
        &[
            (HardCategory::MoreThanTwoFiles, 0.21),
            (HardCategory::RemoveParallelism, 0.19),
            (HardCategory::BusinessLogic, 0.15),
            (HardCategory::IsolateTest, 0.10),
            (HardCategory::External, 0.10),
            (HardCategory::LargeRefactoring, 0.06),
            (HardCategory::Others, 0.06),
            (HardCategory::DeepCopy, 0.05),
            (HardCategory::Singleton, 0.04),
            (HardCategory::NonTrivialExpert, 0.04),
        ],
    );

    let mut cases = Vec::with_capacity(total);
    let mut idx = 0;
    for (cat, n) in fixable_quota {
        for _ in 0..n {
            let mut case = templates::fixable_case(&mut rng, cat, idx);
            case.id = format!("race-{idx:04}");
            cases.push(case);
            idx += 1;
        }
    }
    for (hcat, n) in hard_quota {
        for _ in 0..n {
            let mut case = templates::hard_case(&mut rng, hcat, idx);
            case.id = format!("race-{idx:04}");
            cases.push(case);
            idx += 1;
        }
    }
    cases
}

/// Builds the ordering-sensitive exposure corpus: `eval_cases` races
/// distributed round-robin over the fixable Table 3 categories, each
/// planted so it only manifests when the scheduler starves the worker
/// goroutine past a computation window (see
/// [`templates::ordering_sensitive_case`]).
///
/// This is the schedule hard tail the Table 3 templates lack — their
/// races carry no happens-before edge, so any schedule exposes them —
/// and it is what the `schedules_to_expose` bench and the corpus-wide
/// exposure test suite measure policies against.
pub fn generate_exposure_corpus(cfg: &CorpusConfig) -> Vec<RaceCase> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE590);
    let cats = RaceCategory::all();
    let mut cases = Vec::with_capacity(cfg.eval_cases);
    for idx in 0..cfg.eval_cases {
        let cat = cats[idx % cats.len()];
        let mut case = templates::ordering_sensitive_case(&mut rng, cat, idx);
        case.id = format!("expose-{idx:04}");
        cases.push(case);
    }
    cases
}

/// Builds the tournament corpus: `eval_cases` races cycling the four
/// statically-interesting families of [`templates::tournament_case`]
/// (RWMutex-upgrade, double-checked locking, channel-select, and
/// racy-read-in-`return`).
///
/// These are the shapes where a single generated candidate is often
/// wrong in a *statically visible* way — the natural mutex patch draws
/// an `inconsistent-lock` warning or a structural `double-lock` error —
/// so the tournament arm's lint-driven repair loop and per-candidate
/// gate accounting have real work to do, while the single-path loop
/// burns validation campaigns on the same defects.
pub fn generate_tournament_corpus(cfg: &CorpusConfig) -> Vec<RaceCase> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7042);
    let mut cases = Vec::with_capacity(cfg.eval_cases);
    for idx in 0..cfg.eval_cases {
        let mut case = templates::tournament_case(&mut rng, idx);
        case.id = format!("tourn-{idx:04}");
        cases.push(case);
    }
    cases
}

/// Builds the large-heap perf family: `n` clean map/slice-heavy
/// programs cycling the three [`templates::large_heap_case`] shapes
/// (slice scan, map churn, mixed registry under an RWMutex), with
/// per-case deterministic size variation.
///
/// This is the perf-gate workload half the hot-path roadmap called for
/// once map/slice-heavy scenarios became the next bottleneck: working
/// sets of hundreds of tracked cells (dense detector state), full-slice
/// read sharing, and per-element RLock/RUnlock merge-release traffic.
pub fn generate_large_heap_corpus(n: usize, seed: u64) -> Vec<PerfCase> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4EAF);
    (0..n)
        .map(|idx| templates::large_heap_case(&mut rng, idx))
        .collect()
}

/// Builds the churn perf family: `n` clean long-lived programs whose
/// goroutines and heap cells die and are replaced continuously —
/// wait-grouped worker generations over fresh buffers, and sequential
/// short-lived sessions over fresh private maps (see
/// [`templates::churn_case`]).
///
/// This is the streaming-detection workload: on the LargeHeap family
/// shadow state legitimately stays live, but here almost everything is
/// dead a generation later, so the shadow GC and clock-slot
/// reclamation have something real to do. The soak test runs the
/// scalable shape ([`churn_soak_case`]) for ≥1M steps and asserts the
/// memory bound.
pub fn generate_churn_corpus(n: usize, seed: u64) -> Vec<PerfCase> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4E2);
    (0..n)
        .map(|idx| templates::churn_case(&mut rng, idx))
        .collect()
}

pub use templates::churn_soak_case;

/// One fixed-source lint shape: a small program with a known static
/// diagnosis, used to pin `statcheck`'s output in golden tests.
#[derive(Debug, Clone)]
pub struct LintShape {
    /// Stable shape id (also the golden-test key).
    pub id: &'static str,
    /// File name the source is checked under.
    pub file: &'static str,
    /// The program.
    pub source: &'static str,
    /// Rule ids the analyzer must report, in source order. Empty means
    /// the shape must be diagnostic-free.
    pub expected_rules: &'static [&'static str],
}

/// The LintShapes family: canonical synchronization-misuse shapes (and
/// one clean control) with their expected `statcheck` rules. Unlike the
/// generated corpora these are fixed sources — the golden test pins the
/// analyzer's exact output on them.
pub fn lint_shapes() -> Vec<LintShape> {
    vec![
        LintShape {
            id: "clean",
            file: "clean.go",
            source: "package main\n\nimport (\n\t\"fmt\"\n\t\"sync\"\n)\n\nvar mu sync.Mutex\nvar n int\n\nfunc Add(d int) {\n\tmu.Lock()\n\tdefer mu.Unlock()\n\tn = n + d\n}\n\nfunc main() {\n\tvar wg sync.WaitGroup\n\twg.Add(2)\n\tgo func() {\n\t\tdefer wg.Done()\n\t\tAdd(1)\n\t}()\n\tgo func() {\n\t\tdefer wg.Done()\n\t\tAdd(2)\n\t}()\n\twg.Wait()\n\tfmt.Println(n)\n}\n",
            expected_rules: &[],
        },
        LintShape {
            id: "double-lock",
            file: "double_lock.go",
            source: "package main\n\nimport (\n\t\"fmt\"\n\t\"sync\"\n)\n\nvar mu sync.Mutex\nvar n int\n\nfunc main() {\n\tmu.Lock()\n\tmu.Lock()\n\tn++\n\tmu.Unlock()\n\tmu.Unlock()\n\tfmt.Println(n)\n}\n",
            expected_rules: &["double-lock"],
        },
        LintShape {
            id: "leaked-lock-early-return",
            file: "leaked_lock.go",
            source: "package main\n\nimport (\n\t\"fmt\"\n\t\"sync\"\n)\n\nvar mu sync.Mutex\nvar n int\n\nfunc Bump(limit int) int {\n\tmu.Lock()\n\tif n >= limit {\n\t\treturn n\n\t}\n\tn++\n\tmu.Unlock()\n\treturn n\n}\n\nfunc main() {\n\tfmt.Println(Bump(3))\n}\n",
            expected_rules: &["missing-unlock"],
        },
        LintShape {
            id: "lock-order-inversion",
            file: "lock_order.go",
            source: "package main\n\nimport \"sync\"\n\nvar muA sync.Mutex\nvar muB sync.Mutex\nvar a int\nvar b int\n\nfunc MoveAB() {\n\tmuA.Lock()\n\tmuB.Lock()\n\ta--\n\tb++\n\tmuB.Unlock()\n\tmuA.Unlock()\n}\n\nfunc MoveBA() {\n\tmuB.Lock()\n\tmuA.Lock()\n\tb--\n\ta++\n\tmuA.Unlock()\n\tmuB.Unlock()\n}\n\nfunc main() {\n\tvar wg sync.WaitGroup\n\twg.Add(2)\n\tgo func() {\n\t\tdefer wg.Done()\n\t\tMoveAB()\n\t}()\n\tgo func() {\n\t\tdefer wg.Done()\n\t\tMoveBA()\n\t}()\n\twg.Wait()\n}\n",
            expected_rules: &["lock-order-cycle"],
        },
        LintShape {
            id: "mutex-by-value",
            file: "mutex_by_value.go",
            source: "package main\n\nimport (\n\t\"fmt\"\n\t\"sync\"\n)\n\ntype Counter struct {\n\tmu sync.Mutex\n\tn int\n}\n\nfunc bump(c Counter) int {\n\tc.mu.Lock()\n\tc.n++\n\tc.mu.Unlock()\n\treturn c.n\n}\n\nfunc main() {\n\tc := Counter{}\n\tfmt.Println(bump(c))\n}\n",
            expected_rules: &["copylocks"],
        },
    ]
}

/// Builds the curated example database (Table 3's VectorDB column:
/// capture-by-reference 37.5%, missing-sync 14.7%, parallel-test 11.8%,
/// loop-var 2.6%, map 5.2%, slice 2.6%, others 25.7%).
pub fn generate_example_db(cfg: &CorpusConfig) -> Vec<DbPair> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xDB);
    let quota = distribute(
        cfg.db_pairs,
        &[
            (RaceCategory::CaptureByReference, 0.375),
            (RaceCategory::MissingSync, 0.147),
            (RaceCategory::ParallelTest, 0.118),
            (RaceCategory::LoopVarCapture, 0.026),
            (RaceCategory::ConcurrentMap, 0.052),
            (RaceCategory::ConcurrentSlice, 0.026),
            (RaceCategory::Other, 0.257),
        ],
    );
    let mut out = Vec::with_capacity(cfg.db_pairs);
    for (cat, n) in quota {
        for i in 0..n {
            out.push(templates::db_pair(&mut rng, cat, i));
        }
    }
    out
}

/// Splits `total` across weighted buckets, largest remainders last.
fn distribute<T: Copy>(total: usize, weights: &[(T, f64)]) -> Vec<(T, usize)> {
    let mut out: Vec<(T, usize)> = weights
        .iter()
        .map(|(t, w)| (*t, (total as f64 * w).floor() as usize))
        .collect();
    let mut assigned: usize = out.iter().map(|(_, n)| n).sum();
    let len = out.len();
    let mut i = 0;
    while assigned < total {
        out[i % len].1 += 1;
        assigned += 1;
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size_and_mix() {
        let cases = generate_eval_corpus(&CorpusConfig {
            eval_cases: 100,
            db_pairs: 0,
            seed: 1,
        });
        assert_eq!(cases.len(), 100);
        let hard = cases.iter().filter(|c| c.hard.is_some()).count();
        assert!((30..40).contains(&hard), "hard cases: {hard}");
        // Every Table 3 category appears.
        for cat in RaceCategory::all() {
            assert!(cases.iter().any(|c| c.category == *cat), "missing {cat:?}");
        }
    }

    #[test]
    fn cases_parse_and_carry_tests() {
        let cases = generate_eval_corpus(&CorpusConfig {
            eval_cases: 30,
            db_pairs: 0,
            seed: 2,
        });
        for c in &cases {
            assert!(!c.files.is_empty(), "{}", c.id);
            for (name, src) in &c.files {
                golite::parse_file(src).unwrap_or_else(|e| panic!("{} {name}: {e}\n{src}", c.id));
            }
            assert!(c.test.starts_with("Test"), "{}", c.id);
        }
    }

    #[test]
    fn fixable_cases_have_human_fixes_that_parse() {
        let cases = generate_eval_corpus(&CorpusConfig {
            eval_cases: 40,
            db_pairs: 0,
            seed: 3,
        });
        for c in cases.iter().filter(|c| c.fixable) {
            let fix = c
                .human_fix
                .as_ref()
                .unwrap_or_else(|| panic!("{} lacks fix", c.id));
            for (name, src) in fix {
                golite::parse_file(src)
                    .unwrap_or_else(|e| panic!("{} {name} fix: {e}\n{src}", c.id));
            }
            assert!(c.human_fix_loc().unwrap() > 0, "{}", c.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig {
            eval_cases: 20,
            db_pairs: 10,
            seed: 7,
        };
        let a = generate_eval_corpus(&cfg);
        let b = generate_eval_corpus(&cfg);
        assert_eq!(
            a.iter().map(|c| &c.files).collect::<Vec<_>>(),
            b.iter().map(|c| &c.files).collect::<Vec<_>>()
        );
        let da = generate_example_db(&cfg);
        let db = generate_example_db(&cfg);
        assert_eq!(
            da.iter().map(|p| &p.buggy).collect::<Vec<_>>(),
            db.iter().map(|p| &p.buggy).collect::<Vec<_>>()
        );
    }

    #[test]
    fn db_pairs_parse_and_differ() {
        let db = generate_example_db(&CorpusConfig {
            eval_cases: 0,
            db_pairs: 40,
            seed: 4,
        });
        assert_eq!(db.len(), 40);
        for p in &db {
            golite::parse_file(&p.buggy).unwrap_or_else(|e| panic!("buggy: {e}\n{}", p.buggy));
            golite::parse_file(&p.fixed).unwrap_or_else(|e| panic!("fixed: {e}\n{}", p.fixed));
            assert_ne!(p.buggy, p.fixed);
        }
    }

    #[test]
    fn diff_lines_counts_changes() {
        assert_eq!(diff_lines("a\nb\nc", "a\nb\nc"), 0);
        assert_eq!(diff_lines("a\nb", "a\nc"), 2);
        assert!(diff_lines("x", "x\ny\nz") >= 2);
    }

    #[test]
    fn exposure_corpus_parses_covers_categories_and_is_deterministic() {
        let cfg = CorpusConfig {
            eval_cases: 14,
            db_pairs: 0,
            seed: 5,
        };
        let a = generate_exposure_corpus(&cfg);
        assert_eq!(a.len(), 14);
        for c in &a {
            assert!(c.fixable, "{}", c.id);
            for (name, src) in &c.files {
                golite::parse_file(src).unwrap_or_else(|e| panic!("{} {name}: {e}\n{src}", c.id));
            }
            let fix = c
                .human_fix
                .as_ref()
                .unwrap_or_else(|| panic!("{} lacks fix", c.id));
            for (name, src) in fix {
                golite::parse_file(src)
                    .unwrap_or_else(|e| panic!("{} {name} fix: {e}\n{src}", c.id));
            }
            // The racy rendition gates the race behind a non-blocking
            // select; the fix replaces it with a blocking receive.
            assert!(c.files[0].1.contains("select"), "{}", c.id);
            assert!(!fix[0].1.contains("select"), "{}", c.id);
        }
        for cat in RaceCategory::all() {
            assert!(a.iter().any(|c| c.category == *cat), "missing {cat:?}");
        }
        let b = generate_exposure_corpus(&cfg);
        assert_eq!(
            a.iter().map(|c| &c.files).collect::<Vec<_>>(),
            b.iter().map(|c| &c.files).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tournament_corpus_parses_cycles_families_and_is_deterministic() {
        let cfg = CorpusConfig {
            eval_cases: 8,
            db_pairs: 0,
            seed: 6,
        };
        let a = generate_tournament_corpus(&cfg);
        assert_eq!(a.len(), 8);
        for c in &a {
            assert!(c.fixable, "{}", c.id);
            for (name, src) in &c.files {
                golite::parse_file(src).unwrap_or_else(|e| panic!("{} {name}: {e}\n{src}", c.id));
            }
            let fix = c
                .human_fix
                .as_ref()
                .unwrap_or_else(|| panic!("{} lacks fix", c.id));
            for (name, src) in fix {
                golite::parse_file(src)
                    .unwrap_or_else(|e| panic!("{} {name} fix: {e}\n{src}", c.id));
            }
            assert!(c.human_fix_loc().unwrap() > 0, "{}", c.id);
        }
        // The four families cycle by index.
        assert!(a[0].files[0].1.contains("RLock"), "{}", a[0].id);
        assert!(a[1].files[0].1.contains("cache == nil"), "{}", a[1].id);
        assert!(a[2].files[0].1.contains("select"), "{}", a[2].id);
        assert!(a[3].files[0].1.contains("return len"), "{}", a[3].id);
        let b = generate_tournament_corpus(&cfg);
        assert_eq!(
            a.iter().map(|c| &c.files).collect::<Vec<_>>(),
            b.iter().map(|c| &c.files).collect::<Vec<_>>()
        );
    }

    #[test]
    fn large_heap_corpus_parses_cycles_shapes_and_is_deterministic() {
        let a = generate_large_heap_corpus(6, 5);
        assert_eq!(a.len(), 6);
        for c in &a {
            for (name, src) in &c.files {
                golite::parse_file(src).unwrap_or_else(|e| panic!("{} {name}: {e}\n{src}", c.id));
            }
            assert!(c.test.starts_with("Test"), "{}", c.id);
        }
        // All three shapes appear.
        for shape in ["heap-slice", "heap-map", "heap-mixed"] {
            assert!(a.iter().any(|c| c.id.starts_with(shape)), "missing {shape}");
        }
        // Sizes vary across instances of the same shape (the literals
        // differ even though the shape is shared).
        assert_ne!(a[0].files[0].1, a[3].files[0].1);
        let b = generate_large_heap_corpus(6, 5);
        assert_eq!(
            a.iter().map(|c| &c.files).collect::<Vec<_>>(),
            b.iter().map(|c| &c.files).collect::<Vec<_>>()
        );
    }

    #[test]
    fn identifier_noise_varies_across_cases() {
        let cases = generate_eval_corpus(&CorpusConfig {
            eval_cases: 12,
            db_pairs: 0,
            seed: 9,
        });
        let same_cat: Vec<&RaceCase> = cases
            .iter()
            .filter(|c| c.category == RaceCategory::CaptureByReference && c.fixable)
            .collect();
        assert!(same_cat.len() >= 2);
        assert_ne!(same_cat[0].files[0].1, same_cat[1].files[0].1);
    }
}
