//! Streaming corpus generation for campaign-scale runs (10k+ cases).
//!
//! The batch generators in the crate root ([`crate::generate_eval_corpus`]
//! and friends) thread **one** sequential `StdRng` through every case, so
//! case `i` depends on every draw before it — fine for a 403-case table,
//! unusable for a sharded campaign that wants to synthesize case 7 312
//! without materializing the 7 311 cases before it.
//!
//! A [`CorpusStream`] is the random-access counterpart: every index gets
//! its **own** freshly-seeded `StdRng`, derived as
//! `splitmix64(seed ⊕ family_salt ⊕ splitmix64(index))` — the same
//! SplitMix64 mixer the fleet uses for per-case pipeline seeds
//! ([`govm::sched::splitmix64`]) — so
//!
//! * `stream.case(i)` is a pure function of `(family, seed, i)`: any
//!   shard, thread, or resumed process synthesizes bit-identical sources;
//! * generation is O(1) in campaign position: the corpus never exists as
//!   a whole, only the in-flight window does.
//!
//! The stream is an *additional* corpus surface, not a re-encoding of the
//! batch ones: `CorpusStream::case(i)` does **not** reproduce
//! `generate_*()[i]` (the batch generators' RNG is sequential by design
//! and stays the golden source for the paper tables).

use crate::{templates, RaceCase};
use govm::sched::splitmix64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use synthllm::RaceCategory;

/// Which template family a stream draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamFamily {
    /// Round-robin over the fixable Table 3 categories
    /// ([`templates::fixable_case`]): the bread-and-butter fix workload.
    Fixable,
    /// Ordering-sensitive races ([`templates::ordering_sensitive_case`]):
    /// the schedule hard tail, the detection-heavy workload.
    Exposure,
    /// Statically-interesting shapes ([`templates::tournament_case`]):
    /// the workload where the tournament arm's repair loop has real work.
    Tournament,
    /// Rotates the three families above by index — the deployment-shaped
    /// mixed diet.
    Mixed,
}

impl StreamFamily {
    /// Every concrete family, in stable order.
    pub fn all() -> &'static [StreamFamily] {
        &[
            StreamFamily::Fixable,
            StreamFamily::Exposure,
            StreamFamily::Tournament,
            StreamFamily::Mixed,
        ]
    }

    /// Stable lowercase name (CLI value and case-id prefix).
    pub fn name(&self) -> &'static str {
        match self {
            StreamFamily::Fixable => "fixable",
            StreamFamily::Exposure => "exposure",
            StreamFamily::Tournament => "tournament",
            StreamFamily::Mixed => "mixed",
        }
    }

    /// Parses a CLI name produced by [`StreamFamily::name`].
    pub fn parse(s: &str) -> Option<StreamFamily> {
        StreamFamily::all().iter().copied().find(|f| f.name() == s)
    }

    /// Per-family seed-domain separation salt: two families on the same
    /// base seed must never see correlated per-index RNG streams.
    fn salt(&self) -> u64 {
        match self {
            StreamFamily::Fixable => 0xF1AB,
            StreamFamily::Exposure => 0xE590,
            StreamFamily::Tournament => 0x7042,
            StreamFamily::Mixed => 0x313D,
        }
    }
}

/// Everything a stream needs to be reconstructed anywhere: campaign
/// snapshots embed this so a resumed process regenerates identical cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Template family.
    pub family: StreamFamily,
    /// Base seed; per-index seeds are derived, never consumed in order.
    pub seed: u64,
}

/// A random-access, never-materialized corpus: see the module docs.
#[derive(Debug, Clone)]
pub struct CorpusStream {
    cfg: StreamConfig,
}

impl CorpusStream {
    /// Creates a stream over `cfg`'s family and seed.
    pub fn new(cfg: StreamConfig) -> Self {
        CorpusStream { cfg }
    }

    /// The stream's configuration (what a snapshot persists).
    pub fn config(&self) -> StreamConfig {
        self.cfg
    }

    /// Synthesizes case `index` — a pure function of
    /// `(family, seed, index)`, independent of any other index.
    pub fn case(&self, index: usize) -> RaceCase {
        let (family, salt) = match self.cfg.family {
            StreamFamily::Mixed => {
                let concrete = [
                    StreamFamily::Fixable,
                    StreamFamily::Exposure,
                    StreamFamily::Tournament,
                ][index % 3];
                // Mixed keeps its own salt: `mixed` case i must not
                // collide with the underlying family's own case i.
                (concrete, StreamFamily::Mixed.salt())
            }
            f => (f, f.salt()),
        };
        let mut rng =
            StdRng::seed_from_u64(splitmix64(self.cfg.seed ^ salt ^ splitmix64(index as u64)));
        let mut case = match family {
            StreamFamily::Fixable => {
                let cats = RaceCategory::all();
                templates::fixable_case(&mut rng, cats[index % cats.len()], index)
            }
            StreamFamily::Exposure => {
                let cats = RaceCategory::all();
                templates::ordering_sensitive_case(&mut rng, cats[index % cats.len()], index)
            }
            StreamFamily::Tournament => templates::tournament_case(&mut rng, index),
            StreamFamily::Mixed => unreachable!("mixed resolved above"),
        };
        case.id = format!("{}-{index:05}", self.cfg.family.name());
        case
    }

    /// Iterates `range` lazily; nothing is retained between items.
    pub fn iter(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = RaceCase> + '_ {
        range.map(move |i| self.case(i))
    }

    /// Total source bytes of one case — the unit the campaign's
    /// peak-resident accounting charges per in-flight case.
    pub fn case_bytes(case: &RaceCase) -> u64 {
        case.files
            .iter()
            .map(|(n, s)| (n.len() + s.len()) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(family: StreamFamily) -> CorpusStream {
        CorpusStream::new(StreamConfig {
            family,
            seed: 0xD0F1,
        })
    }

    #[test]
    fn case_is_a_pure_function_of_index() {
        for &family in StreamFamily::all() {
            let s = stream(family);
            // Access out of order, then in order: identical sources.
            let late = s.case(37);
            let early = s.case(2);
            assert_eq!(s.case(2).files, early.files, "{family:?}");
            assert_eq!(s.case(37).files, late.files, "{family:?}");
            assert_eq!(s.case(37).test, late.test, "{family:?}");
        }
    }

    #[test]
    fn indices_and_families_decorrelate() {
        let s = stream(StreamFamily::Exposure);
        assert_ne!(s.case(0).files, s.case(1).files);
        // Same index, different family salt → different sources.
        let t = stream(StreamFamily::Tournament);
        assert_ne!(s.case(4).files, t.case(4).files);
        // Same family, different seed → different sources.
        let other = CorpusStream::new(StreamConfig {
            family: StreamFamily::Exposure,
            seed: 0xBEEF,
        });
        assert_ne!(s.case(4).files, other.case(4).files);
    }

    #[test]
    fn mixed_rotates_the_three_concrete_families() {
        let s = stream(StreamFamily::Mixed);
        // Index 1 resolves to Exposure templates, but under the mixed
        // salt: it must differ from the exposure stream's own case 1.
        let mixed = s.case(1);
        let exposure = stream(StreamFamily::Exposure).case(1);
        assert_ne!(mixed.files, exposure.files);
        assert!(mixed.id.starts_with("mixed-00001"), "{}", mixed.id);
    }

    #[test]
    fn iter_matches_random_access_and_stays_lazy() {
        let s = stream(StreamFamily::Fixable);
        let ids: Vec<String> = s.iter(3..6).map(|c| c.id).collect();
        assert_eq!(ids, vec!["fixable-00003", "fixable-00004", "fixable-00005"]);
        assert_eq!(s.case(4).id, "fixable-00004");
    }

    #[test]
    fn family_names_round_trip() {
        for &f in StreamFamily::all() {
            assert_eq!(StreamFamily::parse(f.name()), Some(f));
        }
        assert_eq!(StreamFamily::parse("nope"), None);
    }

    #[test]
    fn case_bytes_counts_all_files() {
        let c = stream(StreamFamily::Fixable).case(0);
        assert!(CorpusStream::case_bytes(&c) > 0);
        assert_eq!(
            CorpusStream::case_bytes(&c),
            c.files
                .iter()
                .map(|(n, s)| (n.len() + s.len()) as u64)
                .sum::<u64>()
        );
    }
}
