//! Business-logic noise: randomized identifiers and filler code.
//!
//! Industrial code is "dense with domain-specific logic and terminology"
//! (§1) — that noise is what defeats raw-text retrieval and what the
//! skeleton abstraction removes. The generator composes identifiers from
//! domain word lists and sprinkles harmless filler statements, so two
//! cases of the same race category share structure but almost no tokens.

use rand::rngs::StdRng;
use rand::Rng;

const DOMAINS: &[&str] = &[
    "Order",
    "Ledger",
    "Fleet",
    "Rider",
    "Invoice",
    "Shipment",
    "Catalog",
    "Session",
    "Payment",
    "Voucher",
    "Driver",
    "Route",
    "Quote",
    "Freight",
    "Billing",
    "Dispatch",
    "Inventory",
    "Pricing",
    "Loyalty",
    "Refund",
    "Courier",
    "Receipt",
    "Matching",
    "Surge",
];

const ACTIONS: &[&str] = &[
    "Process",
    "Reconcile",
    "Aggregate",
    "Refresh",
    "Publish",
    "Validate",
    "Enrich",
    "Hydrate",
    "Resolve",
    "Compute",
    "Snapshot",
    "Batch",
    "Merge",
    "Stage",
    "Audit",
    "Backfill",
    "Rollup",
    "Throttle",
    "Index",
    "Sample",
];

const NOUNS: &[&str] = &[
    "total", "count", "window", "bucket", "cursor", "token", "score", "budget", "quota", "limit",
    "offset", "weight", "margin", "delta", "epoch", "shard", "region", "tier", "grade", "streak",
];

/// A deterministic identifier factory for one generated case.
#[derive(Debug)]
pub struct NameGen<'r> {
    rng: &'r mut StdRng,
}

impl<'r> NameGen<'r> {
    /// Creates a factory over the corpus RNG.
    pub fn new(rng: &'r mut StdRng) -> Self {
        NameGen { rng }
    }

    /// An exported function name like `ReconcileFleetWindow`.
    pub fn func(&mut self) -> String {
        format!(
            "{}{}{}",
            pick(self.rng, ACTIONS),
            pick(self.rng, DOMAINS),
            capitalize(pick(self.rng, NOUNS))
        )
    }

    /// A helper (unexported) function name.
    pub fn helper(&mut self) -> String {
        format!(
            "{}{}",
            pick(self.rng, ACTIONS).to_lowercase(),
            pick(self.rng, DOMAINS)
        )
    }

    /// A local variable name like `ledgerBudget`.
    pub fn var(&mut self) -> String {
        format!(
            "{}{}",
            pick(self.rng, DOMAINS).to_lowercase(),
            capitalize(pick(self.rng, NOUNS))
        )
    }

    /// A type name like `FreightQuota`.
    pub fn ty(&mut self) -> String {
        format!(
            "{}{}",
            pick(self.rng, DOMAINS),
            capitalize(pick(self.rng, NOUNS))
        )
    }

    /// A test name.
    pub fn test(&mut self) -> String {
        format!("Test{}{}", pick(self.rng, ACTIONS), pick(self.rng, DOMAINS))
    }

    /// A small integer for loop bounds / seeds.
    pub fn small(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Emits `n` harmless filler statements referencing fresh locals.
    /// They exercise the business-noise paths the skeletonizer elides.
    pub fn filler(&mut self, n: usize, indent: &str) -> String {
        let mut out = String::new();
        for i in 0..n {
            let v = format!("{}{}", pick(self.rng, NOUNS), i);
            let k = self.small(1, 40);
            match self.rng.gen_range(0..3u8) {
                0 => {
                    out.push_str(&format!("{indent}{v} := {k}\n{indent}_ = {v} + 1\n"));
                }
                1 => {
                    out.push_str(&format!(
                        "{indent}{v} := {k}\n{indent}if {v} > {} {{\n{indent}\t{v} = {v} - 1\n{indent}}}\n{indent}_ = {v}\n",
                        k / 2
                    ));
                }
                _ => {
                    out.push_str(&format!(
                        "{indent}{v} := \"{}\"\n{indent}_ = {v}\n",
                        pick(self.rng, DOMAINS).to_lowercase()
                    ));
                }
            }
        }
        out
    }
}

fn pick<'a>(rng: &mut StdRng, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_are_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mut g1 = NameGen::new(&mut r1);
        let mut g2 = NameGen::new(&mut r2);
        assert_eq!(g1.func(), g2.func());
        assert_eq!(g1.var(), g2.var());
    }

    #[test]
    fn filler_parses_inside_a_function() {
        let mut r = StdRng::seed_from_u64(9);
        let mut g = NameGen::new(&mut r);
        let filler = g.filler(4, "\t");
        let src = format!("package p\n\nfunc f() {{\n{filler}}}\n");
        golite::parse_file(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = NameGen::new(&mut r1).func();
        let b = NameGen::new(&mut r2).func();
        // Not guaranteed distinct in general, but these seeds differ.
        assert_ne!(a, b);
    }
}
