//! Race-case templates: one generator per Table 3 category (with
//! variants) and per Table 5 hard category.
//!
//! Every fixable template emits both the racy program and its
//! ground-truth human fix; the racy pattern is one of the shapes the
//! `govm` integration suite verifies the detector catches, and the fix
//! is one it verifies comes back clean.

use crate::noise::NameGen;
use crate::{HardCategory, RaceCase, RaceCategory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates one fixable case of `cat`, then buries it in unique
/// business-logic noise ("industrial codebases are dense with
/// domain-specific logic and terminology", §1). The noise is identical in
/// the racy and fixed renditions, never executes, and is exactly what the
/// skeleton abstraction strips — raw-text retrieval drowns in it.
pub fn fixable_case(rng: &mut StdRng, cat: RaceCategory, idx: usize) -> RaceCase {
    let mut case = fixable_case_inner(rng, cat, idx);
    let noise = business_noise(rng);
    for (_, src) in &mut case.files {
        src.push_str(&noise);
    }
    if let Some(fix) = &mut case.human_fix {
        for (_, src) in fix {
            src.push_str(&noise);
        }
    }
    case
}

/// Renders a few never-called helper functions full of unique
/// identifiers and string literals.
fn business_noise(rng: &mut StdRng) -> String {
    let mut n = NameGen::new(rng);
    let mut out = String::new();
    let funcs = n.small(4, 7);
    for _ in 0..funcs {
        let fname = n.helper();
        let lines = n.small(8, 18) as usize;
        let body = n.filler(lines, "\t");
        out.push_str(&format!("\nfunc {fname}() {{\n{body}}}\n"));
    }
    out
}

fn fixable_case_inner(rng: &mut StdRng, cat: RaceCategory, idx: usize) -> RaceCase {
    match cat {
        RaceCategory::CaptureByReference => {
            // Variant mix inside the category: redeclare-style races
            // dominate; channel-result (Listing 10) is the hard tail.
            let roll = rng.gen_range(0..100);
            if roll < 45 {
                err_capture(rng, idx)
            } else if roll < 65 {
                local_copy(rng, idx)
            } else if roll < 78 {
                pass_param(rng, idx)
            } else if roll < 90 {
                lca_capture(rng, idx)
            } else {
                channel_result(rng, idx)
            }
        }
        RaceCategory::MissingSync => {
            let roll = rng.gen_range(0..100);
            if roll < 40 {
                wg_add_inside(rng, idx)
            } else if roll < 70 {
                counter_unprotected(rng, idx)
            } else {
                partial_lock(rng, idx)
            }
        }
        RaceCategory::ParallelTest => table_test(rng, idx),
        RaceCategory::LoopVarCapture => loop_var(rng, idx),
        RaceCategory::ConcurrentMap => {
            if rng.gen_bool(0.5) {
                local_map(rng, idx)
            } else {
                field_map(rng, idx)
            }
        }
        RaceCategory::ConcurrentSlice => slice_append(rng, idx),
        RaceCategory::Other => {
            if rng.gen_bool(0.5) {
                rand_source(rng, idx)
            } else {
                struct_copy(rng, idx)
            }
        }
    }
}

/// Generates one Table 5 hard case.
pub fn hard_case(rng: &mut StdRng, hcat: HardCategory, idx: usize) -> RaceCase {
    match hcat {
        HardCategory::MoreThanTwoFiles => third_file_global(rng, idx, hcat),
        HardCategory::RemoveParallelism => alias_return_race(rng, idx, hcat),
        HardCategory::BusinessLogic => alias_return_race(rng, idx, hcat),
        HardCategory::IsolateTest => third_file_global(rng, idx, hcat),
        HardCategory::External => vendor_race(rng, idx),
        HardCategory::LargeRefactoring => third_file_global(rng, idx, hcat),
        HardCategory::Others => alias_return_race(rng, idx, hcat),
        HardCategory::DeepCopy => hard_struct_copy(rng, idx),
        HardCategory::Singleton => third_file_global(rng, idx, HardCategory::Singleton),
        HardCategory::NonTrivialExpert => hard_channel_result(rng, idx),
    }
}

/// Generates one example-database pair of `cat` (§4.1).
pub fn db_pair(rng: &mut StdRng, cat: RaceCategory, _i: usize) -> crate::DbPair {
    // Reuse the fixable templates: the DB holds single-file
    // (racy, fixed) pairs; for multi-file templates the file carrying
    // the fix is stored.
    let case = fixable_case(rng, cat, usize::MAX / 2);
    let (mut buggy, mut fixed) = (case.files[0].1.clone(), case.files[0].1.clone());
    if let Some(fix) = &case.human_fix {
        for (name, fixed_src) in fix {
            let orig = case
                .files
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.clone())
                .unwrap_or_default();
            if &orig != fixed_src {
                buggy = orig;
                fixed = fixed_src.clone();
                break;
            }
        }
    }
    let racy_var = case_racy_var(&case);
    crate::DbPair {
        buggy,
        fixed,
        racy_var,
        category: cat,
    }
}

/// Best-effort racy-variable name recovery (templates encode it in the
/// case id slot; used only for DB skeletonization).
fn case_racy_var(case: &RaceCase) -> String {
    // The templates embed the racy variable as the first `// racy:` line.
    for (_, src) in &case.files {
        for line in src.lines() {
            if let Some(rest) = line.trim().strip_prefix("// racy:") {
                return rest.trim().to_owned();
            }
        }
    }
    "x".to_owned()
}

fn case(
    idx: usize,
    cat: RaceCategory,
    files: Vec<(String, String)>,
    test: String,
    fix: Option<Vec<(String, String)>>,
) -> RaceCase {
    RaceCase {
        id: format!("race-{idx:04}"),
        category: cat,
        hard: None,
        fixable: fix.is_some(),
        lca_only: false,
        files,
        test,
        human_fix: fix,
    }
}

// ===================================================================
// Fixable templates
// ===================================================================

/// Listing 1: `err` captured by reference in a WaitGroup goroutine.
fn err_capture(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let (h1, h2, h3) = (n.helper(), n.helper(), n.helper());
    let filler_n = n.small(1, 3) as usize;
    let filler = n.filler(filler_n, "\t");
    let make = |racy: bool| {
        let inner = if racy {
            format!("\t\tif err = {h2}(); err != nil {{\n\t\t\trecordIssue()\n\t\t}}\n")
        } else {
            format!("\t\tif err := {h2}(); err != nil {{\n\t\t\trecordIssue()\n\t\t}}\n")
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: err
func {func}() error {{
	err := {h1}()
	if err != nil {{
		return err
	}}
{filler}	var wg sync.WaitGroup
	wg.Add(1)
	go func() {{
		defer wg.Done()
{inner}	}}()
	if err = {h3}(); err != nil {{
		recordIssue()
	}}
	wg.Wait()
	return err
}}

func {h1}() error {{ return nil }}
func {h2}() error {{ return nil }}
func {h3}() error {{ return nil }}
func recordIssue() {{}}

func {test}(t *testing.T) {{
	if err := {func}(); err != nil {{
		t.Errorf("unexpected: %v", err)
	}}
}}
"#
        )
    };
    let file = ("service.go".to_owned(), make(true));
    let fix = vec![("service.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::CaptureByReference,
        vec![file],
        test,
        Some(fix),
    )
}

/// Listing 5: the `limit` local-copy pattern.
fn local_copy(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let var = n.var();
    let iters = n.small(3, 5);
    let filler_n = n.small(1, 2) as usize;
    let filler = n.filler(filler_n, "\t");
    let make = |racy: bool| {
        let body = if racy {
            format!(
                "\t\t\tif pos%2 == 0 {{\n\t\t\t\t{var} = {var} + 5\n\t\t\t}}\n\t\t\tconsume({var})\n"
            )
        } else {
            format!(
                "\t\t\tlocal{cap} := {var}\n\t\t\tif pos%2 == 0 {{\n\t\t\t\tlocal{cap} = local{cap} + 5\n\t\t\t}}\n\t\t\tconsume(local{cap})\n",
                cap = capitalize(&var)
            )
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: {var}
func {func}() {{
	{var} := 10
{filler}	var wg sync.WaitGroup
	for i := 0; i < {iters}; i++ {{
		wg.Add(1)
		go func(pos int) {{
			defer wg.Done()
{body}		}}(i)
	}}
	wg.Wait()
}}

func consume(v int) {{}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
        )
    };
    let file = ("limits.go".to_owned(), make(true));
    let fix = vec![("limits.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::CaptureByReference,
        vec![file],
        test,
        Some(fix),
    )
}

/// A goroutine reads a captured variable the parent keeps writing.
fn pass_param(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let var = n.var();
    let filler_n = n.small(0, 2) as usize;
    let filler = n.filler(filler_n, "\t");
    let make = |racy: bool| {
        let (sig, arg) = if racy {
            ("func() {".to_owned(), "}()".to_owned())
        } else {
            (
                format!("func({var} interface{{}}) {{"),
                format!("}}({var})"),
            )
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: {var}
func {func}() {{
	{var} := 1
{filler}	var wg sync.WaitGroup
	wg.Add(1)
	go {sig}
		defer wg.Done()
		consume2({var})
	{arg}
	{var} = 2
	consume2({var})
	wg.Wait()
}}

func consume2(v interface{{}}) {{}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
        )
    };
    let file = ("params.go".to_owned(), make(true));
    let fix = vec![("params.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::CaptureByReference,
        vec![file],
        test,
        Some(fix),
    )
}

/// A three-file case where the fix is only reachable from the LCA: the
/// racy writes live in helper functions (leaf), the test merely calls
/// the parent, and only the parent (LCA) can privatise the shared object.
fn lca_capture(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let parent = n.func();
    let test = n.test();
    let (h1, h2) = (n.helper(), n.helper());
    let helpers = format!(
        r#"package app

// racy: load
func {h1}(c *{ty}) {{
	c.load = c.load + 1
}}

func {h2}(c *{ty}) {{
	c.load = c.load + 2
}}
"#
    );
    let make_parent = |racy: bool| {
        let spawn = if racy {
            format!(
                "\tgo func() {{\n\t\tdefer wg.Done()\n\t\t{h1}(c)\n\t}}()\n\tgo func() {{\n\t\tdefer wg.Done()\n\t\t{h2}(c)\n\t}}()\n"
            )
        } else {
            format!(
                "\tgo func() {{\n\t\tdefer wg.Done()\n\t\tlocalC := *c\n\t\t{h1}(&localC)\n\t}}()\n\tgo func() {{\n\t\tdefer wg.Done()\n\t\tlocalC := *c\n\t\t{h2}(&localC)\n\t}}()\n"
            )
        };
        format!(
            r#"package app

import "sync"

type {ty} struct {{
	load int
}}

func {parent}() {{
	c := &{ty}{{load: 1}}
	var wg sync.WaitGroup
	wg.Add(2)
{spawn}	wg.Wait()
}}
"#
        )
    };
    let driver = format!(
        r#"package app

import "testing"

func {test}(t *testing.T) {{
	{parent}()
}}
"#
    );
    let files = vec![
        ("workers.go".to_owned(), helpers.clone()),
        ("parent.go".to_owned(), make_parent(true)),
        ("driver_test.go".to_owned(), driver.clone()),
    ];
    let fix = vec![
        ("workers.go".to_owned(), helpers),
        ("parent.go".to_owned(), make_parent(false)),
        ("driver_test.go".to_owned(), driver),
    ];
    let mut c = case(
        idx,
        RaceCategory::CaptureByReference,
        files,
        test,
        Some(fix),
    );
    c.lca_only = true;
    c
}

/// Listing 10: err captured across a ctx.Done select.
fn channel_result(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let eval = n.helper();
    let make = |racy: bool| {
        if racy {
            format!(
                r#"package app

import (
	"context"
	"testing"
	"time"
)

// racy: err
func {func}() error {{
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	resultChan := make(chan int, 1)
	var err error
	go func() {{
		var result int
		result, err = {eval}()
		resultChan <- result
	}}()
	select {{
	case r := <-resultChan:
		consumeRisk(r)
	case <-ctx.Done():
		consumeRisk(0)
	}}
	cancel()
	return err
}}

func {eval}() (int, error) {{
	total := 0
	for i := 0; i < 25; i++ {{
		total += i
	}}
	return total, nil
}}

func consumeRisk(v int) {{}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
            )
        } else {
            format!(
                r#"package app

import (
	"context"
	"testing"
	"time"
)

func {func}() error {{
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	resultChan := make(chan int, 1)
	errChan := make(chan error, 1)
	var err error
	go func() {{
		result, err := {eval}()
		resultChan <- result
		errChan <- err
	}}()
	select {{
	case r := <-resultChan:
		err = <-errChan
		consumeRisk(r)
	case <-ctx.Done():
		consumeRisk(0)
	}}
	cancel()
	return err
}}

func {eval}() (int, error) {{
	total := 0
	for i := 0; i < 25; i++ {{
		total += i
	}}
	return total, nil
}}

func consumeRisk(v int) {{}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
            )
        }
    };
    let file = ("risk.go".to_owned(), make(true));
    let fix = vec![("risk.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::CaptureByReference,
        vec![file],
        test,
        Some(fix),
    )
}

/// Listing 6: wg.Add inside the goroutine.
fn wg_add_inside(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let var = n.var();
    let workers = n.small(3, 5);
    let make = |racy: bool| {
        let (before, inside) = if racy {
            ("", "\t\t\twg.Add(1)\n")
        } else {
            ("\t\twg.Add(1)\n", "")
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: {var}
func {func}() int {{
	{var} := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < {workers}; i++ {{
{before}		go func(pod int) {{
{inside}			defer wg.Done()
			mu.Lock()
			{var}[pod] = pod
			mu.Unlock()
		}}(i)
	}}
	wg.Wait()
	total := 0
	for k := range {var} {{
		total += k
	}}
	return total
}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
        )
    };
    let file = ("replicas.go".to_owned(), make(true));
    let fix = vec![("replicas.go".to_owned(), make(false))];
    case(idx, RaceCategory::MissingSync, vec![file], test, Some(fix))
}

/// An unprotected shared counter behind struct methods: the fix (an
/// atomic or a mutex field) needs the type declaration — file scope.
fn counter_unprotected(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let test = n.test();
    let workers = n.small(3, 5);
    let make = |racy: bool| {
        let (fields, inc, read) = if racy {
            (
                "\ttally int".to_owned(),
                "\tc.tally = c.tally + by\n".to_owned(),
                "\treturn c.tally\n".to_owned(),
            )
        } else {
            (
                "\ttally int\n\tmuTally sync.Mutex".to_owned(),
                "\tc.muTally.Lock()\n\tc.tally = c.tally + by\n\tc.muTally.Unlock()\n".to_owned(),
                "\tc.muTally.Lock()\n\tv := c.tally\n\tc.muTally.Unlock()\n\treturn v\n".to_owned(),
            )
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: tally
type {ty} struct {{
{fields}
}}

func (c *{ty}) bump(by int) {{
{inc}}}

func (c *{ty}) total() int {{
{read}}}

func {test}(t *testing.T) {{
	c := &{ty}{{}}
	var wg sync.WaitGroup
	for i := 0; i < {workers}; i++ {{
		wg.Add(1)
		go func(by int) {{
			defer wg.Done()
			c.bump(by)
		}}(i)
	}}
	wg.Wait()
	if c.total() < 0 {{
		t.Errorf("impossible total")
	}}
}}
"#
        )
    };
    let file = ("counter.go".to_owned(), make(true));
    let fix = vec![("counter.go".to_owned(), make(false))];
    case(idx, RaceCategory::MissingSync, vec![file], test, Some(fix))
}

/// A struct-field gauge written by methods where one method forgot the
/// lock — the repair adds a guarding mutex field (file scope).
fn partial_lock(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let test = n.test();
    let make = |racy: bool| {
        let (fields, hot) = if racy {
            (
                "\tgauge int\n\tmu sync.Mutex".to_owned(),
                "\tc.gauge = c.gauge * 2\n".to_owned(),
            )
        } else {
            (
                "\tgauge int\n\tmu sync.Mutex".to_owned(),
                "\tc.mu.Lock()\n\tc.gauge = c.gauge * 2\n\tc.mu.Unlock()\n".to_owned(),
            )
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: gauge
type {ty} struct {{
{fields}
}}

func (c *{ty}) slowPath() {{
	c.mu.Lock()
	c.gauge = c.gauge + 3
	c.mu.Unlock()
}}

func (c *{ty}) hotPath() {{
{hot}}}

func {test}(t *testing.T) {{
	c := &{ty}{{}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		c.slowPath()
	}}()
	go func() {{
		defer wg.Done()
		c.hotPath()
	}}()
	wg.Wait()
}}
"#
        )
    };
    let file = ("ledger.go".to_owned(), make(true));
    let fix = vec![("ledger.go".to_owned(), make(false))];
    case(idx, RaceCategory::MissingSync, vec![file], test, Some(fix))
}

/// Listing 7: parallel table test sharing one hash object.
fn table_test(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let test = n.test();
    let var = n.var();
    let make = |racy: bool| {
        let (decl, use1, use2) = if racy {
            (format!("\t{var} := md5.New()\n"), var.clone(), var.clone())
        } else {
            (
                String::new(),
                "md5.New()".to_owned(),
                "md5.New()".to_owned(),
            )
        };
        format!(
            r#"package app

import (
	"crypto/md5"
	"testing"
)

// racy: {var}
func {test}(t *testing.T) {{
{decl}	tests := []struct {{
		name string
		hash interface{{}}
	}}{{
		{{name: "first", hash: {use1}}},
		{{name: "second", hash: {use2}}},
	}}
	for _, tt := range tests {{
		tt := tt
		t.Run(tt.name, func(t *testing.T) {{
			t.Parallel()
			digestCase(tt.hash, tt.name)
		}})
	}}
}}

func digestCase(h interface{{}}, name string) {{
	w := h.(interface{{}})
	_ = w
	hashWrite(h, name)
}}

func hashWrite(h interface{{}}, s string) {{
	hw := h
	_ = hw
	writeTo(h, s)
}}
"#
        ) + "\nfunc writeTo(h interface{}, s string) {\n\thh := h.(hash.Hash)\n\t_ = hh\n}\n"
    };
    // The type-assertion helper chain above is noise; the real write goes
    // through the md5 native. Simplify: direct Write call.
    let make2 = |racy: bool| {
        let (decl, use1, use2) = if racy {
            (format!("\t{var} := md5.New()\n"), var.clone(), var.clone())
        } else {
            (
                String::new(),
                "md5.New()".to_owned(),
                "md5.New()".to_owned(),
            )
        };
        format!(
            r#"package app

import (
	"crypto/md5"
	"testing"
)

// racy: {var}
func {test}(t *testing.T) {{
{decl}	tests := []struct {{
		name string
		hash interface{{}}
	}}{{
		{{name: "first", hash: {use1}}},
		{{name: "second", hash: {use2}}},
	}}
	for _, tt := range tests {{
		tt := tt
		t.Run(tt.name, func(t *testing.T) {{
			t.Parallel()
			tt.hash.Write(tt.name)
		}})
	}}
}}
"#
        )
    };
    let _ = make;
    let file = ("upload_test.go".to_owned(), make2(true));
    let fix = vec![("upload_test.go".to_owned(), make2(false))];
    case(idx, RaceCategory::ParallelTest, vec![file], test, Some(fix))
}

/// Listing 11: the classic loop-variable capture.
fn loop_var(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let var = "item".to_owned();
    let count = n.small(3, 6);
    let filler_n = n.small(0, 2) as usize;
    let filler = n.filler(filler_n, "\t");
    let make = |racy: bool| {
        let rebind = if racy {
            String::new()
        } else {
            format!("\t\t{var} := {var}\n")
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: {var}
func {func}() {{
	rows := make([]int, {count})
{filler}	var wg sync.WaitGroup
	for _, {var} := range rows {{
{rebind}		wg.Add(1)
		go func() {{
			defer wg.Done()
			consumeRow({var})
		}}()
	}}
	wg.Wait()
}}

func consumeRow(v int) {{}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
        )
    };
    let file = ("rows.go".to_owned(), make(true));
    let fix = vec![("rows.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::LoopVarCapture,
        vec![file],
        test,
        Some(fix),
    )
}

/// Concurrent writes to a local built-in map.
fn local_map(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let var = n.var();
    let workers = n.small(3, 4);
    let make = |racy: bool| {
        if racy {
            format!(
                r#"package app

import (
	"sync"
	"testing"
)

// racy: {var}
func {func}() {{
	{var} := make(map[int]int)
	var wg sync.WaitGroup
	for i := 0; i < {workers}; i++ {{
		wg.Add(1)
		go func(pod int) {{
			defer wg.Done()
			{var}[pod] = pod
		}}(i)
	}}
	wg.Wait()
}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
            )
        } else {
            format!(
                r#"package app

import (
	"sync"
	"testing"
)

func {func}() {{
	var {var} sync.Map
	var wg sync.WaitGroup
	for i := 0; i < {workers}; i++ {{
		wg.Add(1)
		go func(pod int) {{
			defer wg.Done()
			{var}.Store(pod, pod)
		}}(i)
	}}
	wg.Wait()
}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
            )
        }
    };
    let file = ("shards.go".to_owned(), make(true));
    let fix = vec![("shards.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::ConcurrentMap,
        vec![file],
        test,
        Some(fix),
    )
}

/// Listing 8 shape: a struct-field map mutated by concurrent methods.
fn field_map(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let test = n.test();
    let field = "lockMap".to_owned();
    let make = |racy: bool| {
        if racy {
            format!(
                r#"package app

import (
	"sync"
	"testing"
)

// racy: {field}
type {ty} struct {{
	{field} map[int]int
}}

func (t *{ty}) refresh(keys []int) {{
	for _, k := range keys {{
		t.{field}[k] = k
	}}
}}

func (t *{ty}) cleanup(keep int) {{
	for k := range t.{field} {{
		if k > keep {{
			delete(t.{field}, k)
		}}
	}}
}}

func {test}(t *testing.T) {{
	s := &{ty}{{{field}: map[int]int{{1: 1, 9: 9}}}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		s.refresh([]int{{2, 3}})
	}}()
	go func() {{
		defer wg.Done()
		s.cleanup(5)
	}}()
	wg.Wait()
}}
"#
            )
        } else {
            format!(
                r#"package app

import (
	"sync"
	"testing"
)

type {ty} struct {{
	{field} sync.Map
}}

func (t *{ty}) refresh(keys []int) {{
	for _, k := range keys {{
		t.{field}.Store(k, k)
	}}
}}

func (t *{ty}) cleanup(keep int) {{
	t.{field}.Range(func(key, value interface{{}}) bool {{
		if key.(int) > keep {{
			t.{field}.Delete(key)
		}}
		return true
	}})
}}

func {test}(t *testing.T) {{
	s := &{ty}{{}}
	s.refresh([]int{{1, 9}})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		s.refresh([]int{{2, 3}})
	}}()
	go func() {{
		defer wg.Done()
		s.cleanup(5)
	}}()
	wg.Wait()
}}
"#
            )
        }
    };
    let file = ("scanner.go".to_owned(), make(true));
    let fix = vec![("scanner.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::ConcurrentMap,
        vec![file],
        test,
        Some(fix),
    )
}

/// Listing 9 shape: append racing with indexing.
fn slice_append(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let var = n.var();
    let make = |racy: bool| {
        let (decl, w, r) = if racy {
            (
                String::new(),
                format!("\t\t{var} = append({var}, 4)\n"),
                format!("\t\tconsumeSlice({var}[0])\n"),
            )
        } else {
            (
                format!("\tvar mu{cap} sync.Mutex\n", cap = capitalize(&var)),
                format!(
                    "\t\tmu{cap}.Lock()\n\t\t{var} = append({var}, 4)\n\t\tmu{cap}.Unlock()\n",
                    cap = capitalize(&var)
                ),
                format!(
                    "\t\tmu{cap}.Lock()\n\t\tconsumeSlice({var}[0])\n\t\tmu{cap}.Unlock()\n",
                    cap = capitalize(&var)
                ),
            )
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: {var}
func {func}() {{
	{var} := []int{{1, 2, 3}}
{decl}	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
{w}	}}()
	go func() {{
		defer wg.Done()
{r}	}}()
	wg.Wait()
}}

func consumeSlice(v int) {{}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
        )
    };
    let file = ("channels.go".to_owned(), make(true));
    let fix = vec![("channels.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::ConcurrentSlice,
        vec![file],
        test,
        Some(fix),
    )
}

/// Listing 12: a shared global rand.Source.
fn rand_source(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let seed = n.small(100, 9999);
    let workers = n.small(2, 4);
    let make = |racy: bool| {
        let (global, new) = if racy {
            (
                format!("var responseSource = rand.NewSource({seed})\n\n"),
                "rand.New(responseSource)".to_owned(),
            )
        } else {
            (String::new(), format!("rand.New(rand.NewSource({seed}))"))
        };
        format!(
            r#"package app

import (
	"math/rand"
	"sync"
	"testing"
)

// racy: responseSource
{global}func {func}() {{
	var wg sync.WaitGroup
	for i := 0; i < {workers}; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			random := {new}
			consumeRand(random.Intn(10))
		}}()
	}}
	wg.Wait()
}}

func consumeRand(v int) {{}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
        )
    };
    let file = ("respond.go".to_owned(), make(true));
    let fix = vec![("respond.go".to_owned(), make(false))];
    case(idx, RaceCategory::Other, vec![file], test, Some(fix))
}

/// Listing 22/24 shape: shared config struct mutated by two goroutines.
fn struct_copy(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let func = n.func();
    let test = n.test();
    let make = |racy: bool| {
        let (b1, b2) = if racy {
            (
                "\t\tcfg.Limit = 5\n\t\tsubmitCfg(cfg)\n".to_owned(),
                "\t\tcfg.Limit = 9\n\t\tsubmitCfg(cfg)\n".to_owned(),
            )
        } else {
            (
                "\t\tlocalCfg := *cfg\n\t\tlocalCfg.Limit = 5\n\t\tsubmitCfg(&localCfg)\n"
                    .to_owned(),
                "\t\tlocalCfg := *cfg\n\t\tlocalCfg.Limit = 9\n\t\tsubmitCfg(&localCfg)\n"
                    .to_owned(),
            )
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: cfg
type {ty} struct {{
	Limit int
	Name  string
}}

func {func}() {{
	cfg := &{ty}{{Limit: 1, Name: "base"}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
{b1}	}}()
	go func() {{
		defer wg.Done()
{b2}	}}()
	if cfg.Limit > 99 {{
		wg.Wait()
		return
	}}
	wg.Wait()
}}

func submitCfg(c interface{{}}) {{}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
        )
    };
    let file = ("config.go".to_owned(), make(true));
    let fix = vec![("config.go".to_owned(), make(false))];
    case(idx, RaceCategory::Other, vec![file], test, Some(fix))
}

// ===================================================================
// Ordering-sensitive (schedule hard-tail) templates
// ===================================================================

/// Generates one *ordering-sensitive* fixable case of `cat`.
///
/// Unlike the Table 3 templates — whose races carry no happens-before
/// edge at all, so any schedule exposes them — these races only
/// manifest in schedules where the worker goroutine is starved past a
/// computation window: the test body does `window` instructions of
/// local work and then takes a non-blocking `select`; only when the
/// worker has *not* yet signalled does the default branch touch the
/// shared state concurrently. Uniform-random scheduling rarely starves
/// the short worker that long, which makes these the schedule hard
/// tail that PCT-style priority exploration is built for.
pub fn ordering_sensitive_case(rng: &mut StdRng, cat: RaceCategory, idx: usize) -> RaceCase {
    let mut case = ordering_sensitive_inner(rng, cat, idx);
    let noise = business_noise(rng);
    for (_, src) in &mut case.files {
        src.push_str(&noise);
    }
    if let Some(fix) = &mut case.human_fix {
        for (_, src) in fix {
            src.push_str(&noise);
        }
    }
    case
}

fn ordering_sensitive_inner(rng: &mut StdRng, cat: RaceCategory, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let ready = n.var();
    let acc = n.var();
    let iv = n.var();
    // The starvation window, in loop iterations (~10 instructions each).
    // Short windows let uniform-random scheduling win occasionally (it
    // must starve the worker for only a few quanta); long windows push
    // its expected schedules-to-expose into the hundreds while priority
    // exploration stays flat.
    let window = n.small(1, 8);

    // Per-category flavour: declaration, worker-side op, synchronized
    // op (after the happens-before receive), racy default op, and the
    // return expression.
    let (racy_var, decl, child_op, sync_op, racy_op, ret) = match cat {
        RaceCategory::CaptureByReference => {
            let v = n.var();
            (
                v.clone(),
                format!("\t{v} := 0\n"),
                format!("\t\t{v} = {v} + 2\n"),
                format!("\t\t{v} = {v} + {acc}\n"),
                format!("\t\t{v} = {acc}\n"),
                v.clone(),
            )
        }
        RaceCategory::ConcurrentMap => {
            let v = n.var();
            (
                v.clone(),
                format!("\t{v} := make(map[int]int)\n"),
                format!("\t\t{v}[1] = 2\n"),
                format!("\t\t{v}[2] = {acc}\n"),
                format!("\t\t{v}[3] = {acc}\n"),
                format!("len({v})"),
            )
        }
        RaceCategory::ConcurrentSlice => {
            let v = n.var();
            (
                v.clone(),
                format!("\t{v} := []int{{}}\n"),
                format!("\t\t{v} = append({v}, 1)\n"),
                format!("\t\t{v} = append({v}, {acc})\n"),
                format!("\t\t{v} = append({v}, {acc})\n"),
                format!("len({v})"),
            )
        }
        _ => {
            // MissingSync, ParallelTest, LoopVarCapture and Other share
            // the plain-counter shape; LoopVarCapture additionally
            // spawns the worker from a loop (see below).
            let v = n.var();
            (
                v.clone(),
                format!("\t{v} := 0\n"),
                format!("\t\t{v} = {v} + 7\n"),
                format!("\t\t{v} = {v} + {acc}\n"),
                format!("\t\t{v} = {v} + 1\n"),
                v.clone(),
            )
        }
    };

    // LoopVarCapture keeps the spawn-in-loop shape (single iteration, so
    // the loop variable itself stays race-free — the windowed race below
    // is the one under test).
    let spawn = if cat == RaceCategory::LoopVarCapture {
        let w = n.var();
        format!(
            "\tfor {w} := 0; {w} < 1; {w}++ {{\n\t\tgo func() {{\n\t{child_op}\t\t\t{ready} <- true\n\t\t}}()\n\t}}\n"
        )
    } else {
        format!("\tgo func() {{\n{child_op}\t\t{ready} <- true\n\t}}()\n")
    };

    let make = |racy: bool| {
        let tail = if racy {
            format!("\tselect {{\n\tcase <-{ready}:\n{sync_op}\tdefault:\n{racy_op}\t}}\n")
        } else {
            // Human fix: block on the worker's signal — the receive is
            // the missing happens-before edge.
            format!("\t<-{ready}\n{sync_op}")
        };
        format!(
            r#"package app

import "testing"

// racy: {racy_var}
func {func}() int {{
{decl}	{ready} := make(chan bool, 1)
{spawn}	{acc} := 0
	for {iv} := 0; {iv} < {window}; {iv}++ {{
		{acc} = {acc} + {iv}
	}}
{tail}	return {ret}
}}

func {test}(t *testing.T) {{
	if {func}() < 0 {{
		t.Errorf("impossible result")
	}}
}}
"#
        )
    };
    let file = ("window.go".to_owned(), make(true));
    let fix = vec![("window.go".to_owned(), make(false))];
    case(idx, cat, vec![file], test, Some(fix))
}

// ===================================================================
// Tournament templates: the statically-interesting families
// ===================================================================

/// Generates one tournament-corpus case: the four families cycle by
/// index. These shapes are picked to exercise the tournament arm's
/// repair loop and gate accounting — RWMutex upgrades whose natural
/// mutex patch draws an `inconsistent-lock` warning, double-checked
/// locking whose mutex patch is a structural `double-lock` error,
/// channel-select races over a captured local, and a racy read sitting
/// in a `return` statement (the guard-hoist shape).
pub fn tournament_case(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut case = match idx % 4 {
        0 => rwmutex_upgrade(rng, idx),
        1 => double_checked(rng, idx),
        2 => channel_select(rng, idx),
        _ => return_read(rng, idx),
    };
    let noise = business_noise(rng);
    for (_, src) in &mut case.files {
        src.push_str(&noise);
    }
    if let Some(fix) = &mut case.human_fix {
        for (_, src) in fix {
            src.push_str(&noise);
        }
    }
    case
}

/// RWMutex-upgrade race: a writer takes only the *read* lock, so two
/// recorders race with each other (read locks exclude writers under
/// `Lock`, not each other). The human fix upgrades the writer to the
/// write lock.
fn rwmutex_upgrade(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let test = n.test();
    let make = |racy: bool| {
        let (wl, wu) = if racy {
            ("RLock", "RUnlock")
        } else {
            ("Lock", "Unlock")
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: hits
type {ty} struct {{
	hits int
	mu   sync.RWMutex
}}

func (s *{ty}) record(wg *sync.WaitGroup) {{
	wg.Add(1)
	go func() {{
		defer wg.Done()
		s.mu.{wl}()
		s.hits = s.hits + 1
		s.mu.{wu}()
	}}()
}}

func (s *{ty}) poll(wg *sync.WaitGroup) {{
	wg.Add(1)
	go func() {{
		defer wg.Done()
		s.mu.RLock()
		v := s.hits
		_ = v
		s.mu.RUnlock()
	}}()
}}

func {test}(t *testing.T) {{
	s := &{ty}{{}}
	var wg sync.WaitGroup
	s.record(&wg)
	s.record(&wg)
	s.poll(&wg)
	wg.Wait()
	if s.hits < 0 {{
		t.Errorf("impossible count")
	}}
}}
"#
        )
    };
    let file = ("recorder.go".to_owned(), make(true));
    let fix = vec![("recorder.go".to_owned(), make(false))];
    case(idx, RaceCategory::MissingSync, vec![file], test, Some(fix))
}

/// Double-checked locking over a lazily-built map: the fast-path nil
/// check is outside the mutex, racing the guarded publication in a
/// sibling goroutine. The natural `sync.Map` conversion is statically
/// hazardous here (a botch leaves the `range` reader on the converted
/// field — an error-tier `syncmap-range`), which is exactly the shape
/// the tournament's gate accounting needs. The human fix drops the
/// unguarded fast path.
fn double_checked(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let test = n.test();
    let val = n.small(2, 40);
    let make = |racy: bool| {
        let body = if racy {
            format!(
                "\t\tif b.cache == nil {{\n\t\t\tb.mu.Lock()\n\t\t\tif b.cache == nil {{\n\t\t\t\tm := make(map[int]int)\n\t\t\t\tm[0] = {val}\n\t\t\t\tb.cache = m\n\t\t\t}}\n\t\t\tb.mu.Unlock()\n\t\t}}\n"
            )
        } else {
            format!(
                "\t\tb.mu.Lock()\n\t\tif b.cache == nil {{\n\t\t\tm := make(map[int]int)\n\t\t\tm[0] = {val}\n\t\t\tb.cache = m\n\t\t}}\n\t\tb.mu.Unlock()\n"
            )
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: cache
type {ty} struct {{
	cache map[int]int
	mu    sync.Mutex
}}

func (b *{ty}) warm(wg *sync.WaitGroup) {{
	wg.Add(1)
	go func() {{
		defer wg.Done()
{body}	}}()
}}

func (b *{ty}) sum() int {{
	total := 0
	for _, v := range b.cache {{
		total = total + v
	}}
	return total
}}

func {test}(t *testing.T) {{
	b := &{ty}{{}}
	var wg sync.WaitGroup
	b.warm(&wg)
	b.warm(&wg)
	wg.Wait()
	if b.sum() < 0 {{
		t.Errorf("impossible sum")
	}}
}}
"#
        )
    };
    let file = ("warmer.go".to_owned(), make(true));
    let fix = vec![("warmer.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::ConcurrentMap,
        vec![file],
        test,
        Some(fix),
    )
}

/// Channel-select race: a worker goroutine writes a captured local and
/// signals on one channel, but the selecting reader may wake on the
/// *other* arm and read the local with no happens-before edge. The
/// human fix waits for the writer's channel unconditionally.
fn channel_select(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let func = n.func();
    let test = n.test();
    let v = n.var();
    let k = n.small(2, 50);
    let make = |racy: bool| {
        let wait = if racy {
            "\tselect {\n\tcase <-done:\n\tcase <-tick:\n\t}\n"
        } else {
            "\t<-done\n\t<-tick\n"
        };
        format!(
            r#"package app

import "testing"

// racy: {v}
func {func}() int {{
	{v} := 0
	done := make(chan bool, 1)
	tick := make(chan bool, 1)
	go func() {{
		{v} = {k}
		done <- true
	}}()
	go func() {{
		tick <- true
	}}()
{wait}	return {v}
}}

func {test}(t *testing.T) {{
	if {func}() < 0 {{
		t.Errorf("impossible result")
	}}
}}
"#
        )
    };
    let file = ("selector.go".to_owned(), make(true));
    let fix = vec![("selector.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::CaptureByReference,
        vec![file],
        test,
        Some(fix),
    )
}

/// The racy read sits in a `return` statement: appender goroutines
/// mutate a slice field while the accessor returns its length before
/// the waitgroup settles. Only a strategy that hoists the returned
/// expression into a guarded temporary can cover the read.
fn return_read(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let test = n.test();
    let a = n.small(1, 30);
    let b = n.small(1, 30);
    let make = |racy: bool| {
        let (fields, add, last) = if racy {
            (
                "\tsamples []int".to_owned(),
                "\t\tm.samples = append(m.samples, v)\n".to_owned(),
                "\treturn len(m.samples)\n".to_owned(),
            )
        } else {
            (
                "\tsamples []int\n\tmu      sync.Mutex".to_owned(),
                "\t\tm.mu.Lock()\n\t\tm.samples = append(m.samples, v)\n\t\tm.mu.Unlock()\n"
                    .to_owned(),
                "\tm.mu.Lock()\n\tn := len(m.samples)\n\tm.mu.Unlock()\n\treturn n\n".to_owned(),
            )
        };
        format!(
            r#"package app

import (
	"sync"
	"testing"
)

// racy: samples
type {ty} struct {{
{fields}
}}

func (m *{ty}) add(v int, wg *sync.WaitGroup) {{
	wg.Add(1)
	go func() {{
		defer wg.Done()
{add}	}}()
}}

func (m *{ty}) last() int {{
{last}}}

func {test}(t *testing.T) {{
	m := &{ty}{{}}
	var wg sync.WaitGroup
	m.add({a}, &wg)
	m.add({b}, &wg)
	if m.last() < 0 {{
		t.Errorf("impossible length")
	}}
	wg.Wait()
}}
"#
        )
    };
    let file = ("sampler.go".to_owned(), make(true));
    let fix = vec![("sampler.go".to_owned(), make(false))];
    case(
        idx,
        RaceCategory::ConcurrentSlice,
        vec![file],
        test,
        Some(fix),
    )
}

// ===================================================================
// Hard (Table 5) templates
// ===================================================================

fn hard(
    idx: usize,
    cat: RaceCategory,
    hcat: HardCategory,
    fixable: bool,
    files: Vec<(String, String)>,
    test: String,
) -> RaceCase {
    RaceCase {
        id: format!("race-{idx:04}"),
        category: cat,
        hard: Some(hcat),
        fixable,
        lca_only: false,
        files,
        test,
        human_fix: None,
    }
}

/// The race lives on a global defined in a third file and written from
/// two other files; the pipeline sees at most two files, so any patch
/// leaves one access unsynchronised.
fn third_file_global(rng: &mut StdRng, idx: usize, hcat: HardCategory) -> RaceCase {
    let mut n = NameGen::new(rng);
    let test = n.test();
    let var = n.var();
    let (f1, f2) = (n.func(), n.func());
    let writer = |fname: &str, delta: i64| {
        format!("package app\n\n// racy: {var}\nfunc {fname}() {{\n\t{var} = {var} + {delta}\n}}\n")
    };
    let state = format!("package app\n\nvar {var} = 0\n");
    let driver = format!(
        r#"package app

import (
	"sync"
	"testing"
)

func {test}(t *testing.T) {{
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		{f1}()
	}}()
	go func() {{
		defer wg.Done()
		{f2}()
	}}()
	wg.Wait()
}}
"#
    );
    hard(
        idx,
        RaceCategory::MissingSync,
        hcat,
        false,
        vec![
            ("writer_a.go".to_owned(), writer(&f1, 1)),
            ("writer_b.go".to_owned(), writer(&f2, 2)),
            ("state.go".to_owned(), state),
            ("driver_test.go".to_owned(), driver),
        ],
        test,
    )
}

/// Aliased pointers plus a racy read inside a `return` statement: no
/// strategy in the library covers it (the human fix removes the
/// parallelism or restructures the logic).
fn alias_return_race(rng: &mut StdRng, idx: usize, hcat: HardCategory) -> RaceCase {
    let mut n = NameGen::new(rng);
    let ty = n.ty();
    let func = n.func();
    let test = n.test();
    let src = format!(
        r#"package app

import (
	"sync"
	"testing"
)

// racy: n
type {ty} struct {{
	n int
}}

func {func}() int {{
	p := &{ty}{{n: 1}}
	q := p
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {{
		defer wg.Done()
		p.n = p.n + 1
	}}()
	if q.n > 50 {{
		wg.Wait()
		return q.n
	}}
	wg.Wait()
	return q.n + 1
}}

func {test}(t *testing.T) {{
	{func}()
}}
"#
    );
    hard(
        idx,
        RaceCategory::MissingSync,
        hcat,
        false,
        vec![("alias.go".to_owned(), src)],
        test,
    )
}

/// The racy write sits in a vendor file the pipeline refuses to modify.
fn vendor_race(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut n = NameGen::new(rng);
    let test = n.test();
    let var = n.var();
    let vendor = format!(
        "package app\n\n// racy: {var}\nvar {var} = 0\n\nfunc VendorTouch(delta int) {{\n\t{var} = {var} + delta\n}}\n"
    );
    let driver = format!(
        r#"package app

import (
	"sync"
	"testing"
)

func {test}(t *testing.T) {{
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		VendorTouch(1)
	}}()
	go func() {{
		defer wg.Done()
		VendorTouch(2)
	}}()
	wg.Wait()
}}
"#
    );
    hard(
        idx,
        RaceCategory::MissingSync,
        HardCategory::External,
        false,
        vec![
            ("vendor_metrics.go".to_owned(), vendor),
            ("driver_test.go".to_owned(), driver),
        ],
        test,
    )
}

/// Hard-but-strategy-fixable: a struct copy that only strong models
/// assemble (DeepCopy row of Table 5; contributes to the o1 gap, §5.4).
fn hard_struct_copy(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut c = struct_copy(rng, idx);
    c.hard = Some(HardCategory::DeepCopy);
    // Keep fixable: the StructCopy strategy covers it, but its skill is
    // low below o1-preview.
    c
}

/// Hard-but-strategy-fixable shared-aggregate case (NonTrivialExpert
/// row): only the struct-copy idiom applies, and only strong models
/// assemble it reliably.
fn hard_channel_result(rng: &mut StdRng, idx: usize) -> RaceCase {
    let mut c = struct_copy(rng, idx);
    c.hard = Some(HardCategory::NonTrivialExpert);
    c
}

// ---------------------------------------------------------- large heap
//
// The perf-gate's LargeHeap family: clean (race-free) map/slice-heavy
// programs whose working sets are hundreds of tracked cells, not the
// handful the Table 3 templates touch. They stress the detector's dense
// variable-state array, read-shared promotion at scale, and per-element
// RLock/RUnlock merge-release traffic — the map/slice bottleneck the
// hot-path roadmap called out. Generated deterministically; sizes vary
// per case so campaigns don't all hash alike.

/// Generates one clean large-heap perf program. `idx` cycles the three
/// shapes: slice scan, map churn, mixed slice+map under an RWMutex.
pub fn large_heap_case(rng: &mut StdRng, idx: usize) -> crate::PerfCase {
    match idx % 3 {
        0 => heap_slice_scan(rng, idx),
        1 => heap_map_churn(rng, idx),
        _ => heap_mixed_registry(rng, idx),
    }
}

/// A slice of `n` rows built up front, then scanned in full by every
/// worker (read-shared state across hundreds of cells), with the
/// aggregate guarded by a mutex.
fn heap_slice_scan(rng: &mut StdRng, idx: usize) -> crate::PerfCase {
    let mut g = NameGen::new(rng);
    let func = g.func();
    let test = g.test();
    let rows = g.var();
    let n = 120 + (idx / 3) * 24 + g.small(0, 3) as usize * 8;
    let workers = 2 + idx % 2;
    let expected = workers * (n * (n - 1) / 2);
    let src = format!(
        r#"package perf

import (
	"sync"
	"testing"
)

func {func}() int {{
	{rows} := []int{{}}
	for i := 0; i < {n}; i++ {{
		{rows} = append({rows}, i)
	}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0
	for w := 0; w < {workers}; w++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			sum := 0
			for i := 0; i < len({rows}); i++ {{
				sum = sum + {rows}[i]
			}}
			mu.Lock()
			total = total + sum
			mu.Unlock()
		}}()
	}}
	wg.Wait()
	return total
}}

func {test}(t *testing.T) {{
	if {func}() != {expected} {{
		t.Errorf("bad scan total")
	}}
}}
"#
    );
    crate::PerfCase {
        id: format!("heap-slice-{idx:02}"),
        files: vec![("scan.go".to_owned(), src)],
        test,
    }
}

/// Workers populate disjoint key ranges of one map under a mutex, then
/// the main goroutine ranges over every entry.
fn heap_map_churn(rng: &mut StdRng, idx: usize) -> crate::PerfCase {
    let mut g = NameGen::new(rng);
    let func = g.func();
    let test = g.test();
    let shard = g.var();
    let keys = 48 + (idx / 3) * 12 + g.small(0, 2) as usize * 6;
    let workers = 2 + idx % 2;
    let expected = workers * keys;
    let src = format!(
        r#"package perf

import (
	"sync"
	"testing"
)

func {func}() int {{
	{shard} := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < {workers}; w++ {{
		wg.Add(1)
		go func(base int) {{
			defer wg.Done()
			for i := 0; i < {keys}; i++ {{
				mu.Lock()
				{shard}[base*{keys}+i] = i
				mu.Unlock()
			}}
		}}(w)
	}}
	wg.Wait()
	n := 0
	for k := range {shard} {{
		if {shard}[k] >= 0 {{
			n = n + 1
		}}
	}}
	return n
}}

func {test}(t *testing.T) {{
	if {func}() != {expected} {{
		t.Errorf("lost map entries")
	}}
}}
"#
    );
    crate::PerfCase {
        id: format!("heap-map-{idx:02}"),
        files: vec![("churn.go".to_owned(), src)],
        test,
    }
}

/// A map and a slice read element-by-element under `RLock` (per-element
/// merge-release traffic) with the aggregate under the write lock.
fn heap_mixed_registry(rng: &mut StdRng, idx: usize) -> crate::PerfCase {
    let mut g = NameGen::new(rng);
    let func = g.func();
    let test = g.test();
    let index = g.var();
    let log = g.var();
    let keys = 40 + (idx / 3) * 10 + g.small(0, 2) as usize * 5;
    let workers = 2 + idx % 2;
    let expected = workers * keys * (keys - 1);
    let src = format!(
        r#"package perf

import (
	"sync"
	"testing"
)

func {func}() int {{
	{index} := make(map[int]int)
	{log} := []int{{}}
	for i := 0; i < {keys}; i++ {{
		{index}[i] = i
		{log} = append({log}, i)
	}}
	var mu sync.RWMutex
	var wg sync.WaitGroup
	seen := 0
	for w := 0; w < {workers}; w++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			local := 0
			for i := 0; i < len({log}); i++ {{
				mu.RLock()
				local = local + {log}[i] + {index}[i]
				mu.RUnlock()
			}}
			mu.Lock()
			seen = seen + local
			mu.Unlock()
		}}()
	}}
	wg.Wait()
	return seen
}}

func {test}(t *testing.T) {{
	if {func}() != {expected} {{
		t.Errorf("bad registry sweep")
	}}
}}
"#
    );
    crate::PerfCase {
        id: format!("heap-mixed-{idx:02}"),
        files: vec![("registry.go".to_owned(), src)],
        test,
    }
}

// --------------------------------------------------------------- churn
// Long-lived-program workloads for the shadow-state lifecycle: the
// LargeHeap family grows one working set and keeps it; these programs
// *churn* — goroutines and heap cells die and are replaced continuously,
// generation after generation, so a streaming detector has something
// real to collect. Every program is clean (no planted race): the point
// is bounded shadow memory, proven by the soak test, with GC-on/off
// bit-identity pinned by the golden layer.

/// Generates one clean churn perf program. `idx` alternates the two
/// shapes: wait-grouped worker generations over fresh buffers, and
/// sequential short-lived sessions over fresh private maps.
pub fn churn_case(rng: &mut StdRng, idx: usize) -> crate::PerfCase {
    match idx % 2 {
        0 => churn_generations(
            rng,
            format!("churn-gen-{idx:02}"),
            6 + (idx / 2) * 2,
            2 + idx % 2,
            8,
        ),
        _ => churn_sessions(rng, format!("churn-sess-{idx:02}"), 8 + (idx / 2) * 2, 10),
    }
}

/// The scalable generation shape behind the streaming soak test:
/// `gens` generations, each allocating a fresh `workers * seg` buffer,
/// doubling it in `workers` wait-grouped goroutines and folding the
/// checksum under a mutex. Worker exits are ordered before the next
/// spawn wave (via `wg.Wait`), so with the lifecycle on, clock slots
/// recycle and dead buffers collect; off, both grow with `gens`.
pub fn churn_soak_case(gens: usize, workers: usize, seg: usize) -> crate::PerfCase {
    let mut rng = StdRng::seed_from_u64(0xC0AC ^ gens as u64);
    churn_generations(&mut rng, format!("churn-soak-{gens}"), gens, workers, seg)
}

fn churn_generations(
    rng: &mut StdRng,
    id: String,
    gens: usize,
    workers: usize,
    seg: usize,
) -> crate::PerfCase {
    let mut g = NameGen::new(rng);
    let func = g.func();
    let test = g.test();
    let buf = g.var();
    let cells = workers * seg;
    // Each generation doubles buf[i] = g+i and sums: per-gen checksum
    // is 2*(cells*g + cells*(cells-1)/2).
    let expected: usize = (0..gens)
        .map(|gen| 2 * (cells * gen + cells * (cells - 1) / 2))
        .sum();
    let src = format!(
        r#"package perf

import (
	"sync"
	"testing"
)

func {func}() int {{
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < {gens}; g++ {{
		{buf} := []int{{}}
		for i := 0; i < {cells}; i++ {{
			{buf} = append({buf}, g+i)
		}}
		for w := 0; w < {workers}; w++ {{
			wg.Add(1)
			go func(base int) {{
				defer wg.Done()
				sum := 0
				for i := base * {seg}; i < base*{seg}+{seg}; i++ {{
					{buf}[i] = {buf}[i] * 2
					sum = sum + {buf}[i]
				}}
				mu.Lock()
				total = total + sum
				mu.Unlock()
			}}(w)
		}}
		wg.Wait()
	}}
	return total
}}

func {test}(t *testing.T) {{
	if {func}() != {expected} {{
		t.Errorf("bad churn total")
	}}
}}
"#
    );
    crate::PerfCase {
        id,
        files: vec![("churn_gen.go".to_owned(), src)],
        test,
    }
}

/// Sequential short-lived sessions: each goroutine builds a private
/// map (fresh heap cells every session), folds it, and hands the sum
/// back over a channel before exiting. The receive orders each exit
/// before the next spawn, so one clock slot serves every session.
fn churn_sessions(rng: &mut StdRng, id: String, sessions: usize, keys: usize) -> crate::PerfCase {
    let mut g = NameGen::new(rng);
    let func = g.func();
    let test = g.test();
    let out = g.var();
    let expected: usize = (0..sessions)
        .map(|s| keys * s + keys * (keys - 1) / 2)
        .sum();
    let src = format!(
        r#"package perf

import (
	"testing"
)

func {func}() int {{
	{out} := make(chan int, 1)
	total := 0
	for s := 0; s < {sessions}; s++ {{
		go func(id int) {{
			m := make(map[int]int)
			for i := 0; i < {keys}; i++ {{
				m[i] = id + i
			}}
			sum := 0
			for k := range m {{
				sum = sum + m[k]
			}}
			{out} <- sum
		}}(s)
		total = total + <-{out}
	}}
	return total
}}

func {test}(t *testing.T) {{
	if {func}() != {expected} {{
		t.Errorf("lost session results")
	}}
}}
"#
    );
    crate::PerfCase {
        id,
        files: vec![("churn_sess.go".to_owned(), src)],
        test,
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}
