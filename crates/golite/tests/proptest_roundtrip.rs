//! Property test: generated programs round-trip through print→parse.

use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,6}".prop_filter("not a keyword", |s| {
        golite::token::TokenKind::keyword(s).is_none()
            && !matches!(
                s.as_str(),
                "true"
                    | "false"
                    | "nil"
                    | "make"
                    | "new"
                    | "len"
                    | "append"
                    | "delete"
                    | "close"
                    | "panic"
                    | "copy"
                    | "cap"
                    | "int"
                    | "string"
                    | "bool"
            )
    })
}

fn stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        (ident(), 0i64..100).prop_map(|(v, k)| format!("{v} := {k}\n\t_ = {v}")),
        (ident(), ident()).prop_map(|(a, b)| format!("{a} := 1\n\t{b} := {a} + 2\n\t_ = {b}")),
        (ident(), 1i64..5).prop_map(|(v, n)| {
            format!("{v} := 0\n\tfor i := 0; i < {n}; i++ {{\n\t\t{v} = {v} + i\n\t}}\n\t_ = {v}")
        }),
        (ident(), 0i64..10).prop_map(|(v, k)| {
            format!("{v} := {k}\n\tif {v} > 2 {{\n\t\t{v} = {v} - 1\n\t}} else {{\n\t\t{v} = {v} + 1\n\t}}\n\t_ = {v}")
        }),
        ident().prop_map(|v| {
            format!("{v} := make(chan int, 1)\n\t{v} <- 9\n\t<-{v}")
        }),
        ident().prop_map(|v| {
            format!("{v} := []int{{1, 2, 3}}\n\t{v} = append({v}, 4)\n\t_ = {v}[0]")
        }),
        ident().prop_map(|v| {
            format!("{v} := map[string]int{{\"k\": 1}}\n\tdelete({v}, \"k\")\n\t_ = len({v})")
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn print_parse_is_identity_on_printed_form(stmts in proptest::collection::vec(stmt(), 1..6)) {
        let body: Vec<String> = stmts.iter().map(|s| format!("\t{s}")).collect();
        let src = format!("package p\n\nfunc generated() {{\n{}\n}}\n", body.join("\n"));
        let f1 = golite::parse_file(&src).expect("generated program parses");
        let printed1 = golite::print_file(&f1);
        let f2 = golite::parse_file(&printed1).expect("printed program reparses");
        let printed2 = golite::print_file(&f2);
        prop_assert_eq!(printed1, printed2, "print∘parse must be idempotent");
    }
}
