//! Token kinds for the Go subset.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A lexical token kind.
#[allow(missing_docs)] // operator/keyword variants are self-describing
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An identifier such as `foo` or `WaitGroup`.
    Ident,
    /// An integer literal.
    Int,
    /// A floating-point literal.
    Float,
    /// An interpreted string literal (double-quoted) or raw (backquoted).
    Str,
    /// A rune literal such as `'a'`.
    Rune,

    // Keywords (Go subset).
    Break,
    Case,
    Chan,
    Const,
    Continue,
    Default,
    Defer,
    Else,
    For,
    Func,
    Go,
    If,
    Import,
    Interface,
    Map,
    Package,
    Range,
    Return,
    Select,
    Struct,
    Switch,
    Type,
    Var,
    Fallthrough,
    Goto,

    // Operators and delimiters.
    Plus,          // +
    Minus,         // -
    Star,          // *
    Slash,         // /
    Percent,       // %
    Amp,           // &
    Pipe,          // |
    Caret,         // ^
    Shl,           // <<
    Shr,           // >>
    AndAnd,        // &&
    OrOr,          // ||
    Arrow,         // <-
    PlusPlus,      // ++
    MinusMinus,    // --
    EqEq,          // ==
    Lt,            // <
    Gt,            // >
    Assign,        // =
    Not,           // !
    NotEq,         // !=
    LtEq,          // <=
    GtEq,          // >=
    Define,        // :=
    Ellipsis,      // ...
    LParen,        // (
    LBracket,      // [
    LBrace,        // {
    Comma,         // ,
    Dot,           // .
    RParen,        // )
    RBracket,      // ]
    RBrace,        // }
    Semi,          // ; (explicit or auto-inserted)
    Colon,         // :
    PlusAssign,    // +=
    MinusAssign,   // -=
    StarAssign,    // *=
    SlashAssign,   // /=
    PercentAssign, // %=
    AmpAssign,     // &=
    PipeAssign,    // |=

    /// End of file.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `s`, if `s` is a keyword.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match s {
            "break" => Break,
            "case" => Case,
            "chan" => Chan,
            "const" => Const,
            "continue" => Continue,
            "default" => Default,
            "defer" => Defer,
            "else" => Else,
            "for" => For,
            "func" => Func,
            "go" => Go,
            "if" => If,
            "import" => Import,
            "interface" => Interface,
            "map" => Map,
            "package" => Package,
            "range" => Range,
            "return" => Return,
            "select" => Select,
            "struct" => Struct,
            "switch" => Switch,
            "type" => Type,
            "var" => Var,
            "fallthrough" => Fallthrough,
            "goto" => Goto,
            _ => return None,
        })
    }

    /// Returns `true` if a newline after this token triggers automatic
    /// semicolon insertion (Go spec rule 1).
    pub fn ends_statement(self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            Ident
                | Int
                | Float
                | Str
                | Rune
                | Break
                | Continue
                | Fallthrough
                | Return
                | PlusPlus
                | MinusMinus
                | RParen
                | RBracket
                | RBrace
        )
    }

    /// Human-readable name used in diagnostics.
    pub fn describe(self) -> &'static str {
        use TokenKind::*;
        match self {
            Ident => "identifier",
            Int => "integer literal",
            Float => "float literal",
            Str => "string literal",
            Rune => "rune literal",
            Break => "`break`",
            Case => "`case`",
            Chan => "`chan`",
            Const => "`const`",
            Continue => "`continue`",
            Default => "`default`",
            Defer => "`defer`",
            Else => "`else`",
            For => "`for`",
            Func => "`func`",
            Go => "`go`",
            If => "`if`",
            Import => "`import`",
            Interface => "`interface`",
            Map => "`map`",
            Package => "`package`",
            Range => "`range`",
            Return => "`return`",
            Select => "`select`",
            Struct => "`struct`",
            Switch => "`switch`",
            Type => "`type`",
            Var => "`var`",
            Fallthrough => "`fallthrough`",
            Goto => "`goto`",
            Plus => "`+`",
            Minus => "`-`",
            Star => "`*`",
            Slash => "`/`",
            Percent => "`%`",
            Amp => "`&`",
            Pipe => "`|`",
            Caret => "`^`",
            Shl => "`<<`",
            Shr => "`>>`",
            AndAnd => "`&&`",
            OrOr => "`||`",
            Arrow => "`<-`",
            PlusPlus => "`++`",
            MinusMinus => "`--`",
            EqEq => "`==`",
            Lt => "`<`",
            Gt => "`>`",
            Assign => "`=`",
            Not => "`!`",
            NotEq => "`!=`",
            LtEq => "`<=`",
            GtEq => "`>=`",
            Define => "`:=`",
            Ellipsis => "`...`",
            LParen => "`(`",
            LBracket => "`[`",
            LBrace => "`{`",
            Comma => "`,`",
            Dot => "`.`",
            RParen => "`)`",
            RBracket => "`]`",
            RBrace => "`}`",
            Semi => "`;`",
            Colon => "`:`",
            PlusAssign => "`+=`",
            MinusAssign => "`-=`",
            StarAssign => "`*=`",
            SlashAssign => "`/=`",
            PercentAssign => "`%=`",
            AmpAssign => "`&=`",
            PipeAssign => "`|=`",
            Eof => "end of file",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// A lexed token: kind plus the byte range it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Source location.
    pub span: crate::span::Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("go"), Some(TokenKind::Go));
        assert_eq!(TokenKind::keyword("select"), Some(TokenKind::Select));
        assert_eq!(TokenKind::keyword("goroutine"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn semicolon_insertion_classes() {
        assert!(TokenKind::Ident.ends_statement());
        assert!(TokenKind::RParen.ends_statement());
        assert!(TokenKind::Return.ends_statement());
        assert!(!TokenKind::Comma.ends_statement());
        assert!(!TokenKind::LBrace.ends_statement());
        assert!(!TokenKind::Plus.ends_statement());
    }
}
