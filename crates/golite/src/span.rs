//! Source positions and spans.
//!
//! Every AST node carries a [`Span`] identifying the byte range it was
//! parsed from. Line/column information is recovered lazily through a
//! [`LineMap`] so the lexer stays allocation-free on the hot path.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[lo, hi)` into a single source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> Self {
        Span { lo, hi }
    }

    /// The empty span at offset zero, used for synthesized nodes.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Returns the smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Returns `true` if this is the dummy/synthesized span.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }

    /// Length of the span in bytes.
    pub fn len(self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Returns `true` when the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A 1-based line/column pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (byte) number.
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column pairs for one source file.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl LineMap {
    /// Builds a line map by scanning `src` once.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// Number of lines in the file (at least 1).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Converts a byte offset to a 1-based line/column pair.
    ///
    /// Offsets past the end of the file are clamped to the last position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Returns the 1-based line number for a byte offset.
    pub fn line(&self, offset: u32) -> u32 {
        self.line_col(offset).line
    }

    /// Returns the byte range `[lo, hi)` covered by a 1-based line number,
    /// or `None` if the line does not exist.
    pub fn line_span(&self, line: u32) -> Option<Span> {
        let idx = line.checked_sub(1)? as usize;
        let lo = *self.line_starts.get(idx)?;
        let hi = self.line_starts.get(idx + 1).copied().unwrap_or(self.len);
        Some(Span::new(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 5).len(), 3);
        assert!(Span::new(4, 4).is_empty());
        assert!(Span::DUMMY.is_dummy());
    }

    #[test]
    fn line_map_basic() {
        let src = "ab\ncd\n\nxyz";
        let lm = LineMap::new(src);
        assert_eq!(lm.line_count(), 4);
        assert_eq!(lm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(lm.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(lm.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(lm.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(lm.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(lm.line_col(9), LineCol { line: 4, col: 3 });
    }

    #[test]
    fn line_map_clamps_past_end() {
        let lm = LineMap::new("a\nb");
        assert_eq!(lm.line_col(999), LineCol { line: 2, col: 2 });
    }

    #[test]
    fn line_span_lookup() {
        let src = "ab\ncd\nxyz";
        let lm = LineMap::new(src);
        assert_eq!(lm.line_span(1), Some(Span::new(0, 3)));
        assert_eq!(lm.line_span(2), Some(Span::new(3, 6)));
        assert_eq!(lm.line_span(3), Some(Span::new(6, 9)));
        assert_eq!(lm.line_span(4), None);
        assert_eq!(lm.line_span(0), None);
    }

    #[test]
    fn empty_file_has_one_line() {
        let lm = LineMap::new("");
        assert_eq!(lm.line_count(), 1);
        assert_eq!(lm.line_col(0), LineCol { line: 1, col: 1 });
    }
}
