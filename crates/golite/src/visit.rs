//! AST walking utilities.
//!
//! Two flavours are provided: read-only traversal via callback closures
//! ([`walk_exprs`], [`walk_stmts`]) used by the skeletonizer and race-
//! pattern diagnosers, and an in-place [`MutVisitor`] used by the fix
//! strategies to rewrite trees.

use crate::ast::*;

/// Calls `f` on every expression in the block, pre-order.
pub fn walk_exprs(block: &Block, f: &mut impl FnMut(&Expr)) {
    for s in &block.stmts {
        walk_stmt_exprs(s, f);
    }
}

/// Calls `f` on every statement in the block (including nested), pre-order.
pub fn walk_stmts(block: &Block, f: &mut impl FnMut(&Stmt)) {
    for s in &block.stmts {
        walk_stmt(s, f);
    }
}

fn walk_stmt(s: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(s);
    match s {
        Stmt::If(st) => {
            if let Some(init) = &st.init {
                walk_stmt(init, f);
            }
            walk_stmts(&st.then, f);
            if let Some(el) = &st.else_ {
                walk_stmt(el, f);
            }
        }
        Stmt::For(st) => {
            if let Some(init) = &st.init {
                walk_stmt(init, f);
            }
            if let Some(post) = &st.post {
                walk_stmt(post, f);
            }
            walk_stmts(&st.body, f);
        }
        Stmt::Range(st) => walk_stmts(&st.body, f),
        Stmt::Switch(st) => {
            if let Some(init) = &st.init {
                walk_stmt(init, f);
            }
            for c in &st.cases {
                for s in &c.body {
                    walk_stmt(s, f);
                }
            }
        }
        Stmt::Select(st) => {
            for c in &st.cases {
                for s in &c.body {
                    walk_stmt(s, f);
                }
            }
        }
        Stmt::Block(b) => walk_stmts(b, f),
        Stmt::Labeled { stmt, .. } => walk_stmt(stmt, f),
        Stmt::Go { call, .. } | Stmt::Defer { call, .. } => {
            // Function-literal bodies inside go/defer are visited too.
            walk_expr_stmts(call, f);
        }
        Stmt::Expr(e) | Stmt::IncDec { expr: e, .. } => walk_expr_stmts(e, f),
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs) {
                walk_expr_stmts(e, f);
            }
        }
        Stmt::ShortVar { values, .. } | Stmt::Return { values, .. } => {
            for e in values {
                walk_expr_stmts(e, f);
            }
        }
        Stmt::Send { chan, value, .. } => {
            walk_expr_stmts(chan, f);
            walk_expr_stmts(value, f);
        }
        Stmt::Decl(v) => {
            for e in &v.values {
                walk_expr_stmts(e, f);
            }
        }
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } => {}
    }
}

/// Visits statements nested inside an expression (function literals).
fn walk_expr_stmts(e: &Expr, f: &mut impl FnMut(&Stmt)) {
    walk_expr(e, &mut |inner| {
        if let Expr::FuncLit { body, .. } = inner {
            walk_stmts(body, f);
        }
    });
}

fn walk_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Decl(v) => {
            for e in &v.values {
                walk_expr(e, f);
            }
        }
        Stmt::ShortVar { values, .. } | Stmt::Return { values, .. } => {
            for e in values {
                walk_expr(e, f);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs) {
                walk_expr(e, f);
            }
        }
        Stmt::IncDec { expr, .. } => walk_expr(expr, f),
        Stmt::Expr(e) => walk_expr(e, f),
        Stmt::Send { chan, value, .. } => {
            walk_expr(chan, f);
            walk_expr(value, f);
        }
        Stmt::Go { call, .. } | Stmt::Defer { call, .. } => walk_expr(call, f),
        Stmt::If(st) => {
            if let Some(init) = &st.init {
                walk_stmt_exprs(init, f);
            }
            walk_expr(&st.cond, f);
            walk_exprs(&st.then, f);
            if let Some(el) = &st.else_ {
                walk_stmt_exprs(el, f);
            }
        }
        Stmt::For(st) => {
            if let Some(init) = &st.init {
                walk_stmt_exprs(init, f);
            }
            if let Some(c) = &st.cond {
                walk_expr(c, f);
            }
            if let Some(post) = &st.post {
                walk_stmt_exprs(post, f);
            }
            walk_exprs(&st.body, f);
        }
        Stmt::Range(st) => {
            if let Some(k) = &st.key {
                walk_expr(k, f);
            }
            if let Some(v) = &st.value {
                walk_expr(v, f);
            }
            walk_expr(&st.expr, f);
            walk_exprs(&st.body, f);
        }
        Stmt::Switch(st) => {
            if let Some(init) = &st.init {
                walk_stmt_exprs(init, f);
            }
            if let Some(tag) = &st.tag {
                walk_expr(tag, f);
            }
            for c in &st.cases {
                for e in &c.exprs {
                    walk_expr(e, f);
                }
                for s in &c.body {
                    walk_stmt_exprs(s, f);
                }
            }
        }
        Stmt::Select(st) => {
            for c in &st.cases {
                match &c.comm {
                    CommClause::Send { chan, value } => {
                        walk_expr(chan, f);
                        walk_expr(value, f);
                    }
                    CommClause::Recv { lhs, chan, .. } => {
                        for e in lhs {
                            walk_expr(e, f);
                        }
                        walk_expr(chan, f);
                    }
                    CommClause::Default => {}
                }
                for s in &c.body {
                    walk_stmt_exprs(s, f);
                }
            }
        }
        Stmt::Block(b) => walk_exprs(b, f),
        Stmt::Labeled { stmt, .. } => walk_stmt_exprs(stmt, f),
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } => {}
    }
}

/// Calls `f` on `e` and every sub-expression, pre-order.
pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::CompositeLit { elems, .. } => {
            for el in elems {
                if let Some(k) = &el.key {
                    walk_expr(k, f);
                }
                walk_expr(&el.value, f);
            }
        }
        Expr::FuncLit { body, .. } => walk_exprs(body, f),
        Expr::Selector { expr, .. }
        | Expr::Paren { expr, .. }
        | Expr::TypeAssert { expr, .. }
        | Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Index { expr, index, .. } => {
            walk_expr(expr, f);
            walk_expr(index, f);
        }
        Expr::SliceExpr { expr, lo, hi, .. } => {
            walk_expr(expr, f);
            if let Some(lo) = lo {
                walk_expr(lo, f);
            }
            if let Some(hi) = hi {
                walk_expr(hi, f);
            }
        }
        Expr::Call { fun, args, .. } => {
            walk_expr(fun, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Make { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Ident { .. }
        | Expr::IntLit { .. }
        | Expr::FloatLit { .. }
        | Expr::StrLit { .. }
        | Expr::RuneLit { .. }
        | Expr::New { .. } => {}
    }
}

/// In-place rewriting visitor. Implement the `visit_*` hooks you need;
/// the default methods recurse. Call the matching `walk_*` inside an
/// override to continue recursion below the rewritten node.
pub trait MutVisitor {
    /// Visits a statement in place.
    fn visit_stmt(&mut self, s: &mut Stmt) {
        self.walk_stmt(s);
    }

    /// Visits an expression in place.
    fn visit_expr(&mut self, e: &mut Expr) {
        self.walk_expr(e);
    }

    /// Visits a block in place.
    fn visit_block(&mut self, b: &mut Block) {
        self.walk_block(b);
    }

    /// Default recursion through a block.
    fn walk_block(&mut self, b: &mut Block) {
        for s in &mut b.stmts {
            self.visit_stmt(s);
        }
    }

    /// Default recursion through a statement.
    fn walk_stmt(&mut self, s: &mut Stmt) {
        match s {
            Stmt::Decl(v) => {
                for e in &mut v.values {
                    self.visit_expr(e);
                }
            }
            Stmt::ShortVar { values, .. } | Stmt::Return { values, .. } => {
                for e in values {
                    self.visit_expr(e);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                for e in lhs.iter_mut().chain(rhs.iter_mut()) {
                    self.visit_expr(e);
                }
            }
            Stmt::IncDec { expr, .. } => self.visit_expr(expr),
            Stmt::Expr(e) => self.visit_expr(e),
            Stmt::Send { chan, value, .. } => {
                self.visit_expr(chan);
                self.visit_expr(value);
            }
            Stmt::Go { call, .. } | Stmt::Defer { call, .. } => self.visit_expr(call),
            Stmt::If(st) => {
                if let Some(init) = &mut st.init {
                    self.visit_stmt(init);
                }
                self.visit_expr(&mut st.cond);
                self.visit_block(&mut st.then);
                if let Some(el) = &mut st.else_ {
                    self.visit_stmt(el);
                }
            }
            Stmt::For(st) => {
                if let Some(init) = &mut st.init {
                    self.visit_stmt(init);
                }
                if let Some(c) = &mut st.cond {
                    self.visit_expr(c);
                }
                if let Some(post) = &mut st.post {
                    self.visit_stmt(post);
                }
                self.visit_block(&mut st.body);
            }
            Stmt::Range(st) => {
                if let Some(k) = &mut st.key {
                    self.visit_expr(k);
                }
                if let Some(v) = &mut st.value {
                    self.visit_expr(v);
                }
                self.visit_expr(&mut st.expr);
                self.visit_block(&mut st.body);
            }
            Stmt::Switch(st) => {
                if let Some(init) = &mut st.init {
                    self.visit_stmt(init);
                }
                if let Some(tag) = &mut st.tag {
                    self.visit_expr(tag);
                }
                for c in &mut st.cases {
                    for e in &mut c.exprs {
                        self.visit_expr(e);
                    }
                    for s in &mut c.body {
                        self.visit_stmt(s);
                    }
                }
            }
            Stmt::Select(st) => {
                for c in &mut st.cases {
                    match &mut c.comm {
                        CommClause::Send { chan, value } => {
                            self.visit_expr(chan);
                            self.visit_expr(value);
                        }
                        CommClause::Recv { lhs, chan, .. } => {
                            for e in lhs {
                                self.visit_expr(e);
                            }
                            self.visit_expr(chan);
                        }
                        CommClause::Default => {}
                    }
                    for s in &mut c.body {
                        self.visit_stmt(s);
                    }
                }
            }
            Stmt::Block(b) => self.visit_block(b),
            Stmt::Labeled { stmt, .. } => self.visit_stmt(stmt),
            Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } => {}
        }
    }

    /// Default recursion through an expression.
    fn walk_expr(&mut self, e: &mut Expr) {
        match e {
            Expr::CompositeLit { elems, .. } => {
                for el in elems {
                    if let Some(k) = &mut el.key {
                        self.visit_expr(k);
                    }
                    self.visit_expr(&mut el.value);
                }
            }
            Expr::FuncLit { body, .. } => self.visit_block(body),
            Expr::Selector { expr, .. }
            | Expr::Paren { expr, .. }
            | Expr::TypeAssert { expr, .. }
            | Expr::Unary { expr, .. } => self.visit_expr(expr),
            Expr::Index { expr, index, .. } => {
                self.visit_expr(expr);
                self.visit_expr(index);
            }
            Expr::SliceExpr { expr, lo, hi, .. } => {
                self.visit_expr(expr);
                if let Some(lo) = lo {
                    self.visit_expr(lo);
                }
                if let Some(hi) = hi {
                    self.visit_expr(hi);
                }
            }
            Expr::Call { fun, args, .. } => {
                self.visit_expr(fun);
                for a in args {
                    self.visit_expr(a);
                }
            }
            Expr::Make { args, .. } => {
                for a in args {
                    self.visit_expr(a);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.visit_expr(lhs);
                self.visit_expr(rhs);
            }
            Expr::Ident { .. }
            | Expr::IntLit { .. }
            | Expr::FloatLit { .. }
            | Expr::StrLit { .. }
            | Expr::RuneLit { .. }
            | Expr::New { .. } => {}
        }
    }
}

/// Renames every occurrence of identifier `from` to `to` within a block
/// (a syntactic rename; shadowing is the caller's concern).
pub struct RenameIdent<'a> {
    /// Name to replace.
    pub from: &'a str,
    /// Replacement name.
    pub to: &'a str,
}

impl MutVisitor for RenameIdent<'_> {
    fn visit_expr(&mut self, e: &mut Expr) {
        if let Expr::Ident { name, .. } = e {
            if name == self.from {
                *name = self.to.to_owned();
            }
        }
        self.walk_expr(e);
    }

    fn visit_stmt(&mut self, s: &mut Stmt) {
        match s {
            Stmt::ShortVar { names, .. } => {
                for n in names {
                    if n == self.from {
                        *n = self.to.to_owned();
                    }
                }
            }
            Stmt::Decl(v) => {
                for n in &mut v.names {
                    if n == self.from {
                        *n = self.to.to_owned();
                    }
                }
            }
            _ => {}
        }
        self.walk_stmt(s);
    }
}

/// Renames a package qualifier: selector bases (`from.X` → `to.X`) and
/// named-type prefixes (`from.T` → `to.T`), including types buried in
/// `make`/`new`/composite literals/type assertions/function signatures.
/// Used when merging two files whose imports bind the same import path
/// under different local names.
pub struct RenamePkg<'a> {
    /// Package qualifier to replace.
    pub from: &'a str,
    /// Replacement qualifier.
    pub to: &'a str,
}

impl RenamePkg<'_> {
    fn rename_type(&self, ty: &mut Type) {
        match ty {
            Type::Named { path, args } => {
                if path.len() > 1 && path[0] == self.from {
                    path[0] = self.to.to_owned();
                }
                for a in args {
                    self.rename_type(a);
                }
            }
            Type::Pointer(t) | Type::Slice(t) => self.rename_type(t),
            Type::Array { elem, .. } => self.rename_type(elem),
            Type::Map { key, value } => {
                self.rename_type(key);
                self.rename_type(value);
            }
            Type::Chan { elem, .. } => self.rename_type(elem),
            Type::Func(sig) => self.rename_sig(sig),
            Type::Struct(fields) => {
                for f in fields {
                    self.rename_type(&mut f.ty);
                }
            }
            Type::Interface(_) => {}
        }
    }

    fn rename_sig(&self, sig: &mut FuncSig) {
        for p in sig.params.iter_mut().chain(sig.results.iter_mut()) {
            self.rename_type(&mut p.ty);
        }
    }

    /// Rewrites qualifiers throughout one top-level declaration.
    pub fn rename_decl(&mut self, d: &mut Decl) {
        match d {
            Decl::Func(f) => {
                if let Some(recv) = &mut f.receiver {
                    self.rename_type(&mut recv.ty);
                }
                self.rename_sig(&mut f.sig);
                if let Some(body) = &mut f.body {
                    self.visit_block(body);
                }
            }
            Decl::Type(t) => self.rename_type(&mut t.ty),
            Decl::Var(v) | Decl::Const(v) => {
                if let Some(ty) = &mut v.ty {
                    self.rename_type(ty);
                }
                for e in &mut v.values {
                    self.visit_expr(e);
                }
            }
        }
    }
}

impl MutVisitor for RenamePkg<'_> {
    fn visit_expr(&mut self, e: &mut Expr) {
        match e {
            Expr::Selector { expr, .. } => {
                if let Expr::Ident { name, .. } = expr.as_mut() {
                    if name == self.from {
                        *name = self.to.to_owned();
                    }
                }
            }
            Expr::Make { ty, .. } | Expr::New { ty, .. } | Expr::TypeAssert { ty, .. } => {
                self.rename_type(ty)
            }
            Expr::CompositeLit { ty: Some(ty), .. } => self.rename_type(ty),
            Expr::FuncLit { sig, .. } => self.rename_sig(sig),
            _ => {}
        }
        self.walk_expr(e);
    }

    fn visit_stmt(&mut self, s: &mut Stmt) {
        if let Stmt::Decl(v) = s {
            if let Some(ty) = &mut v.ty {
                self.rename_type(ty);
            }
        }
        self.walk_stmt(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::printer::print_file;

    #[test]
    fn walk_exprs_counts_idents() {
        let f = parse_file("package p\nfunc f() {\n\tx := a + b\n\tuse(x)\n}\n").unwrap();
        let body = f.find_func("f").unwrap().body.as_ref().unwrap();
        let mut idents = 0;
        walk_exprs(body, &mut |e| {
            if matches!(e, Expr::Ident { .. }) {
                idents += 1;
            }
        });
        // a, b, use, x
        assert_eq!(idents, 4);
    }

    #[test]
    fn walk_stmts_visits_goroutine_bodies() {
        let src = "package p\nfunc f() {\n\tgo func() {\n\t\tinner()\n\t}()\n}\n";
        let f = parse_file(src).unwrap();
        let body = f.find_func("f").unwrap().body.as_ref().unwrap();
        let mut exprs = Vec::new();
        walk_stmts(body, &mut |s| {
            if let Stmt::Expr(Expr::Call { fun, .. }) = s {
                if let Some(name) = fun.as_ident() {
                    exprs.push(name.to_owned());
                }
            }
        });
        assert_eq!(exprs, vec!["inner"]);
    }

    #[test]
    fn rename_pkg_rewrites_selectors_and_types() {
        let src = concat!(
            "package p\n\n",
            "var mu sync.Mutex\n\n",
            "func f(w *sync.WaitGroup) sync.Locker {\n",
            "\tvar local sync.RWMutex\n",
            "\tch := make(chan sync.Mutex, 1)\n",
            "\t_ = ch\n",
            "\tg := sync.Mutex{}\n",
            "\t_ = g\n",
            "\t_ = local\n",
            "\tsync.OnceFunc(func() {})\n",
            "\treturn &mu\n",
            "}\n",
        );
        let mut f = parse_file(src).unwrap();
        let mut r = RenamePkg {
            from: "sync",
            to: "sy",
        };
        for d in &mut f.decls {
            r.rename_decl(d);
        }
        let printed = print_file(&f);
        assert!(!printed.contains("sync."), "qualifier survived:\n{printed}");
        for needle in [
            "var mu sy.Mutex",
            "w *sy.WaitGroup",
            ") sy.Locker",
            "var local sy.RWMutex",
            "make(chan sy.Mutex, 1)",
            "sy.Mutex{}",
            "sy.OnceFunc(",
        ] {
            assert!(printed.contains(needle), "missing `{needle}`:\n{printed}");
        }
    }

    #[test]
    fn rename_ident_rewrites_everywhere() {
        let src = "package p\nfunc f() {\n\tlimit := 1\n\tgo func() {\n\t\tlimit = 2\n\t\tuse(limit)\n\t}()\n}\n";
        let mut f = parse_file(src).unwrap();
        let func = f.find_func_mut("f").unwrap();
        let body = func.body.as_mut().unwrap();
        let mut r = RenameIdent {
            from: "limit",
            to: "localLimit",
        };
        r.visit_block(body);
        let printed = print_file(&f);
        assert!(!printed.contains("\tlimit"));
        assert!(printed.contains("localLimit := 1"));
        assert!(printed.contains("use(localLimit)"));
    }
}
