//! Diagnostics shared by the lexer and parser.

use crate::span::{LineMap, Span};
use std::fmt;

/// A parse/lex diagnostic with a message and source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Location the diagnostic points at.
    pub span: Span,
}

impl Diag {
    /// Creates a diagnostic at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diag {
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with line/column resolved against `src`.
    pub fn render(&self, file: &str, src: &str) -> String {
        let lm = LineMap::new(src);
        let lc = lm.line_col(self.span.lo);
        format!("{file}:{lc}: error: {}", self.message)
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diag {}

/// Convenience alias used throughout the frontend.
pub type Result<T> = std::result::Result<T, Diag>;

/// Severity tier of a static-analysis [`Diagnostic`].
///
/// The split is a soundness contract, not a style choice: `Error` rules
/// are precise enough that a flagged program is guaranteed to fail at
/// runtime (so a patch gate may reject on them), while `Warning` rules
/// are heuristic and must never override a dynamically-clean verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Heuristic finding: reported, never rejects.
    Warning,
    /// Precise finding: the program is statically guaranteed broken.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A structured static-analysis diagnostic: a stable rule id, a severity
/// tier, a human-readable message and the source span it points at.
///
/// Unlike [`Diag`] (which reports frontend failures — the code could not
/// even be parsed), a `Diagnostic` is a finding *about* well-formed
/// code. Messages carry no line/column text: positions live only in
/// `span`, so diagnostics stay stable under re-formatting (the
/// printer→parser round-trip preserves rule + message verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity tier.
    pub severity: Severity,
    /// Stable kebab-case rule id (e.g. `double-lock`).
    pub rule: String,
    /// Human-readable message (lowercase, no trailing punctuation, no
    /// embedded positions).
    pub message: String,
    /// Location the diagnostic points at.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error-tier diagnostic.
    pub fn error(rule: impl Into<String>, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            rule: rule.into(),
            message: message.into(),
            span,
        }
    }

    /// Creates a warning-tier diagnostic.
    pub fn warning(rule: impl Into<String>, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            rule: rule.into(),
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with line/column resolved against `src`,
    /// e.g. `main.go:4:2: error[double-lock]: second Lock of `mu``.
    pub fn render(&self, file: &str, src: &str) -> String {
        let lm = LineMap::new(src);
        let lc = lm.line_col(self.span.lo);
        format!(
            "{file}:{lc}: {}[{}]: {}",
            self.severity, self.rule, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.rule, self.span, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_line_col() {
        let d = Diag::new("unexpected token", Span::new(4, 5));
        let rendered = d.render("main.go", "ab\ncde");
        assert_eq!(rendered, "main.go:2:2: error: unexpected token");
    }

    #[test]
    fn display_is_meaningful() {
        let d = Diag::new("boom", Span::new(1, 2));
        assert_eq!(d.to_string(), "error at 1..2: boom");
    }
}
