//! Diagnostics shared by the lexer and parser.

use crate::span::{LineMap, Span};
use std::fmt;

/// A parse/lex diagnostic with a message and source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Location the diagnostic points at.
    pub span: Span,
}

impl Diag {
    /// Creates a diagnostic at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diag {
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with line/column resolved against `src`.
    pub fn render(&self, file: &str, src: &str) -> String {
        let lm = LineMap::new(src);
        let lc = lm.line_col(self.span.lo);
        format!("{file}:{lc}: error: {}", self.message)
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diag {}

/// Convenience alias used throughout the frontend.
pub type Result<T> = std::result::Result<T, Diag>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_line_col() {
        let d = Diag::new("unexpected token", Span::new(4, 5));
        let rendered = d.render("main.go", "ab\ncde");
        assert_eq!(rendered, "main.go:2:2: error: unexpected token");
    }

    #[test]
    fn display_is_meaningful() {
        let d = Diag::new("boom", Span::new(1, 2));
        assert_eq!(d.to_string(), "error at 1..2: boom");
    }
}
