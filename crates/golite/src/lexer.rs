//! Hand-written lexer with Go-style automatic semicolon insertion.

use crate::diag::{Diag, Result};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Streaming lexer over a source string.
///
/// Implements the two Go semicolon-insertion rules that matter for this
/// subset: a `;` token is synthesized at a newline when the previous token
/// can end a statement, and before `)`/`}` the parser tolerates a missing
/// semicolon.
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    /// Kind of the last real (non-synthesized) token, for semicolon insertion.
    last: Option<TokenKind>,
    /// Pending synthesized semicolon.
    pending_semi: Option<Span>,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            last: None,
            pending_semi: None,
        }
    }

    /// Lexes the whole input into a token vector (terminated by `Eof`).
    ///
    /// # Errors
    ///
    /// Returns a [`Diag`] on unterminated strings/comments or stray bytes.
    pub fn tokenize(src: &'src str) -> Result<Vec<Token>> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    /// Returns the source text of a span.
    pub fn text(&self, span: Span) -> &'src str {
        &self.src[span.lo as usize..span.hi as usize]
    }

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.bytes.get(self.pos + 1).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    /// Skips whitespace and comments; returns `true` if a newline (or a
    /// comment containing one) was crossed.
    fn skip_trivia(&mut self) -> Result<bool> {
        let mut saw_newline = false;
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'\n' => {
                    saw_newline = true;
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.bytes.len() {
                            return Err(Diag::new(
                                "unterminated block comment",
                                Span::new(start as u32, self.bytes.len() as u32),
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        if self.peek() == b'\n' {
                            saw_newline = true;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(saw_newline),
            }
        }
    }

    /// Produces the next token, synthesizing semicolons per Go's rules.
    pub fn next_token(&mut self) -> Result<Token> {
        if let Some(span) = self.pending_semi.take() {
            self.last = Some(TokenKind::Semi);
            return Ok(Token {
                kind: TokenKind::Semi,
                span,
            });
        }

        let newline = self.skip_trivia()?;
        if newline {
            if let Some(prev) = self.last {
                if prev.ends_statement() {
                    self.last = Some(TokenKind::Semi);
                    let here = self.pos as u32;
                    return Ok(Token {
                        kind: TokenKind::Semi,
                        span: Span::new(here, here),
                    });
                }
            }
        }

        let start = self.pos as u32;
        if self.pos >= self.bytes.len() {
            // EOF also triggers semicolon insertion once.
            if let Some(prev) = self.last {
                if prev.ends_statement() {
                    self.last = Some(TokenKind::Semi);
                    return Ok(Token {
                        kind: TokenKind::Semi,
                        span: Span::new(start, start),
                    });
                }
            }
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::new(start, start),
            });
        }

        let b = self.peek();
        let kind = match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => return self.lex_ident(start),
            b'0'..=b'9' => return self.lex_number(start),
            b'.' if self.peek2().is_ascii_digit() => return self.lex_number(start),
            b'"' => return self.lex_string(start, b'"'),
            b'`' => return self.lex_raw_string(start),
            b'\'' => return self.lex_rune(start),
            _ => self.lex_operator(start)?,
        };
        let span = Span::new(start, self.pos as u32);
        self.last = Some(kind);
        Ok(Token { kind, span })
    }

    fn lex_ident(&mut self, start: u32) -> Result<Token> {
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'0'..=b'9') {
            self.pos += 1;
        }
        let span = Span::new(start, self.pos as u32);
        let text = self.text(span);
        let kind = TokenKind::keyword(text).unwrap_or(TokenKind::Ident);
        self.last = Some(kind);
        Ok(Token { kind, span })
    }

    fn lex_number(&mut self, start: u32) -> Result<Token> {
        let mut is_float = false;
        if self.peek() == b'0' && matches!(self.peek2(), b'x' | b'X') {
            self.pos += 2;
            while self.peek().is_ascii_hexdigit() || self.peek() == b'_' {
                self.pos += 1;
            }
        } else {
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                self.pos += 1;
            }
            if self.peek() == b'.' && self.peek2().is_ascii_digit() {
                is_float = true;
                self.pos += 1;
                while self.peek().is_ascii_digit() || self.peek() == b'_' {
                    self.pos += 1;
                }
            } else if self.peek() == b'.'
                && !matches!(self.peek2(), b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'.')
            {
                // `1.` style float (but not `1..` or `1.method`).
                is_float = true;
                self.pos += 1;
            }
            if matches!(self.peek(), b'e' | b'E') {
                let save = self.pos;
                self.pos += 1;
                if matches!(self.peek(), b'+' | b'-') {
                    self.pos += 1;
                }
                if self.peek().is_ascii_digit() {
                    is_float = true;
                    while self.peek().is_ascii_digit() {
                        self.pos += 1;
                    }
                } else {
                    self.pos = save;
                }
            }
        }
        let span = Span::new(start, self.pos as u32);
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.last = Some(kind);
        Ok(Token { kind, span })
    }

    fn lex_string(&mut self, start: u32, quote: u8) -> Result<Token> {
        self.pos += 1; // opening quote
        loop {
            match self.peek() {
                0 | b'\n' => {
                    return Err(Diag::new(
                        "unterminated string literal",
                        Span::new(start, self.pos as u32),
                    ))
                }
                b'\\' => {
                    self.pos += 2;
                }
                b if b == quote => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        let span = Span::new(start, self.pos as u32);
        self.last = Some(TokenKind::Str);
        Ok(Token {
            kind: TokenKind::Str,
            span,
        })
    }

    fn lex_raw_string(&mut self, start: u32) -> Result<Token> {
        self.pos += 1;
        while self.peek() != b'`' {
            if self.pos >= self.bytes.len() {
                return Err(Diag::new(
                    "unterminated raw string literal",
                    Span::new(start, self.pos as u32),
                ));
            }
            self.pos += 1;
        }
        self.pos += 1;
        let span = Span::new(start, self.pos as u32);
        self.last = Some(TokenKind::Str);
        Ok(Token {
            kind: TokenKind::Str,
            span,
        })
    }

    fn lex_rune(&mut self, start: u32) -> Result<Token> {
        self.pos += 1;
        if self.peek() == b'\\' {
            self.pos += 2;
        } else {
            // Skip one (possibly multi-byte) character.
            let rest = &self.src[self.pos..];
            let n = rest.chars().next().map(char::len_utf8).unwrap_or(1);
            self.pos += n;
        }
        if self.peek() != b'\'' {
            return Err(Diag::new(
                "unterminated rune literal",
                Span::new(start, self.pos as u32),
            ));
        }
        self.pos += 1;
        let span = Span::new(start, self.pos as u32);
        self.last = Some(TokenKind::Rune);
        Ok(Token {
            kind: TokenKind::Rune,
            span,
        })
    }

    fn lex_operator(&mut self, start: u32) -> Result<TokenKind> {
        use TokenKind::*;
        let b = self.bump();
        let kind = match b {
            b'+' => match self.peek() {
                b'+' => {
                    self.pos += 1;
                    PlusPlus
                }
                b'=' => {
                    self.pos += 1;
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.pos += 1;
                    MinusMinus
                }
                b'=' => {
                    self.pos += 1;
                    MinusAssign
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    PercentAssign
                } else {
                    Percent
                }
            }
            b'&' => match self.peek() {
                b'&' => {
                    self.pos += 1;
                    AndAnd
                }
                b'=' => {
                    self.pos += 1;
                    AmpAssign
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.pos += 1;
                    OrOr
                }
                b'=' => {
                    self.pos += 1;
                    PipeAssign
                }
                _ => Pipe,
            },
            b'^' => Caret,
            b'<' => match self.peek() {
                b'-' => {
                    self.pos += 1;
                    Arrow
                }
                b'=' => {
                    self.pos += 1;
                    LtEq
                }
                b'<' => {
                    self.pos += 1;
                    Shl
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    GtEq
                }
                b'>' => {
                    self.pos += 1;
                    Shr
                }
                _ => Gt,
            },
            b'=' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    EqEq
                } else {
                    Assign
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    NotEq
                } else {
                    Not
                }
            }
            b':' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Define
                } else {
                    Colon
                }
            }
            b'.' => {
                if self.peek() == b'.' && self.peek2() == b'.' {
                    self.pos += 2;
                    Ellipsis
                } else {
                    Dot
                }
            }
            b'(' => LParen,
            b'[' => LBracket,
            b'{' => LBrace,
            b',' => Comma,
            b')' => RParen,
            b']' => RBracket,
            b'}' => RBrace,
            b';' => Semi,
            _ => {
                return Err(Diag::new(
                    format!("unexpected character `{}`", b as char),
                    Span::new(start, self.pos as u32),
                ))
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        use TokenKind::*;
        assert_eq!(
            kinds("var x = 42"),
            vec![Var, Ident, Assign, Int, Semi, Eof]
        );
    }

    #[test]
    fn auto_semicolon_after_ident_at_newline() {
        use TokenKind::*;
        assert_eq!(
            kinds("x := 1\ny := 2"),
            vec![Ident, Define, Int, Semi, Ident, Define, Int, Semi, Eof]
        );
    }

    #[test]
    fn no_semicolon_after_binary_op() {
        use TokenKind::*;
        assert_eq!(kinds("x +\ny"), vec![Ident, Plus, Ident, Semi, Eof]);
    }

    #[test]
    fn lexes_channel_arrow() {
        use TokenKind::*;
        assert_eq!(kinds("ch <- 1"), vec![Ident, Arrow, Int, Semi, Eof]);
        assert_eq!(kinds("<-ch"), vec![Arrow, Ident, Semi, Eof]);
    }

    #[test]
    fn distinguishes_define_and_colon() {
        use TokenKind::*;
        assert_eq!(kinds("x := 1"), vec![Ident, Define, Int, Semi, Eof]);
        assert_eq!(kinds("case 1:"), vec![Case, Int, Colon, Eof]);
    }

    #[test]
    fn lexes_comments_and_preserves_newline_semicolons() {
        use TokenKind::*;
        assert_eq!(
            kinds("x // trailing\ny"),
            vec![Ident, Semi, Ident, Semi, Eof]
        );
        assert_eq!(kinds("/* block */ x"), vec![Ident, Semi, Eof]);
    }

    #[test]
    fn lexes_strings_and_escapes() {
        use TokenKind::*;
        assert_eq!(kinds(r#""hi \"there\"""#), vec![Str, Semi, Eof]);
        assert_eq!(kinds("`raw\nstring`"), vec![Str, Semi, Eof]);
    }

    #[test]
    fn lexes_numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("1 2.5 1e3 0xff"),
            vec![Int, Float, Float, Int, Semi, Eof]
        );
    }

    #[test]
    fn float_dot_method_not_confused() {
        use TokenKind::*;
        // `1e3` float, but `x.Add` keeps Dot.
        assert_eq!(
            kinds("x.Add(1)"),
            vec![Ident, Dot, Ident, LParen, Int, RParen, Semi, Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::tokenize("\"oops").is_err());
        assert!(Lexer::tokenize("`oops").is_err());
    }

    #[test]
    fn compound_assignment_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("x += 1; y -= 2"),
            vec![
                Ident,
                PlusAssign,
                Int,
                Semi,
                Ident,
                MinusAssign,
                Int,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn ellipsis_and_dots() {
        use TokenKind::*;
        assert_eq!(
            kinds("f(xs...)"),
            vec![Ident, LParen, Ident, Ellipsis, RParen, Semi, Eof]
        );
    }

    #[test]
    fn rune_literals() {
        use TokenKind::*;
        assert_eq!(kinds("'a' '\\n'"), vec![Rune, Rune, Semi, Eof]);
    }

    #[test]
    fn semicolon_inserted_at_eof() {
        use TokenKind::*;
        assert_eq!(kinds("return x"), vec![Return, Ident, Semi, Eof]);
    }

    #[test]
    fn shift_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a << 2 >> 1"),
            vec![Ident, Shl, Int, Shr, Int, Semi, Eof]
        );
    }
}
