//! Pretty-printer: renders an AST back to Go source.
//!
//! The output re-parses to a structurally identical AST (modulo spans),
//! which the round-trip property tests in this crate rely on. Formatting
//! follows `gofmt` conventions: tab indentation, `} else {` on one line,
//! one statement per line.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole file to source text.
pub fn print_file(file: &File) -> String {
    let mut p = Printer::new();
    p.file(file);
    p.out
}

/// Renders a single function declaration.
pub fn print_func(func: &FuncDecl) -> String {
    let mut p = Printer::new();
    p.func_decl(func);
    p.out
}

/// Renders a statement (at indentation zero).
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.out
}

/// Renders an expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr);
    p.out
}

/// Renders a type.
pub fn print_type(ty: &Type) -> String {
    let mut p = Printer::new();
    p.ty(ty);
    p.out
}

/// Renders a type declaration.
pub fn print_type_decl(decl: &TypeDecl) -> String {
    let mut p = Printer::new();
    p.type_decl(decl);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push('\t');
        }
    }

    fn file(&mut self, file: &File) {
        let _ = write!(self.out, "package {}", file.package);
        self.out.push('\n');
        if !file.imports.is_empty() {
            self.out.push('\n');
            if file.imports.len() == 1 {
                let imp = &file.imports[0];
                self.out.push_str("import ");
                if let Some(a) = &imp.alias {
                    let _ = write!(self.out, "{a} ");
                }
                let _ = write!(self.out, "\"{}\"", imp.path);
                self.out.push('\n');
            } else {
                self.out.push_str("import (");
                self.indent += 1;
                for imp in &file.imports {
                    self.nl();
                    if let Some(a) = &imp.alias {
                        let _ = write!(self.out, "{a} ");
                    }
                    let _ = write!(self.out, "\"{}\"", imp.path);
                }
                self.indent -= 1;
                self.nl();
                self.out.push_str(")\n");
            }
        }
        for d in &file.decls {
            self.out.push('\n');
            self.decl(d);
            self.out.push('\n');
        }
    }

    fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Func(f) => self.func_decl(f),
            Decl::Type(t) => self.type_decl(t),
            Decl::Var(v) => {
                self.out.push_str("var ");
                self.var_spec(v);
            }
            Decl::Const(v) => {
                self.out.push_str("const ");
                self.var_spec(v);
            }
        }
    }

    fn type_decl(&mut self, t: &TypeDecl) {
        let _ = write!(self.out, "type {}", t.name);
        self.type_params(&t.type_params);
        self.out.push(' ');
        self.ty(&t.ty);
    }

    fn type_params(&mut self, tps: &[TypeParam]) {
        if tps.is_empty() {
            return;
        }
        self.out.push('[');
        for (i, tp) in tps.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{} {}", tp.name, tp.constraint);
        }
        self.out.push(']');
    }

    fn var_spec(&mut self, v: &VarDecl) {
        self.out.push_str(&v.names.join(", "));
        if let Some(ty) = &v.ty {
            self.out.push(' ');
            self.ty(ty);
        }
        if !v.values.is_empty() {
            self.out.push_str(" = ");
            self.expr_list(&v.values);
        }
    }

    fn func_decl(&mut self, f: &FuncDecl) {
        self.out.push_str("func ");
        if let Some(r) = &f.receiver {
            let _ = write!(self.out, "({} ", r.name);
            self.ty(&r.ty);
            self.out.push_str(") ");
        }
        self.out.push_str(&f.name);
        self.type_params(&f.type_params);
        self.signature(&f.sig);
        if let Some(body) = &f.body {
            self.out.push(' ');
            self.block(body);
        }
    }

    fn signature(&mut self, sig: &FuncSig) {
        self.out.push('(');
        self.params(&sig.params);
        self.out.push(')');
        if sig.results.len() == 1 && sig.results[0].names.is_empty() {
            self.out.push(' ');
            self.ty(&sig.results[0].ty);
        } else if !sig.results.is_empty() {
            self.out.push_str(" (");
            self.params(&sig.results);
            self.out.push(')');
        }
    }

    fn params(&mut self, params: &[Param]) {
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            if !p.names.is_empty() {
                self.out.push_str(&p.names.join(", "));
                self.out.push(' ');
            }
            if p.variadic {
                self.out.push_str("...");
            }
            self.ty(&p.ty);
        }
    }

    fn ty(&mut self, ty: &Type) {
        match ty {
            Type::Named { path, args } => {
                self.out.push_str(&path.join("."));
                if !args.is_empty() {
                    self.out.push('[');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.ty(a);
                    }
                    self.out.push(']');
                }
            }
            Type::Pointer(inner) => {
                self.out.push('*');
                self.ty(inner);
            }
            Type::Slice(inner) => {
                self.out.push_str("[]");
                self.ty(inner);
            }
            Type::Array { len, elem } => {
                self.out.push('[');
                self.expr(len);
                self.out.push(']');
                self.ty(elem);
            }
            Type::Map { key, value } => {
                self.out.push_str("map[");
                self.ty(key);
                self.out.push(']');
                self.ty(value);
            }
            Type::Chan { dir, elem } => {
                match dir {
                    ChanDir::Both => self.out.push_str("chan "),
                    ChanDir::Send => self.out.push_str("chan<- "),
                    ChanDir::Recv => self.out.push_str("<-chan "),
                }
                self.ty(elem);
            }
            Type::Func(sig) => {
                self.out.push_str("func");
                self.signature(sig);
            }
            Type::Struct(fields) => {
                if fields.is_empty() {
                    self.out.push_str("struct{}");
                    return;
                }
                self.out.push_str("struct {");
                self.indent += 1;
                for f in fields {
                    self.nl();
                    if !f.names.is_empty() {
                        self.out.push_str(&f.names.join(", "));
                        self.out.push(' ');
                    }
                    self.ty(&f.ty);
                }
                self.indent -= 1;
                self.nl();
                self.out.push('}');
            }
            Type::Interface(methods) => {
                if methods.is_empty() {
                    self.out.push_str("interface{}");
                } else {
                    self.out.push_str("interface {");
                    self.indent += 1;
                    for m in methods {
                        self.nl();
                        let _ = write!(self.out, "{m}()");
                    }
                    self.indent -= 1;
                    self.nl();
                    self.out.push('}');
                }
            }
        }
    }

    fn block(&mut self, b: &Block) {
        if b.stmts.is_empty() {
            self.out.push_str("{\n");
            for _ in 0..self.indent {
                self.out.push('\t');
            }
            self.out.push('}');
            return;
        }
        self.out.push('{');
        self.indent += 1;
        for s in &b.stmts {
            self.nl();
            self.stmt(s);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(v) => {
                self.out.push_str("var ");
                self.var_spec(v);
            }
            Stmt::ShortVar { names, values, .. } => {
                self.out.push_str(&names.join(", "));
                self.out.push_str(" := ");
                self.expr_list(values);
            }
            Stmt::Assign { lhs, op, rhs, .. } => {
                self.expr_list(lhs);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr_list(rhs);
            }
            Stmt::IncDec { expr, inc, .. } => {
                self.expr(expr);
                self.out.push_str(if *inc { "++" } else { "--" });
            }
            Stmt::Expr(e) => self.expr(e),
            Stmt::Send { chan, value, .. } => {
                self.expr(chan);
                self.out.push_str(" <- ");
                self.expr(value);
            }
            Stmt::Go { call, .. } => {
                self.out.push_str("go ");
                self.expr(call);
            }
            Stmt::Defer { call, .. } => {
                self.out.push_str("defer ");
                self.expr(call);
            }
            Stmt::Return { values, .. } => {
                self.out.push_str("return");
                if !values.is_empty() {
                    self.out.push(' ');
                    self.expr_list(values);
                }
            }
            Stmt::If(st) => self.if_stmt(st),
            Stmt::For(st) => {
                self.out.push_str("for ");
                match (&st.init, &st.cond, &st.post) {
                    (None, None, None) => {}
                    (None, Some(c), None) => {
                        self.expr(c);
                        self.out.push(' ');
                    }
                    _ => {
                        if let Some(init) = &st.init {
                            self.stmt(init);
                        }
                        self.out.push_str("; ");
                        if let Some(c) = &st.cond {
                            self.expr(c);
                        }
                        self.out.push_str("; ");
                        if let Some(post) = &st.post {
                            self.stmt(post);
                            self.out.push(' ');
                        }
                    }
                }
                self.block(&st.body);
            }
            Stmt::Range(st) => {
                self.out.push_str("for ");
                if let Some(k) = &st.key {
                    self.expr(k);
                    if let Some(v) = &st.value {
                        self.out.push_str(", ");
                        self.expr(v);
                    }
                    self.out
                        .push_str(if st.define { " := range " } else { " = range " });
                } else {
                    self.out.push_str("range ");
                }
                self.expr(&st.expr);
                self.out.push(' ');
                self.block(&st.body);
            }
            Stmt::Switch(st) => {
                self.out.push_str("switch ");
                if let Some(init) = &st.init {
                    self.stmt(init);
                    self.out.push_str("; ");
                }
                if let Some(tag) = &st.tag {
                    self.expr(tag);
                    self.out.push(' ');
                }
                self.out.push('{');
                for c in &st.cases {
                    self.nl();
                    if c.exprs.is_empty() {
                        self.out.push_str("default:");
                    } else {
                        self.out.push_str("case ");
                        self.expr_list(&c.exprs);
                        self.out.push(':');
                    }
                    self.indent += 1;
                    for s in &c.body {
                        self.nl();
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.nl();
                self.out.push('}');
            }
            Stmt::Select(st) => {
                self.out.push_str("select {");
                for c in &st.cases {
                    self.nl();
                    match &c.comm {
                        CommClause::Send { chan, value } => {
                            self.out.push_str("case ");
                            self.expr(chan);
                            self.out.push_str(" <- ");
                            self.expr(value);
                            self.out.push(':');
                        }
                        CommClause::Recv { lhs, define, chan } => {
                            self.out.push_str("case ");
                            if !lhs.is_empty() {
                                self.expr_list(lhs);
                                self.out.push_str(if *define { " := " } else { " = " });
                            }
                            self.out.push_str("<-");
                            self.expr(chan);
                            self.out.push(':');
                        }
                        CommClause::Default => self.out.push_str("default:"),
                    }
                    self.indent += 1;
                    for s in &c.body {
                        self.nl();
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.nl();
                self.out.push('}');
            }
            Stmt::Block(b) => self.block(b),
            Stmt::Break { label, .. } => {
                self.out.push_str("break");
                if let Some(l) = label {
                    let _ = write!(self.out, " {l}");
                }
            }
            Stmt::Continue { label, .. } => {
                self.out.push_str("continue");
                if let Some(l) = label {
                    let _ = write!(self.out, " {l}");
                }
            }
            Stmt::Labeled { label, stmt, .. } => {
                let _ = write!(self.out, "{label}:");
                self.nl();
                self.stmt(stmt);
            }
            Stmt::Empty { .. } => {}
        }
    }

    fn if_stmt(&mut self, st: &IfStmt) {
        self.out.push_str("if ");
        if let Some(init) = &st.init {
            self.stmt(init);
            self.out.push_str("; ");
        }
        self.expr(&st.cond);
        self.out.push(' ');
        self.block(&st.then);
        if let Some(el) = &st.else_ {
            self.out.push_str(" else ");
            match el.as_ref() {
                Stmt::If(nested) => self.if_stmt(nested),
                Stmt::Block(b) => self.block(b),
                other => self.stmt(other),
            }
        }
    }

    fn expr_list(&mut self, exprs: &[Expr]) {
        for (i, e) in exprs.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.expr(e);
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident { name, .. } => self.out.push_str(name),
            Expr::IntLit { value, .. } => {
                let _ = write!(self.out, "{value}");
            }
            Expr::FloatLit { value, .. } => {
                if value.fract() == 0.0 && value.is_finite() && value.abs() < 1e15 {
                    let _ = write!(self.out, "{value:.1}");
                } else {
                    let _ = write!(self.out, "{value}");
                }
            }
            Expr::StrLit { value, .. } => {
                self.out.push('"');
                for c in value.chars() {
                    match c {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\r' => self.out.push_str("\\r"),
                        '"' => self.out.push_str("\\\""),
                        '\\' => self.out.push_str("\\\\"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            Expr::RuneLit { value, .. } => {
                self.out.push('\'');
                match value {
                    '\n' => self.out.push_str("\\n"),
                    '\t' => self.out.push_str("\\t"),
                    '\'' => self.out.push_str("\\'"),
                    '\\' => self.out.push_str("\\\\"),
                    c => self.out.push(*c),
                }
                self.out.push('\'');
            }
            Expr::CompositeLit { ty, elems, .. } => {
                if let Some(t) = ty {
                    self.ty(t);
                }
                self.out.push('{');
                let multiline = elems.len() > 2
                    || elems.iter().any(|el| {
                        matches!(el.value, Expr::CompositeLit { .. } | Expr::FuncLit { .. })
                    });
                if multiline {
                    self.indent += 1;
                    for el in elems {
                        self.nl();
                        if let Some(k) = &el.key {
                            self.expr(k);
                            self.out.push_str(": ");
                        }
                        self.expr(&el.value);
                        self.out.push(',');
                    }
                    self.indent -= 1;
                    self.nl();
                } else {
                    for (i, el) in elems.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        if let Some(k) = &el.key {
                            self.expr(k);
                            self.out.push_str(": ");
                        }
                        self.expr(&el.value);
                    }
                }
                self.out.push('}');
            }
            Expr::FuncLit { sig, body, .. } => {
                self.out.push_str("func");
                self.signature(sig);
                self.out.push(' ');
                self.block(body);
            }
            Expr::Selector { expr, name, .. } => {
                self.expr(expr);
                let _ = write!(self.out, ".{name}");
            }
            Expr::Index { expr, index, .. } => {
                self.expr(expr);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            Expr::SliceExpr { expr, lo, hi, .. } => {
                self.expr(expr);
                self.out.push('[');
                if let Some(lo) = lo {
                    self.expr(lo);
                }
                self.out.push(':');
                if let Some(hi) = hi {
                    self.expr(hi);
                }
                self.out.push(']');
            }
            Expr::Call {
                fun,
                args,
                variadic,
                ..
            } => {
                self.expr(fun);
                self.out.push('(');
                self.expr_list(args);
                if *variadic {
                    self.out.push_str("...");
                }
                self.out.push(')');
            }
            Expr::Make { ty, args, .. } => {
                self.out.push_str("make(");
                self.ty(ty);
                for a in args {
                    self.out.push_str(", ");
                    self.expr(a);
                }
                self.out.push(')');
            }
            Expr::New { ty, .. } => {
                self.out.push_str("new(");
                self.ty(ty);
                self.out.push(')');
            }
            Expr::Unary { op, expr, .. } => {
                self.out.push_str(op.symbol());
                // Avoid `--x` ambiguity.
                if matches!(op, UnOp::Neg)
                    && matches!(expr.as_ref(), Expr::Unary { op: UnOp::Neg, .. })
                {
                    self.out.push(' ');
                }
                self.expr(expr);
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                self.binary_operand(lhs, *op, false);
                let _ = write!(self.out, " {} ", op.symbol());
                self.binary_operand(rhs, *op, true);
            }
            Expr::Paren { expr, .. } => {
                self.out.push('(');
                self.expr(expr);
                self.out.push(')');
            }
            Expr::TypeAssert { expr, ty, .. } => {
                self.expr(expr);
                self.out.push_str(".(");
                self.ty(ty);
                self.out.push(')');
            }
        }
    }

    /// Prints a binary operand, inserting parentheses when the child binds
    /// looser than the parent operator (so the round-trip preserves shape).
    fn binary_operand(&mut self, child: &Expr, parent: BinOp, is_rhs: bool) {
        let needs_parens = match child {
            Expr::Binary { op, .. } => {
                op.precedence() < parent.precedence()
                    || (is_rhs && op.precedence() == parent.precedence())
            }
            _ => false,
        };
        if needs_parens {
            self.out.push('(');
            self.expr(child);
            self.out.push(')');
        } else {
            self.expr(child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_file};

    fn roundtrip_file(src: &str) {
        let f1 = parse_file(src).unwrap();
        let printed = print_file(&f1);
        let f2 =
            parse_file(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        assert_eq!(strip_file(&f1), strip_file(&f2), "printed:\n{printed}");
    }

    // Structural comparison that ignores spans: print both and compare.
    fn strip_file(f: &File) -> String {
        print_file(f)
    }

    #[test]
    fn roundtrips_waitgroup_program() {
        roundtrip_file(
            r#"
package main

import "sync"

func SomeFunction() error {
	err := someWork()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = Task1(); err != nil {
			handle()
		}
	}()
	if err = Task2(); err != nil {
		handle()
	}
	wg.Wait()
	return err
}
"#,
        );
    }

    #[test]
    fn roundtrips_select_and_channels() {
        roundtrip_file(
            r#"
package p

func f(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case ch <- 2:
		return 0
	case <-done:
		return -1
	default:
		return 1
	}
}
"#,
        );
    }

    #[test]
    fn roundtrips_structs_maps_slices() {
        roundtrip_file(
            r#"
package p

type Manager struct {
	items map[Key]Item
	mu    sync.Mutex
	xs    []int
}

func (m *Manager) Get(k Key) (Item, bool) {
	v, ok := m.items[k]
	return v, ok
}
"#,
        );
    }

    #[test]
    fn roundtrips_table_test() {
        roundtrip_file(
            r#"
package p

func TestRead(t *testing.T) {
	sampleHash := md5.New()
	tests := []struct {
		name string
		hash hash.Hash
	}{
		{name: "one", hash: sampleHash},
		{name: "two", hash: sampleHash},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			use(tt.hash)
		})
	}
}
"#,
        );
    }

    #[test]
    fn parens_preserved_by_precedence() {
        let e = parse_expr("(a + b) * c").unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(print_expr(&e2), printed);
        assert!(printed.contains('('));
    }

    #[test]
    fn prints_make_and_new() {
        let e = parse_expr("make(chan struct{}, 1)").unwrap();
        assert_eq!(print_expr(&e), "make(chan struct{}, 1)");
        let e = parse_expr("new(Buffer)").unwrap();
        assert_eq!(print_expr(&e), "new(Buffer)");
    }

    #[test]
    fn prints_labeled_loop() {
        roundtrip_file(
            r#"
package p

func f(stop chan struct{}) {
Loop:
	for {
		select {
		case <-stop:
			break Loop
		default:
			work()
		}
	}
}
"#,
        );
    }

    #[test]
    fn roundtrips_switch() {
        roundtrip_file(
            r#"
package p

func f(x int) int {
	switch x {
	case 0:
		return 10
	case 1, 2:
		return 20
	default:
		return 30
	}
}
"#,
        );
    }

    #[test]
    fn roundtrips_generics_and_range_api() {
        roundtrip_file(
            r#"
package p

type Scanner[ROW any] struct {
	lockMap sync.Map
}

func (t *Scanner[ROW]) runShards(newShards map[ShardKey]bool) {
	t.lockMap.Range(func(key, value interface{}) bool {
		shardKey := key.(ShardKey)
		if _, ok := newShards[shardKey]; !ok {
			t.lockMap.Delete(shardKey)
		}
		return true
	})
}
"#,
        );
    }

    #[test]
    fn roundtrips_atomic_ops() {
        roundtrip_file(
            r#"
package p

import "sync/atomic"

func f() {
	var cnt int32
	atomic.AddInt32(&cnt, 1)
	if atomic.LoadInt32(&cnt) > 0 {
		use(cnt)
	}
}
"#,
        );
    }
}
