//! `golite` — a from-scratch frontend for a substantial Go subset.
//!
//! This crate is the language substrate of the Dr.Fix reproduction
//! (PLDI 2025). It provides:
//!
//! - a [`lexer`] with Go-style automatic semicolon insertion,
//! - a recursive-descent [`parser`] covering goroutines, closures,
//!   channels, `select`, `sync`/`atomic` vocabulary, maps, slices,
//!   structs/methods, `defer`, and table-driven tests,
//! - a gofmt-flavoured [`printer`] whose output re-parses to the same
//!   tree (round-trip tested), and
//! - [`visit`] utilities used by the skeletonizer and fix strategies.
//!
//! # Example
//!
//! ```
//! use golite::parse_file;
//!
//! let file = parse_file(
//!     "package main\n\nfunc main() {\n\tgo work()\n}\n",
//! )?;
//! assert_eq!(file.package, "main");
//! assert!(file.find_func("main").is_some());
//! # Ok::<(), golite::Diag>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{Block, Decl, Expr, File, FuncDecl, Stmt, Type};
pub use diag::{Diag, Diagnostic, Result, Severity};
pub use parser::{parse_expr, parse_file, parse_stmts};
pub use printer::{print_expr, print_file, print_func, print_stmt};
pub use span::{LineCol, LineMap, Span};
