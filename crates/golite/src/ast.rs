//! Abstract syntax tree for the Go subset.
//!
//! Nodes derive `Clone`/`PartialEq`/`Serialize` so they can be rewritten
//! by fix strategies, compared in golden tests, and persisted in the
//! example database. Every node carries a [`Span`] into its source file;
//! synthesized nodes use [`Span::DUMMY`].

use crate::span::Span;
use serde::{Deserialize, Serialize};

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct File {
    /// Package clause name.
    pub package: String,
    /// Import declarations, in source order.
    pub imports: Vec<Import>,
    /// Top-level declarations, in source order.
    pub decls: Vec<Decl>,
    /// Span of the whole file.
    pub span: Span,
}

impl File {
    /// Finds the first function declaration named `name` (ignoring receivers).
    pub fn find_func(&self, name: &str) -> Option<&FuncDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// Mutable variant of [`File::find_func`].
    pub fn find_func_mut(&mut self, name: &str) -> Option<&mut FuncDecl> {
        self.decls.iter_mut().find_map(|d| match d {
            Decl::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// Iterates over all function declarations.
    pub fn funcs(&self) -> impl Iterator<Item = &FuncDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Func(f) => Some(f),
            _ => None,
        })
    }

    /// Finds the first type declaration named `name`.
    pub fn find_type(&self, name: &str) -> Option<&TypeDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::Type(t) if t.name == name => Some(t),
            _ => None,
        })
    }

    /// Mutable variant of [`File::find_type`].
    pub fn find_type_mut(&mut self, name: &str) -> Option<&mut TypeDecl> {
        self.decls.iter_mut().find_map(|d| match d {
            Decl::Type(t) if t.name == name => Some(t),
            _ => None,
        })
    }
}

/// An import declaration such as `import foo "bar/foo"`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Import {
    /// Optional local alias.
    pub alias: Option<String>,
    /// Quoted import path with quotes removed.
    pub path: String,
    /// Source span.
    pub span: Span,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decl {
    /// A function or method declaration.
    Func(FuncDecl),
    /// A named type declaration.
    Type(TypeDecl),
    /// A package-level `var` declaration.
    Var(VarDecl),
    /// A package-level `const` declaration.
    Const(VarDecl),
}

impl Decl {
    /// Span of the declaration.
    pub fn span(&self) -> Span {
        match self {
            Decl::Func(f) => f.span,
            Decl::Type(t) => t.span,
            Decl::Var(v) | Decl::Const(v) => v.span,
        }
    }
}

/// A type parameter such as `ROW any`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeParam {
    /// Parameter name.
    pub name: String,
    /// Constraint identifier (`any` in the subset).
    pub constraint: String,
}

/// A function or method declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncDecl {
    /// Method receiver, if any.
    pub receiver: Option<Receiver>,
    /// Function name.
    pub name: String,
    /// Generic type parameters (parsed, semantically erased).
    pub type_params: Vec<TypeParam>,
    /// Parameter and result signature.
    pub sig: FuncSig,
    /// Body; `None` for declarations without bodies.
    pub body: Option<Block>,
    /// Source span.
    pub span: Span,
}

/// A method receiver such as `(s *storeObject)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Receiver {
    /// Receiver binding name (may be `_`).
    pub name: String,
    /// Receiver type.
    pub ty: Type,
    /// Source span.
    pub span: Span,
}

/// A function signature: parameters and results.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FuncSig {
    /// Parameter groups.
    pub params: Vec<Param>,
    /// Result groups (names usually empty).
    pub results: Vec<Param>,
}

impl FuncSig {
    /// Iterates over `(name, type)` pairs of all parameters, flattened.
    pub fn param_names(&self) -> impl Iterator<Item = (&str, &Type)> {
        self.params
            .iter()
            .flat_map(|p| p.names.iter().map(move |n| (n.as_str(), &p.ty)))
    }
}

/// One parameter group: `a, b int`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Names in the group; empty for unnamed results/params.
    pub names: Vec<String>,
    /// The shared type.
    pub ty: Type,
    /// Whether this parameter is variadic (`...T`).
    pub variadic: bool,
    /// Source span.
    pub span: Span,
}

/// A named type declaration `type Name = T` / `type Name T`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeDecl {
    /// Declared name.
    pub name: String,
    /// Generic type parameters.
    pub type_params: Vec<TypeParam>,
    /// Underlying type.
    pub ty: Type,
    /// Source span.
    pub span: Span,
}

/// A `var`/`const` declaration (also used as a statement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Declared names.
    pub names: Vec<String>,
    /// Declared type, if present.
    pub ty: Option<Type>,
    /// Initializer expressions (may be empty).
    pub values: Vec<Expr>,
    /// Source span.
    pub span: Span,
}

/// Channel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChanDir {
    /// Bidirectional `chan T`.
    Both,
    /// Send-only `chan<- T`.
    Send,
    /// Receive-only `<-chan T`.
    Recv,
}

/// A struct field group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Field names; a single empty-name group models embedding.
    pub names: Vec<String>,
    /// Field type.
    pub ty: Type,
    /// Source span.
    pub span: Span,
}

/// A type in the subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Type {
    /// A (possibly qualified, possibly instantiated) named type:
    /// `int`, `sync.Mutex`, `Scanner[ROW]`.
    Named {
        /// Path segments, e.g. `["sync", "Mutex"]`.
        path: Vec<String>,
        /// Generic arguments, usually empty.
        args: Vec<Type>,
    },
    /// `*T`.
    Pointer(Box<Type>),
    /// `[]T`.
    Slice(Box<Type>),
    /// `[N]T`.
    Array {
        /// Length expression.
        len: Box<Expr>,
        /// Element type.
        elem: Box<Type>,
    },
    /// `map[K]V`.
    Map {
        /// Key type.
        key: Box<Type>,
        /// Value type.
        value: Box<Type>,
    },
    /// `chan T`, `chan<- T`, `<-chan T`.
    Chan {
        /// Direction.
        dir: ChanDir,
        /// Element type.
        elem: Box<Type>,
    },
    /// `func(...) ...`.
    Func(Box<FuncSig>),
    /// `struct { ... }`.
    Struct(Vec<Field>),
    /// `interface{}` (method sets are not modelled; names recorded only).
    Interface(Vec<String>),
}

impl Type {
    /// Builds a named type from a dotted path like `"sync.Mutex"`.
    pub fn named(path: &str) -> Type {
        Type::Named {
            path: path.split('.').map(str::to_owned).collect(),
            args: Vec::new(),
        }
    }

    /// Returns the dotted path if this is a named type.
    pub fn as_named_path(&self) -> Option<String> {
        match self {
            Type::Named { path, .. } => Some(path.join(".")),
            _ => None,
        }
    }

    /// Returns `true` if this type is (or points to) the named path `p`.
    pub fn is_named(&self, p: &str) -> bool {
        match self {
            Type::Named { path, .. } => path.join(".") == p,
            Type::Pointer(inner) => inner.is_named(p),
            _ => false,
        }
    }
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
    /// `&=`
    And,
    /// `|=`
    Or,
}

impl AssignOp {
    /// The surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
            AssignOp::And => "&=",
            AssignOp::Or => "|=",
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `var`/`const` declaration statement.
    Decl(VarDecl),
    /// Short variable declaration `a, b := ...`.
    ShortVar {
        /// Declared names.
        names: Vec<String>,
        /// Right-hand sides.
        values: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// Assignment `lhs op rhs`.
    Assign {
        /// Assignment targets.
        lhs: Vec<Expr>,
        /// Operator.
        op: AssignOp,
        /// Right-hand sides.
        rhs: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `x++` / `x--`.
    IncDec {
        /// Target expression.
        expr: Expr,
        /// `true` for `++`.
        inc: bool,
        /// Source span.
        span: Span,
    },
    /// Expression statement.
    Expr(Expr),
    /// Channel send `ch <- v`.
    Send {
        /// Channel expression.
        chan: Expr,
        /// Sent value.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `go call(...)`.
    Go {
        /// The spawned call (must be a call expression).
        call: Expr,
        /// Source span.
        span: Span,
    },
    /// `defer call(...)`.
    Defer {
        /// The deferred call.
        call: Expr,
        /// Source span.
        span: Span,
    },
    /// `return a, b`.
    Return {
        /// Returned values.
        values: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `if` statement.
    If(IfStmt),
    /// Three-clause / conditional / infinite `for`.
    For(ForStmt),
    /// `for ... range` statement.
    Range(RangeStmt),
    /// `switch` statement.
    Switch(SwitchStmt),
    /// `select` statement.
    Select(SelectStmt),
    /// Nested block.
    Block(Block),
    /// `break [label]`.
    Break {
        /// Optional label.
        label: Option<String>,
        /// Source span.
        span: Span,
    },
    /// `continue [label]`.
    Continue {
        /// Optional label.
        label: Option<String>,
        /// Source span.
        span: Span,
    },
    /// `label: stmt`.
    Labeled {
        /// Label name.
        label: String,
        /// Labeled statement.
        stmt: Box<Stmt>,
        /// Source span.
        span: Span,
    },
    /// Empty statement.
    Empty {
        /// Source span.
        span: Span,
    },
}

impl Stmt {
    /// Span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl(d) => d.span,
            Stmt::ShortVar { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::IncDec { span, .. }
            | Stmt::Send { span, .. }
            | Stmt::Go { span, .. }
            | Stmt::Defer { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Break { span, .. }
            | Stmt::Continue { span, .. }
            | Stmt::Labeled { span, .. }
            | Stmt::Empty { span } => *span,
            Stmt::Expr(e) => e.span(),
            Stmt::If(s) => s.span,
            Stmt::For(s) => s.span,
            Stmt::Range(s) => s.span,
            Stmt::Switch(s) => s.span,
            Stmt::Select(s) => s.span,
            Stmt::Block(b) => b.span,
        }
    }
}

/// An `if` statement with optional init and else arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfStmt {
    /// Optional init statement (`if x := f(); cond`).
    pub init: Option<Box<Stmt>>,
    /// Condition.
    pub cond: Expr,
    /// Then block.
    pub then: Block,
    /// Else arm: a `Block` or another `If`.
    pub else_: Option<Box<Stmt>>,
    /// Source span.
    pub span: Span,
}

/// A three-clause `for` (any clause optional).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForStmt {
    /// Optional init statement.
    pub init: Option<Box<Stmt>>,
    /// Optional condition (absent = infinite loop).
    pub cond: Option<Expr>,
    /// Optional post statement.
    pub post: Option<Box<Stmt>>,
    /// Loop body.
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// A `for key, value := range expr` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeStmt {
    /// Key binding (may be `_`, may be absent for bare `range expr`).
    pub key: Option<Expr>,
    /// Value binding.
    pub value: Option<Expr>,
    /// `true` when declared with `:=`.
    pub define: bool,
    /// The ranged expression.
    pub expr: Expr,
    /// Loop body.
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// An expression `switch` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchStmt {
    /// Optional init statement.
    pub init: Option<Box<Stmt>>,
    /// Optional tag expression.
    pub tag: Option<Expr>,
    /// Cases in order (`exprs` empty = `default`).
    pub cases: Vec<SwitchCase>,
    /// Source span.
    pub span: Span,
}

/// One `case`/`default` clause of a switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchCase {
    /// Case expressions; empty means `default`.
    pub exprs: Vec<Expr>,
    /// Clause body.
    pub body: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// A `select` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    /// Communication cases.
    pub cases: Vec<SelectCase>,
    /// Source span.
    pub span: Span,
}

/// One `case`/`default` clause of a select.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectCase {
    /// The communication operation.
    pub comm: CommClause,
    /// Clause body.
    pub body: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// The communication operation of a select case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommClause {
    /// `case ch <- v:`.
    Send {
        /// Channel expression.
        chan: Expr,
        /// Sent value.
        value: Expr,
    },
    /// `case x := <-ch:` / `case <-ch:`.
    Recv {
        /// Receive targets (empty for bare receive).
        lhs: Vec<Expr>,
        /// `true` when declared with `:=`.
        define: bool,
        /// Channel expression.
        chan: Expr,
    },
    /// `default:`.
    Default,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Address-of `&x`.
    Addr,
    /// Dereference `*x`.
    Deref,
    /// Channel receive `<-ch`.
    Recv,
    /// Bitwise complement `^x`.
    BitNot,
}

impl UnOp {
    /// Surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Addr => "&",
            UnOp::Deref => "*",
            UnOp::Recv => "<-",
            UnOp::BitNot => "^",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// Surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::AndAnd => "&&",
            BinOp::OrOr => "||",
            BinOp::Eq => "==",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }

    /// Go operator precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        use BinOp::*;
        match self {
            OrOr => 1,
            AndAnd => 2,
            Eq | NotEq | Lt | LtEq | Gt | GtEq => 3,
            Add | Sub | BitOr | BitXor => 4,
            Mul | Div | Rem | BitAnd | Shl | Shr => 5,
        }
    }
}

/// One element of a composite literal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeElem {
    /// Optional key (field name or map key expression).
    pub key: Option<Expr>,
    /// The element value.
    pub value: Expr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// An identifier reference.
    Ident {
        /// Name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// Integer literal.
    IntLit {
        /// Value.
        value: i64,
        /// Source span.
        span: Span,
    },
    /// Float literal.
    FloatLit {
        /// Value.
        value: f64,
        /// Source span.
        span: Span,
    },
    /// String literal (unescaped).
    StrLit {
        /// Value.
        value: String,
        /// Source span.
        span: Span,
    },
    /// Rune literal.
    RuneLit {
        /// Value.
        value: char,
        /// Source span.
        span: Span,
    },
    /// Composite literal `T{...}` / untyped `{...}` inside another literal.
    CompositeLit {
        /// Literal type; `None` when elided.
        ty: Option<Type>,
        /// Elements.
        elems: Vec<CompositeElem>,
        /// Source span.
        span: Span,
    },
    /// Function literal (closure).
    FuncLit {
        /// Signature.
        sig: FuncSig,
        /// Body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// Field/method selection `x.name`.
    Selector {
        /// Receiver expression.
        expr: Box<Expr>,
        /// Selected name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// Indexing `x[i]`.
    Index {
        /// Indexed expression.
        expr: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Slicing `x[lo:hi]`.
    SliceExpr {
        /// Sliced expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// Source span.
        span: Span,
    },
    /// Call `f(args...)`.
    Call {
        /// Callee.
        fun: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// `true` if the final argument is spread with `...`.
        variadic: bool,
        /// Source span.
        span: Span,
    },
    /// `make(T, args...)`.
    Make {
        /// Constructed type.
        ty: Type,
        /// Size/capacity arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `new(T)`.
    New {
        /// Pointee type.
        ty: Type,
        /// Source span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Parenthesized expression.
    Paren {
        /// Inner expression.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Type assertion `x.(T)`.
    TypeAssert {
        /// Asserted expression.
        expr: Box<Expr>,
        /// Target type.
        ty: Type,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// Span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident { span, .. }
            | Expr::IntLit { span, .. }
            | Expr::FloatLit { span, .. }
            | Expr::StrLit { span, .. }
            | Expr::RuneLit { span, .. }
            | Expr::CompositeLit { span, .. }
            | Expr::FuncLit { span, .. }
            | Expr::Selector { span, .. }
            | Expr::Index { span, .. }
            | Expr::SliceExpr { span, .. }
            | Expr::Call { span, .. }
            | Expr::Make { span, .. }
            | Expr::New { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Paren { span, .. }
            | Expr::TypeAssert { span, .. } => *span,
        }
    }

    /// Creates an identifier expression with a dummy span.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident {
            name: name.into(),
            span: Span::DUMMY,
        }
    }

    /// Creates an integer literal with a dummy span.
    pub fn int(value: i64) -> Expr {
        Expr::IntLit {
            value,
            span: Span::DUMMY,
        }
    }

    /// Creates a string literal with a dummy span.
    pub fn str(value: impl Into<String>) -> Expr {
        Expr::StrLit {
            value: value.into(),
            span: Span::DUMMY,
        }
    }

    /// Creates `recv.name` with a dummy span.
    pub fn select(recv: Expr, name: impl Into<String>) -> Expr {
        Expr::Selector {
            expr: Box::new(recv),
            name: name.into(),
            span: Span::DUMMY,
        }
    }

    /// Creates a dotted path expression like `sync.Mutex` from `"sync.Mutex"`.
    pub fn path(dotted: &str) -> Expr {
        let mut parts = dotted.split('.');
        let mut e = Expr::ident(parts.next().unwrap_or_default());
        for p in parts {
            e = Expr::select(e, p);
        }
        e
    }

    /// Creates a call `fun(args...)` with a dummy span.
    pub fn call(fun: Expr, args: Vec<Expr>) -> Expr {
        Expr::Call {
            fun: Box::new(fun),
            args,
            variadic: false,
            span: Span::DUMMY,
        }
    }

    /// Creates a method call `recv.name(args...)` with a dummy span.
    pub fn method(recv: Expr, name: &str, args: Vec<Expr>) -> Expr {
        Expr::call(Expr::select(recv, name), args)
    }

    /// If this is a (possibly parenthesized) identifier, returns its name.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident { name, .. } => Some(name),
            Expr::Paren { expr, .. } => expr.as_ident(),
            _ => None,
        }
    }

    /// Renders the "root" variable of an lvalue chain, e.g. `a` in `a.b[i]`.
    pub fn root_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident { name, .. } => Some(name),
            Expr::Selector { expr, .. }
            | Expr::Index { expr, .. }
            | Expr::SliceExpr { expr, .. }
            | Expr::Paren { expr, .. }
            | Expr::TypeAssert { expr, .. } => expr.root_ident(),
            Expr::Unary {
                op: UnOp::Deref | UnOp::Addr,
                expr,
                ..
            } => expr.root_ident(),
            _ => None,
        }
    }
}

impl Stmt {
    /// Creates an expression statement.
    pub fn expr(e: Expr) -> Stmt {
        Stmt::Expr(e)
    }

    /// Creates a single-target `=` assignment with a dummy span.
    pub fn assign(lhs: Expr, rhs: Expr) -> Stmt {
        Stmt::Assign {
            lhs: vec![lhs],
            op: AssignOp::Assign,
            rhs: vec![rhs],
            span: Span::DUMMY,
        }
    }

    /// Creates a single-name `:=` declaration with a dummy span.
    pub fn short_var(name: impl Into<String>, value: Expr) -> Stmt {
        Stmt::ShortVar {
            names: vec![name.into()],
            values: vec![value],
            span: Span::DUMMY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_compose() {
        let e = Expr::method(Expr::ident("wg"), "Add", vec![Expr::int(1)]);
        match &e {
            Expr::Call { fun, args, .. } => {
                assert_eq!(args.len(), 1);
                match fun.as_ref() {
                    Expr::Selector { expr, name, .. } => {
                        assert_eq!(name, "Add");
                        assert_eq!(expr.as_ident(), Some("wg"));
                    }
                    other => panic!("expected selector, got {other:?}"),
                }
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn root_ident_traverses_chains() {
        // a.b[0].c
        let e = Expr::select(
            Expr::Index {
                expr: Box::new(Expr::select(Expr::ident("a"), "b")),
                index: Box::new(Expr::int(0)),
                span: Span::DUMMY,
            },
            "c",
        );
        assert_eq!(e.root_ident(), Some("a"));
        assert_eq!(Expr::int(3).root_ident(), None);
    }

    #[test]
    fn path_builder() {
        let e = Expr::path("a.b.c");
        assert_eq!(e.root_ident(), Some("a"));
        match e {
            Expr::Selector { name, .. } => assert_eq!(name, "c"),
            other => panic!("expected selector, got {other:?}"),
        }
    }

    #[test]
    fn type_helpers() {
        let t = Type::named("sync.Mutex");
        assert!(t.is_named("sync.Mutex"));
        assert!(Type::Pointer(Box::new(t.clone())).is_named("sync.Mutex"));
        assert_eq!(t.as_named_path().as_deref(), Some("sync.Mutex"));
        assert!(!Type::Slice(Box::new(Type::named("int"))).is_named("int"));
    }

    #[test]
    fn binop_precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::AndAnd.precedence());
        assert!(BinOp::AndAnd.precedence() > BinOp::OrOr.precedence());
    }

    #[test]
    fn find_func_on_file() {
        let f = File {
            package: "p".into(),
            imports: vec![],
            decls: vec![Decl::Func(FuncDecl {
                receiver: None,
                name: "Main".into(),
                type_params: vec![],
                sig: FuncSig::default(),
                body: Some(Block::default()),
                span: Span::DUMMY,
            })],
            span: Span::DUMMY,
        };
        assert!(f.find_func("Main").is_some());
        assert!(f.find_func("Other").is_none());
        assert_eq!(f.funcs().count(), 1);
    }
}
