//! Recursive-descent parser for the Go subset.
//!
//! The grammar follows the Go specification restricted to the constructs
//! needed by Dr.Fix's corpus: functions and methods, structs, closures,
//! goroutines, channels, `select`, the `sync`/`atomic` vocabulary, maps,
//! slices, and table-driven tests. The composite-literal/block ambiguity
//! in `if`/`for`/`switch` headers is resolved with the same
//! expression-level rule as the reference Go parser.

use crate::ast::*;
use crate::diag::{Diag, Result};
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a whole source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic [`Diag`] encountered.
pub fn parse_file(src: &str) -> Result<File> {
    let tokens = Lexer::tokenize(src)?;
    let mut p = Parser::new(src, tokens);
    p.parse_file()
}

/// Parses a single expression (useful in tests and strategy code).
///
/// # Errors
///
/// Returns a [`Diag`] if `src` is not a single well-formed expression.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = Lexer::tokenize(src)?;
    let mut p = Parser::new(src, tokens);
    let e = p.expr()?;
    p.eat(TokenKind::Semi);
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

/// Parses a sequence of statements (as if inside a function body).
///
/// # Errors
///
/// Returns a [`Diag`] on malformed statements.
pub fn parse_stmts(src: &str) -> Result<Vec<Stmt>> {
    let tokens = Lexer::tokenize(src)?;
    let mut p = Parser::new(src, tokens);
    let mut stmts = Vec::new();
    loop {
        while p.eat(TokenKind::Semi) {}
        if p.at(TokenKind::Eof) {
            return Ok(stmts);
        }
        stmts.push(p.stmt()?);
    }
}

struct Parser<'src> {
    src: &'src str,
    tokens: Vec<Token>,
    pos: usize,
    /// When `false`, a `{` after a bare named type does not start a
    /// composite literal (i.e. we are in an `if`/`for`/`switch` header).
    composite_ok: bool,
}

impl<'src> Parser<'src> {
    fn new(src: &'src str, tokens: Vec<Token>) -> Self {
        Parser {
            src,
            tokens,
            pos: 0,
            composite_ok: true,
        }
    }

    fn peek(&self) -> Token {
        self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> TokenKind {
        self.peek().kind
    }

    fn peek2_kind(&self) -> TokenKind {
        self.tokens
            .get(self.pos + 1)
            .map(|t| t.kind)
            .unwrap_or(TokenKind::Eof)
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(Diag::new(
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
                t.span,
            ))
        }
    }

    fn text(&self, span: Span) -> &'src str {
        &self.src[span.lo as usize..span.hi as usize]
    }

    fn ident(&mut self) -> Result<(String, Span)> {
        let t = self.expect(TokenKind::Ident)?;
        Ok((self.text(t.span).to_owned(), t.span))
    }

    /// Runs `f` with composite literals permitted (inside parens/brackets).
    fn with_composites<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let save = self.composite_ok;
        self.composite_ok = true;
        let r = f(self);
        self.composite_ok = save;
        r
    }

    /// Runs `f` with bare-type composite literals forbidden (control headers).
    fn without_composites<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let save = self.composite_ok;
        self.composite_ok = false;
        let r = f(self);
        self.composite_ok = save;
        r
    }

    // ---------------------------------------------------------------- file

    fn parse_file(&mut self) -> Result<File> {
        let start = self.peek().span;
        self.expect(TokenKind::Package)?;
        let (package, _) = self.ident()?;
        self.expect(TokenKind::Semi)?;

        let mut imports = Vec::new();
        while self.at(TokenKind::Import) {
            let kw = self.bump();
            if self.eat(TokenKind::LParen) {
                while !self.at(TokenKind::RParen) {
                    while self.eat(TokenKind::Semi) {}
                    if self.at(TokenKind::RParen) {
                        break;
                    }
                    imports.push(self.import_spec(kw.span)?);
                    while self.eat(TokenKind::Semi) {}
                }
                self.expect(TokenKind::RParen)?;
            } else {
                imports.push(self.import_spec(kw.span)?);
            }
            self.eat(TokenKind::Semi);
        }

        let mut decls = Vec::new();
        loop {
            while self.eat(TokenKind::Semi) {}
            if self.at(TokenKind::Eof) {
                break;
            }
            decls.push(self.decl()?);
        }
        let end = self.peek().span;
        Ok(File {
            package,
            imports,
            decls,
            span: start.to(end),
        })
    }

    fn import_spec(&mut self, kw: Span) -> Result<Import> {
        let alias = if self.at(TokenKind::Ident) {
            Some(self.ident()?.0)
        } else {
            None
        };
        let t = self.expect(TokenKind::Str)?;
        let raw = self.text(t.span);
        let path = raw.trim_matches(|c| c == '"' || c == '`').to_owned();
        Ok(Import {
            alias,
            path,
            span: kw.to(t.span),
        })
    }

    fn decl(&mut self) -> Result<Decl> {
        match self.peek_kind() {
            TokenKind::Func => Ok(Decl::Func(self.func_decl()?)),
            TokenKind::Type => Ok(Decl::Type(self.type_decl()?)),
            TokenKind::Var => Ok(Decl::Var(self.var_decl(false)?)),
            TokenKind::Const => Ok(Decl::Const(self.var_decl(true)?)),
            _ => {
                let t = self.peek();
                Err(Diag::new(
                    format!("expected declaration, found {}", t.kind.describe()),
                    t.span,
                ))
            }
        }
    }

    fn func_decl(&mut self) -> Result<FuncDecl> {
        let kw = self.expect(TokenKind::Func)?;
        let receiver = if self.at(TokenKind::LParen) {
            let lp = self.bump();
            let (name, _) = self.ident()?;
            let ty = self.parse_type()?;
            let rp = self.expect(TokenKind::RParen)?;
            Some(Receiver {
                name,
                ty,
                span: lp.span.to(rp.span),
            })
        } else {
            None
        };
        let (name, _) = self.ident()?;
        let type_params = self.opt_type_params()?;
        let sig = self.signature()?;
        let body = if self.at(TokenKind::LBrace) {
            Some(self.block()?)
        } else {
            None
        };
        let end = body.as_ref().map(|b| b.span).unwrap_or(kw.span);
        Ok(FuncDecl {
            receiver,
            name,
            type_params,
            sig,
            body,
            span: kw.span.to(end),
        })
    }

    fn opt_type_params(&mut self) -> Result<Vec<TypeParam>> {
        let mut out = Vec::new();
        if self.at(TokenKind::LBracket) {
            self.bump();
            loop {
                let (name, _) = self.ident()?;
                let (constraint, _) = if self.at(TokenKind::Ident) {
                    self.ident()?
                } else if self.at(TokenKind::Interface) {
                    self.bump();
                    self.expect(TokenKind::LBrace)?;
                    self.expect(TokenKind::RBrace)?;
                    ("any".to_owned(), Span::DUMMY)
                } else {
                    ("any".to_owned(), Span::DUMMY)
                };
                out.push(TypeParam { name, constraint });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        Ok(out)
    }

    fn type_decl(&mut self) -> Result<TypeDecl> {
        let kw = self.expect(TokenKind::Type)?;
        let (name, _) = self.ident()?;
        let type_params = self.opt_type_params()?;
        self.eat(TokenKind::Assign); // tolerate alias syntax
        let ty = self.parse_type()?;
        let end = self.peek().span;
        Ok(TypeDecl {
            name,
            type_params,
            ty,
            span: kw.span.to(end),
        })
    }

    fn var_decl(&mut self, is_const: bool) -> Result<VarDecl> {
        let kw = self.bump(); // var/const
        let _ = is_const;
        if self.eat(TokenKind::LParen) {
            // Grouped form: keep only the first spec for simplicity of the
            // subset; the corpus uses single-spec groups.
            while self.eat(TokenKind::Semi) {}
            let spec = self.var_spec(kw.span)?;
            while self.eat(TokenKind::Semi) {}
            self.expect(TokenKind::RParen)?;
            return Ok(spec);
        }
        self.var_spec(kw.span)
    }

    fn var_spec(&mut self, kw: Span) -> Result<VarDecl> {
        let mut names = Vec::new();
        loop {
            let (n, _) = self.ident()?;
            names.push(n);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        let ty = if !self.at(TokenKind::Assign) && !self.at(TokenKind::Semi) {
            Some(self.parse_type()?)
        } else {
            None
        };
        let mut values = Vec::new();
        if self.eat(TokenKind::Assign) {
            values = self.expr_list()?;
        }
        let end = self.peek().span;
        Ok(VarDecl {
            names,
            ty,
            values,
            span: kw.to(end),
        })
    }

    // --------------------------------------------------------------- types

    fn starts_type(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::Ident
                | TokenKind::Star
                | TokenKind::LBracket
                | TokenKind::Map
                | TokenKind::Chan
                | TokenKind::Func
                | TokenKind::Interface
                | TokenKind::Struct
                | TokenKind::Arrow
                | TokenKind::LParen
        )
    }

    fn parse_type(&mut self) -> Result<Type> {
        match self.peek_kind() {
            TokenKind::Star => {
                self.bump();
                Ok(Type::Pointer(Box::new(self.parse_type()?)))
            }
            TokenKind::LBracket => {
                self.bump();
                if self.eat(TokenKind::RBracket) {
                    Ok(Type::Slice(Box::new(self.parse_type()?)))
                } else {
                    let len = self.with_composites(|p| p.expr())?;
                    self.expect(TokenKind::RBracket)?;
                    Ok(Type::Array {
                        len: Box::new(len),
                        elem: Box::new(self.parse_type()?),
                    })
                }
            }
            TokenKind::Map => {
                self.bump();
                self.expect(TokenKind::LBracket)?;
                let key = self.parse_type()?;
                self.expect(TokenKind::RBracket)?;
                let value = self.parse_type()?;
                Ok(Type::Map {
                    key: Box::new(key),
                    value: Box::new(value),
                })
            }
            TokenKind::Chan => {
                self.bump();
                let dir = if self.eat(TokenKind::Arrow) {
                    ChanDir::Send
                } else {
                    ChanDir::Both
                };
                Ok(Type::Chan {
                    dir,
                    elem: Box::new(self.parse_type()?),
                })
            }
            TokenKind::Arrow => {
                self.bump();
                self.expect(TokenKind::Chan)?;
                Ok(Type::Chan {
                    dir: ChanDir::Recv,
                    elem: Box::new(self.parse_type()?),
                })
            }
            TokenKind::Func => {
                self.bump();
                let sig = self.signature()?;
                Ok(Type::Func(Box::new(sig)))
            }
            TokenKind::Struct => {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                let mut fields = Vec::new();
                loop {
                    while self.eat(TokenKind::Semi) {}
                    if self.at(TokenKind::RBrace) {
                        break;
                    }
                    fields.push(self.struct_field()?);
                }
                self.expect(TokenKind::RBrace)?;
                Ok(Type::Struct(fields))
            }
            TokenKind::Interface => {
                self.bump();
                self.expect(TokenKind::LBrace)?;
                let mut methods = Vec::new();
                loop {
                    while self.eat(TokenKind::Semi) {}
                    if self.at(TokenKind::RBrace) {
                        break;
                    }
                    let (name, _) = self.ident()?;
                    if self.at(TokenKind::LParen) {
                        let _ = self.signature()?;
                    }
                    methods.push(name);
                }
                self.expect(TokenKind::RBrace)?;
                Ok(Type::Interface(methods))
            }
            TokenKind::LParen => {
                self.bump();
                let t = self.parse_type()?;
                self.expect(TokenKind::RParen)?;
                Ok(t)
            }
            TokenKind::Ident => {
                let mut path = vec![self.ident()?.0];
                while self.at(TokenKind::Dot) {
                    self.bump();
                    path.push(self.ident()?.0);
                }
                let mut args = Vec::new();
                if self.at(TokenKind::LBracket) {
                    self.bump();
                    loop {
                        args.push(self.parse_type()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBracket)?;
                }
                Ok(Type::Named { path, args })
            }
            _ => {
                let t = self.peek();
                Err(Diag::new(
                    format!("expected type, found {}", t.kind.describe()),
                    t.span,
                ))
            }
        }
    }

    fn struct_field(&mut self) -> Result<Field> {
        let start = self.peek().span;
        // Either `names... Type` or an embedded bare type.
        if self.at(TokenKind::Ident)
            && matches!(
                self.peek2_kind(),
                TokenKind::Semi | TokenKind::RBrace | TokenKind::Str | TokenKind::Dot
            )
        {
            // Embedded field (possibly qualified).
            let ty = self.parse_type()?;
            if self.at(TokenKind::Str) {
                self.bump(); // tag, ignored
            }
            let end = self.peek().span;
            return Ok(Field {
                names: Vec::new(),
                ty,
                span: start.to(end),
            });
        }
        let mut names = Vec::new();
        loop {
            let (n, _) = self.ident()?;
            names.push(n);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        let ty = self.parse_type()?;
        if self.at(TokenKind::Str) {
            self.bump(); // tag, ignored
        }
        let end = self.peek().span;
        Ok(Field {
            names,
            ty,
            span: start.to(end),
        })
    }

    fn signature(&mut self) -> Result<FuncSig> {
        self.expect(TokenKind::LParen)?;
        let params = self.param_list()?;
        self.expect(TokenKind::RParen)?;
        let mut results = Vec::new();
        if self.at(TokenKind::LParen) {
            self.bump();
            results = self.param_list()?;
            self.expect(TokenKind::RParen)?;
        } else if self.starts_type() && !self.at(TokenKind::LParen) {
            let ty = self.parse_type()?;
            results.push(Param {
                names: Vec::new(),
                ty,
                variadic: false,
                span: Span::DUMMY,
            });
        }
        Ok(FuncSig { params, results })
    }

    /// Parses a parameter list up to (not including) the closing `)`.
    ///
    /// Resolves the name-vs-type ambiguity: entries that are bare
    /// identifiers stay "undecided" until either a named group closes them
    /// (they were names) or the list ends (they were unnamed types).
    fn param_list(&mut self) -> Result<Vec<Param>> {
        let mut groups: Vec<Param> = Vec::new();
        let mut undecided: Vec<(String, Span)> = Vec::new();

        loop {
            if self.at(TokenKind::RParen) {
                break;
            }
            if self.at(TokenKind::Ellipsis) {
                // `...T` — variadic, names are the undecided idents (or none).
                let e = self.bump();
                let ty = self.parse_type()?;
                let names: Vec<String> = undecided.drain(..).map(|(n, _)| n).collect();
                groups.push(Param {
                    names,
                    ty,
                    variadic: true,
                    span: e.span,
                });
            } else if self.at(TokenKind::Ident)
                && matches!(self.peek2_kind(), TokenKind::Comma | TokenKind::RParen)
            {
                // Bare identifier: could be a name or an unnamed type.
                let (n, sp) = self.ident()?;
                undecided.push((n, sp));
            } else if self.at(TokenKind::Ident)
                && self.peek2_kind() != TokenKind::Dot
                && self.peek2_kind() != TokenKind::LBracket
            {
                // `name Type` — the undecided idents before it share the type.
                let (n, sp) = self.ident()?;
                undecided.push((n, sp));
                let variadic = self.eat(TokenKind::Ellipsis);
                let ty = self.parse_type()?;
                let span = undecided[0].1;
                let names: Vec<String> = undecided.drain(..).map(|(n, _)| n).collect();
                groups.push(Param {
                    names,
                    ty,
                    variadic,
                    span,
                });
            } else if self.at(TokenKind::Ident) && self.peek2_kind() == TokenKind::LBracket {
                // `name []T` / `name [N]T` (array/slice after a name).
                let (n, sp) = self.ident()?;
                undecided.push((n, sp));
                let ty = self.parse_type()?;
                let span = undecided[0].1;
                let names: Vec<String> = undecided.drain(..).map(|(n, _)| n).collect();
                groups.push(Param {
                    names,
                    ty,
                    variadic: false,
                    span,
                });
            } else {
                // An unnamed non-ident type — but if there are undecided
                // idents they are names for this type.
                let ty = self.parse_type()?;
                if undecided.is_empty() {
                    groups.push(Param {
                        names: Vec::new(),
                        ty,
                        variadic: false,
                        span: Span::DUMMY,
                    });
                } else {
                    let span = undecided[0].1;
                    let names: Vec<String> = undecided.drain(..).map(|(n, _)| n).collect();
                    groups.push(Param {
                        names,
                        ty,
                        variadic: false,
                        span,
                    });
                }
            }
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        // Remaining undecided idents are unnamed named-types.
        for (n, sp) in undecided {
            groups.push(Param {
                names: Vec::new(),
                ty: Type::Named {
                    path: vec![n],
                    args: Vec::new(),
                },
                variadic: false,
                span: sp,
            });
        }
        Ok(groups)
    }

    // ---------------------------------------------------------- statements

    fn block(&mut self) -> Result<Block> {
        let lb = self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        loop {
            while self.eat(TokenKind::Semi) {}
            if self.at(TokenKind::RBrace) || self.at(TokenKind::Eof) {
                break;
            }
            stmts.push(self.stmt()?);
        }
        let rb = self.expect(TokenKind::RBrace)?;
        Ok(Block {
            stmts,
            span: lb.span.to(rb.span),
        })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek_kind() {
            TokenKind::Var | TokenKind::Const => {
                let d = self.var_decl(self.at(TokenKind::Const))?;
                Ok(Stmt::Decl(d))
            }
            TokenKind::If => self.if_stmt().map(Stmt::If),
            TokenKind::For => self.for_stmt(),
            TokenKind::Switch => self.switch_stmt().map(Stmt::Switch),
            TokenKind::Select => self.select_stmt().map(Stmt::Select),
            TokenKind::Go => {
                let kw = self.bump();
                let call = self.with_composites(|p| p.expr())?;
                let span = kw.span.to(call.span());
                Ok(Stmt::Go { call, span })
            }
            TokenKind::Defer => {
                let kw = self.bump();
                let call = self.with_composites(|p| p.expr())?;
                let span = kw.span.to(call.span());
                Ok(Stmt::Defer { call, span })
            }
            TokenKind::Return => {
                let kw = self.bump();
                let values = if self.at(TokenKind::Semi)
                    || self.at(TokenKind::RBrace)
                    || self.at(TokenKind::Case)
                    || self.at(TokenKind::Default)
                {
                    Vec::new()
                } else {
                    self.with_composites(|p| p.expr_list())?
                };
                let end = values.last().map(|e| e.span()).unwrap_or(kw.span);
                Ok(Stmt::Return {
                    values,
                    span: kw.span.to(end),
                })
            }
            TokenKind::Break => {
                let kw = self.bump();
                let label = if self.at(TokenKind::Ident) {
                    Some(self.ident()?.0)
                } else {
                    None
                };
                Ok(Stmt::Break {
                    label,
                    span: kw.span,
                })
            }
            TokenKind::Continue => {
                let kw = self.bump();
                let label = if self.at(TokenKind::Ident) {
                    Some(self.ident()?.0)
                } else {
                    None
                };
                Ok(Stmt::Continue {
                    label,
                    span: kw.span,
                })
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Semi => {
                let t = self.bump();
                Ok(Stmt::Empty { span: t.span })
            }
            TokenKind::Ident if self.peek2_kind() == TokenKind::Colon => {
                let (label, sp) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                while self.eat(TokenKind::Semi) {}
                let inner = self.stmt()?;
                let span = sp.to(inner.span());
                Ok(Stmt::Labeled {
                    label,
                    stmt: Box::new(inner),
                    span,
                })
            }
            _ => self.simple_stmt(),
        }
    }

    /// Parses a "simple statement": expression, send, inc/dec, assignment,
    /// or short variable declaration.
    fn simple_stmt(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        let exprs = self.expr_list()?;
        match self.peek_kind() {
            TokenKind::Define => {
                self.bump();
                let names = idents_of(&exprs)?;
                let values = self.expr_list()?;
                let end = values.last().map(|e| e.span()).unwrap_or(start);
                Ok(Stmt::ShortVar {
                    names,
                    values,
                    span: start.to(end),
                })
            }
            TokenKind::Assign
            | TokenKind::PlusAssign
            | TokenKind::MinusAssign
            | TokenKind::StarAssign
            | TokenKind::SlashAssign
            | TokenKind::PercentAssign
            | TokenKind::AmpAssign
            | TokenKind::PipeAssign => {
                let op = match self.bump().kind {
                    TokenKind::Assign => AssignOp::Assign,
                    TokenKind::PlusAssign => AssignOp::Add,
                    TokenKind::MinusAssign => AssignOp::Sub,
                    TokenKind::StarAssign => AssignOp::Mul,
                    TokenKind::SlashAssign => AssignOp::Div,
                    TokenKind::PercentAssign => AssignOp::Rem,
                    TokenKind::AmpAssign => AssignOp::And,
                    _ => AssignOp::Or,
                };
                let rhs = self.expr_list()?;
                let end = rhs.last().map(|e| e.span()).unwrap_or(start);
                Ok(Stmt::Assign {
                    lhs: exprs,
                    op,
                    rhs,
                    span: start.to(end),
                })
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let inc = self.bump().kind == TokenKind::PlusPlus;
                let expr = single(exprs)?;
                let span = start.to(expr.span());
                Ok(Stmt::IncDec { expr, inc, span })
            }
            TokenKind::Arrow => {
                self.bump();
                let chan = single(exprs)?;
                let value = self.expr()?;
                let span = start.to(value.span());
                Ok(Stmt::Send { chan, value, span })
            }
            _ => {
                let expr = single(exprs)?;
                Ok(Stmt::Expr(expr))
            }
        }
    }

    fn if_stmt(&mut self) -> Result<IfStmt> {
        let kw = self.expect(TokenKind::If)?;
        let (init, cond) = self.without_composites(|p| {
            let first = p.simple_stmt()?;
            if p.eat(TokenKind::Semi) {
                let cond_stmt = p.simple_stmt()?;
                let cond = expr_of(cond_stmt)?;
                Ok((Some(Box::new(first)), cond))
            } else {
                Ok((None, expr_of(first)?))
            }
        })?;
        let then = self.block()?;
        let else_ = if self.eat(TokenKind::Else) {
            if self.at(TokenKind::If) {
                Some(Box::new(Stmt::If(self.if_stmt()?)))
            } else {
                Some(Box::new(Stmt::Block(self.block()?)))
            }
        } else {
            None
        };
        let end = else_.as_ref().map(|s| s.span()).unwrap_or(then.span);
        Ok(IfStmt {
            init,
            cond,
            then,
            else_,
            span: kw.span.to(end),
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let kw = self.expect(TokenKind::For)?;

        // `for { ... }`
        if self.at(TokenKind::LBrace) {
            let body = self.block()?;
            let span = kw.span.to(body.span);
            return Ok(Stmt::For(ForStmt {
                init: None,
                cond: None,
                post: None,
                body,
                span,
            }));
        }

        // `for range x { ... }`
        if self.at(TokenKind::Range) {
            self.bump();
            let expr = self.without_composites(|p| p.expr())?;
            let body = self.block()?;
            let span = kw.span.to(body.span);
            return Ok(Stmt::Range(RangeStmt {
                key: None,
                value: None,
                define: false,
                expr,
                body,
                span,
            }));
        }

        // `for ; cond ; post { ... }`
        if self.at(TokenKind::Semi) {
            return self.three_clause_for(kw.span, None);
        }

        // Parse the leading expression list without composite literals.
        let exprs = self.without_composites(|p| p.expr_list())?;

        // `for k, v := range x` / `for k, v = range x`.
        if (self.at(TokenKind::Define) || self.at(TokenKind::Assign))
            && self.peek2_kind() == TokenKind::Range
        {
            let define = self.bump().kind == TokenKind::Define;
            self.expect(TokenKind::Range)?;
            let expr = self.without_composites(|p| p.expr())?;
            let body = self.block()?;
            let mut it = exprs.into_iter();
            let key = it.next();
            let value = it.next();
            let span = kw.span.to(body.span);
            return Ok(Stmt::Range(RangeStmt {
                key,
                value,
                define,
                expr,
                body,
                span,
            }));
        }

        // Otherwise finish a simple statement from the expression list.
        let first = self.without_composites(|p| p.finish_simple_stmt(exprs))?;

        if self.at(TokenKind::Semi) {
            return self.three_clause_for(kw.span, Some(Box::new(first)));
        }

        // `for cond { ... }`.
        let cond = expr_of(first)?;
        let body = self.block()?;
        let span = kw.span.to(body.span);
        Ok(Stmt::For(ForStmt {
            init: None,
            cond: Some(cond),
            post: None,
            body,
            span,
        }))
    }

    fn three_clause_for(&mut self, kw: Span, init: Option<Box<Stmt>>) -> Result<Stmt> {
        self.expect(TokenKind::Semi)?;
        let cond = if self.at(TokenKind::Semi) {
            None
        } else {
            Some(self.without_composites(|p| p.expr())?)
        };
        self.expect(TokenKind::Semi)?;
        let post = if self.at(TokenKind::LBrace) {
            None
        } else {
            Some(Box::new(self.without_composites(|p| p.simple_stmt())?))
        };
        let body = self.block()?;
        let span = kw.to(body.span);
        Ok(Stmt::For(ForStmt {
            init,
            cond,
            post,
            body,
            span,
        }))
    }

    /// Completes a simple statement whose leading expression list is given.
    fn finish_simple_stmt(&mut self, exprs: Vec<Expr>) -> Result<Stmt> {
        let start = exprs
            .first()
            .map(|e| e.span())
            .unwrap_or_else(|| self.peek().span);
        match self.peek_kind() {
            TokenKind::Define => {
                self.bump();
                let names = idents_of(&exprs)?;
                let values = self.expr_list()?;
                let end = values.last().map(|e| e.span()).unwrap_or(start);
                Ok(Stmt::ShortVar {
                    names,
                    values,
                    span: start.to(end),
                })
            }
            TokenKind::Assign
            | TokenKind::PlusAssign
            | TokenKind::MinusAssign
            | TokenKind::StarAssign
            | TokenKind::SlashAssign
            | TokenKind::PercentAssign
            | TokenKind::AmpAssign
            | TokenKind::PipeAssign => {
                let op = match self.bump().kind {
                    TokenKind::Assign => AssignOp::Assign,
                    TokenKind::PlusAssign => AssignOp::Add,
                    TokenKind::MinusAssign => AssignOp::Sub,
                    TokenKind::StarAssign => AssignOp::Mul,
                    TokenKind::SlashAssign => AssignOp::Div,
                    TokenKind::PercentAssign => AssignOp::Rem,
                    TokenKind::AmpAssign => AssignOp::And,
                    _ => AssignOp::Or,
                };
                let rhs = self.expr_list()?;
                let end = rhs.last().map(|e| e.span()).unwrap_or(start);
                Ok(Stmt::Assign {
                    lhs: exprs,
                    op,
                    rhs,
                    span: start.to(end),
                })
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let inc = self.bump().kind == TokenKind::PlusPlus;
                let expr = single(exprs)?;
                let span = start.to(expr.span());
                Ok(Stmt::IncDec { expr, inc, span })
            }
            TokenKind::Arrow => {
                self.bump();
                let chan = single(exprs)?;
                let value = self.expr()?;
                let span = start.to(value.span());
                Ok(Stmt::Send { chan, value, span })
            }
            _ => Ok(Stmt::Expr(single(exprs)?)),
        }
    }

    fn switch_stmt(&mut self) -> Result<SwitchStmt> {
        let kw = self.expect(TokenKind::Switch)?;
        let mut init = None;
        let mut tag = None;
        if !self.at(TokenKind::LBrace) {
            self.without_composites(|p| {
                let first = p.simple_stmt()?;
                if p.eat(TokenKind::Semi) {
                    init = Some(Box::new(first));
                    if !p.at(TokenKind::LBrace) {
                        tag = Some(expr_of(p.simple_stmt()?)?);
                    }
                } else {
                    tag = Some(expr_of(first)?);
                }
                Ok(())
            })?;
        }
        self.expect(TokenKind::LBrace)?;
        let mut cases = Vec::new();
        loop {
            while self.eat(TokenKind::Semi) {}
            if self.at(TokenKind::RBrace) {
                break;
            }
            let case_start = self.peek().span;
            let exprs = if self.eat(TokenKind::Case) {
                self.with_composites(|p| p.expr_list())?
            } else {
                self.expect(TokenKind::Default)?;
                Vec::new()
            };
            self.expect(TokenKind::Colon)?;
            let body = self.case_body()?;
            let end = body.last().map(|s| s.span()).unwrap_or(case_start);
            cases.push(SwitchCase {
                exprs,
                body,
                span: case_start.to(end),
            });
        }
        let rb = self.expect(TokenKind::RBrace)?;
        Ok(SwitchStmt {
            init,
            tag,
            cases,
            span: kw.span.to(rb.span),
        })
    }

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        let kw = self.expect(TokenKind::Select)?;
        self.expect(TokenKind::LBrace)?;
        let mut cases = Vec::new();
        loop {
            while self.eat(TokenKind::Semi) {}
            if self.at(TokenKind::RBrace) {
                break;
            }
            let case_start = self.peek().span;
            let comm = if self.eat(TokenKind::Default) {
                CommClause::Default
            } else {
                self.expect(TokenKind::Case)?;
                let exprs = self.with_composites(|p| p.expr_list())?;
                match self.peek_kind() {
                    TokenKind::Arrow => {
                        self.bump();
                        let chan = single(exprs)?;
                        let value = self.with_composites(|p| p.expr())?;
                        CommClause::Send { chan, value }
                    }
                    TokenKind::Define | TokenKind::Assign => {
                        let define = self.bump().kind == TokenKind::Define;
                        let rhs = self.with_composites(|p| p.expr())?;
                        let chan = match rhs {
                            Expr::Unary {
                                op: UnOp::Recv,
                                expr,
                                ..
                            } => *expr,
                            other => {
                                return Err(Diag::new(
                                    "expected `<-ch` on right side of select receive",
                                    other.span(),
                                ))
                            }
                        };
                        CommClause::Recv {
                            lhs: exprs,
                            define,
                            chan,
                        }
                    }
                    _ => {
                        let e = single(exprs)?;
                        match e {
                            Expr::Unary {
                                op: UnOp::Recv,
                                expr,
                                ..
                            } => CommClause::Recv {
                                lhs: Vec::new(),
                                define: false,
                                chan: *expr,
                            },
                            other => {
                                return Err(Diag::new(
                                    "select case must be a send or receive",
                                    other.span(),
                                ))
                            }
                        }
                    }
                }
            };
            self.expect(TokenKind::Colon)?;
            let body = self.case_body()?;
            let end = body.last().map(|s| s.span()).unwrap_or(case_start);
            cases.push(SelectCase {
                comm,
                body,
                span: case_start.to(end),
            });
        }
        let rb = self.expect(TokenKind::RBrace)?;
        Ok(SelectStmt {
            cases,
            span: kw.span.to(rb.span),
        })
    }

    fn case_body(&mut self) -> Result<Vec<Stmt>> {
        let mut body = Vec::new();
        loop {
            while self.eat(TokenKind::Semi) {}
            if self.at(TokenKind::Case)
                || self.at(TokenKind::Default)
                || self.at(TokenKind::RBrace)
                || self.at(TokenKind::Eof)
            {
                return Ok(body);
            }
            body.push(self.stmt()?);
        }
    }

    // --------------------------------------------------------- expressions

    fn expr_list(&mut self) -> Result<Vec<Expr>> {
        let mut out = vec![self.expr()?];
        while self.eat(TokenKind::Comma) {
            out.push(self.expr()?);
        }
        Ok(out)
    }

    fn expr(&mut self) -> Result<Expr> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::OrOr => BinOp::OrOr,
                TokenKind::AndAnd => BinOp::AndAnd,
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::NotEq,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::LtEq => BinOp::LtEq,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::GtEq => BinOp::GtEq,
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Pipe => BinOp::BitOr,
                TokenKind::Caret => BinOp::BitXor,
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                TokenKind::Amp => BinOp::BitAnd,
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => break,
            };
            let prec = op.precedence();
            if prec <= min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Amp => Some(UnOp::Addr),
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Caret => Some(UnOp::BitNot),
            TokenKind::Arrow => Some(UnOp::Recv),
            _ => None,
        };
        if let Some(op) = op {
            let t = self.bump();
            let expr = self.unary_expr()?;
            let span = t.span.to(expr.span());
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
                span,
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let mut e = self.operand()?;
        loop {
            match self.peek_kind() {
                TokenKind::Dot => {
                    self.bump();
                    if self.at(TokenKind::LParen) {
                        self.bump();
                        let ty = self.parse_type()?;
                        let rp = self.expect(TokenKind::RParen)?;
                        let span = e.span().to(rp.span);
                        e = Expr::TypeAssert {
                            expr: Box::new(e),
                            ty,
                            span,
                        };
                    } else {
                        let (name, sp) = self.ident()?;
                        let span = e.span().to(sp);
                        e = Expr::Selector {
                            expr: Box::new(e),
                            name,
                            span,
                        };
                    }
                }
                TokenKind::LParen => {
                    // Call — `make`/`new` get special type-argument parsing.
                    self.bump();
                    if let Some(builtin) = e.as_ident().map(str::to_owned) {
                        if builtin == "make" || builtin == "new" {
                            let result = self.with_composites(|p| {
                                let ty = p.parse_type()?;
                                let mut args = Vec::new();
                                while p.eat(TokenKind::Comma) {
                                    if p.at(TokenKind::RParen) {
                                        break;
                                    }
                                    args.push(p.expr()?);
                                }
                                Ok((ty, args))
                            })?;
                            let rp = self.expect(TokenKind::RParen)?;
                            let span = e.span().to(rp.span);
                            e = if builtin == "make" {
                                Expr::Make {
                                    ty: result.0,
                                    args: result.1,
                                    span,
                                }
                            } else {
                                Expr::New { ty: result.0, span }
                            };
                            continue;
                        }
                    }
                    let (args, variadic) = self.with_composites(|p| {
                        let mut args = Vec::new();
                        let mut variadic = false;
                        while !p.at(TokenKind::RParen) {
                            args.push(p.expr()?);
                            if p.eat(TokenKind::Ellipsis) {
                                variadic = true;
                            }
                            if !p.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                        Ok((args, variadic))
                    })?;
                    let rp = self.expect(TokenKind::RParen)?;
                    let span = e.span().to(rp.span);
                    e = Expr::Call {
                        fun: Box::new(e),
                        args,
                        variadic,
                        span,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let (lo, hi, is_slice) = self.with_composites(|p| {
                        if p.at(TokenKind::Colon) {
                            p.bump();
                            let hi = if p.at(TokenKind::RBracket) {
                                None
                            } else {
                                Some(Box::new(p.expr()?))
                            };
                            Ok((None, hi, true))
                        } else {
                            let first = p.expr()?;
                            if p.eat(TokenKind::Colon) {
                                let hi = if p.at(TokenKind::RBracket) {
                                    None
                                } else {
                                    Some(Box::new(p.expr()?))
                                };
                                Ok((Some(Box::new(first)), hi, true))
                            } else {
                                Ok((Some(Box::new(first)), None, false))
                            }
                        }
                    })?;
                    let rb = self.expect(TokenKind::RBracket)?;
                    let span = e.span().to(rb.span);
                    if is_slice {
                        e = Expr::SliceExpr {
                            expr: Box::new(e),
                            lo,
                            hi,
                            span,
                        };
                    } else {
                        e = Expr::Index {
                            expr: Box::new(e),
                            index: lo.expect("index expression"),
                            span,
                        };
                    }
                }
                TokenKind::LBrace if self.composite_ok && is_type_like(&e) => {
                    let (elems, rb) = self.composite_body()?;
                    let span = e.span().to(rb);
                    let ty = expr_to_type(&e);
                    e = Expr::CompositeLit { ty, elems, span };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn operand(&mut self) -> Result<Expr> {
        let t = self.peek();
        match t.kind {
            TokenKind::Ident => {
                let (name, span) = self.ident()?;
                Ok(Expr::Ident { name, span })
            }
            TokenKind::Int => {
                self.bump();
                let text = self.text(t.span).replace('_', "");
                let value = if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    i64::from_str_radix(hex, 16)
                        .map_err(|_| Diag::new("integer literal out of range", t.span))?
                } else {
                    text.parse::<i64>()
                        .map_err(|_| Diag::new("integer literal out of range", t.span))?
                };
                Ok(Expr::IntLit {
                    value,
                    span: t.span,
                })
            }
            TokenKind::Float => {
                self.bump();
                let text = self.text(t.span).replace('_', "");
                let value = text
                    .parse::<f64>()
                    .map_err(|_| Diag::new("invalid float literal", t.span))?;
                Ok(Expr::FloatLit {
                    value,
                    span: t.span,
                })
            }
            TokenKind::Str => {
                self.bump();
                let raw = self.text(t.span);
                let value = unescape(raw);
                Ok(Expr::StrLit {
                    value,
                    span: t.span,
                })
            }
            TokenKind::Rune => {
                self.bump();
                let raw = self.text(t.span);
                let inner = &raw[1..raw.len() - 1];
                let value = unescape_rune(inner);
                Ok(Expr::RuneLit {
                    value,
                    span: t.span,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.with_composites(|p| p.expr())?;
                let rp = self.expect(TokenKind::RParen)?;
                Ok(Expr::Paren {
                    expr: Box::new(inner),
                    span: t.span.to(rp.span),
                })
            }
            TokenKind::Func => {
                self.bump();
                let sig = self.signature()?;
                if self.at(TokenKind::LBrace) {
                    let body = self.with_composites(|p| p.block())?;
                    let span = t.span.to(body.span);
                    Ok(Expr::FuncLit { sig, body, span })
                } else {
                    Err(Diag::new(
                        "function literal requires a body in expression position",
                        t.span,
                    ))
                }
            }
            // Composite literals of non-ident types: []T{...}, map[K]V{...},
            // [N]T{...}, struct{...}{...}.
            TokenKind::LBracket | TokenKind::Map | TokenKind::Struct => {
                let ty = self.parse_type()?;
                let (elems, rb) = self.composite_body()?;
                Ok(Expr::CompositeLit {
                    ty: Some(ty),
                    elems,
                    span: t.span.to(rb),
                })
            }
            _ => Err(Diag::new(
                format!("expected expression, found {}", t.kind.describe()),
                t.span,
            )),
        }
    }

    /// Parses `{ elem, elem, ... }` of a composite literal; returns the
    /// elements and the span of the closing brace.
    fn composite_body(&mut self) -> Result<(Vec<CompositeElem>, Span)> {
        self.expect(TokenKind::LBrace)?;
        let mut elems = Vec::new();
        self.with_composites(|p| {
            loop {
                while p.eat(TokenKind::Semi) {}
                if p.at(TokenKind::RBrace) {
                    break;
                }
                let first = if p.at(TokenKind::LBrace) {
                    // Untyped nested literal.
                    let lb = p.peek().span;
                    let (nested, rb) = p.composite_body()?;
                    Expr::CompositeLit {
                        ty: None,
                        elems: nested,
                        span: lb.to(rb),
                    }
                } else {
                    p.expr()?
                };
                if p.eat(TokenKind::Colon) {
                    let value = if p.at(TokenKind::LBrace) {
                        let lb = p.peek().span;
                        let (nested, rb) = p.composite_body()?;
                        Expr::CompositeLit {
                            ty: None,
                            elems: nested,
                            span: lb.to(rb),
                        }
                    } else {
                        p.expr()?
                    };
                    elems.push(CompositeElem {
                        key: Some(first),
                        value,
                    });
                } else {
                    elems.push(CompositeElem {
                        key: None,
                        value: first,
                    });
                }
                if !p.eat(TokenKind::Comma) {
                    while p.eat(TokenKind::Semi) {}
                    break;
                }
            }
            Ok(())
        })?;
        while self.eat(TokenKind::Semi) {}
        let rb = self.expect(TokenKind::RBrace)?;
        Ok((elems, rb.span))
    }
}

/// Returns `true` when an expression could denote a type in a composite
/// literal head (identifier or selector chain).
fn is_type_like(e: &Expr) -> bool {
    match e {
        Expr::Ident { .. } => true,
        Expr::Selector { expr, .. } => is_type_like(expr),
        _ => false,
    }
}

/// Converts a type-like expression into a [`Type`] for composite literals.
fn expr_to_type(e: &Expr) -> Option<Type> {
    fn path_of(e: &Expr, out: &mut Vec<String>) -> bool {
        match e {
            Expr::Ident { name, .. } => {
                out.push(name.clone());
                true
            }
            Expr::Selector { expr, name, .. } => {
                if !path_of(expr, out) {
                    return false;
                }
                out.push(name.clone());
                true
            }
            _ => false,
        }
    }
    let mut path = Vec::new();
    if path_of(e, &mut path) {
        Some(Type::Named {
            path,
            args: Vec::new(),
        })
    } else {
        None
    }
}

fn single(mut exprs: Vec<Expr>) -> Result<Expr> {
    if exprs.len() == 1 {
        Ok(exprs.pop().expect("one expression"))
    } else {
        let span = exprs.first().map(|e| e.span()).unwrap_or(Span::DUMMY);
        Err(Diag::new("expected a single expression", span))
    }
}

fn idents_of(exprs: &[Expr]) -> Result<Vec<String>> {
    exprs
        .iter()
        .map(|e| {
            e.as_ident()
                .map(str::to_owned)
                .ok_or_else(|| Diag::new("left side of `:=` must be identifiers", e.span()))
        })
        .collect()
}

fn expr_of(stmt: Stmt) -> Result<Expr> {
    match stmt {
        Stmt::Expr(e) => Ok(e),
        other => Err(Diag::new("expected a condition expression", other.span())),
    }
}

fn unescape(raw: &str) -> String {
    if raw.starts_with('`') {
        return raw.trim_matches('`').to_owned();
    }
    let inner = &raw[1..raw.len().saturating_sub(1)];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('\'') => out.push('\''),
                Some('0') => out.push('\0'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn unescape_rune(inner: &str) -> char {
    let s = unescape(&format!("\"{inner}\""));
    s.chars().next().unwrap_or('\0')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_and_imports() {
        let f =
            parse_file("package main\nimport \"sync\"\nimport (\n\tfoo \"bar/foo\"\n)\n").unwrap();
        assert_eq!(f.package, "main");
        assert_eq!(f.imports.len(), 2);
        assert_eq!(f.imports[0].path, "sync");
        assert_eq!(f.imports[1].alias.as_deref(), Some("foo"));
    }

    #[test]
    fn parses_waitgroup_goroutine_program() {
        let src = r#"
package main

import "sync"

func SomeFunction() error {
	err := someWork()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = Task1(); err != nil {
			doSomething()
		}
	}()
	if err = Task2(); err != nil {
		doOther()
	}
	wg.Wait()
	return err
}
"#;
        let f = parse_file(src).unwrap();
        let func = f.find_func("SomeFunction").unwrap();
        let body = func.body.as_ref().unwrap();
        assert!(body.stmts.len() >= 6);
        assert!(matches!(body.stmts[4], Stmt::Go { .. }));
    }

    #[test]
    fn parses_method_with_receiver() {
        let f = parse_file(
            "package p\nfunc (s *storeObject) Process(ctx *Context, req *Request) error { return nil }\n",
        )
        .unwrap();
        let func = f.funcs().next().unwrap();
        assert_eq!(func.name, "Process");
        let recv = func.receiver.as_ref().unwrap();
        assert_eq!(recv.name, "s");
        assert!(recv.ty.is_named("storeObject"));
        assert_eq!(func.sig.params.len(), 2);
    }

    #[test]
    fn parses_generic_type_and_method() {
        let src = "package p\ntype Scanner[ROW any] struct {\n\tlockMap sync.Map\n}\nfunc (t *Scanner[ROW]) runShards() {\n}\n";
        let f = parse_file(src).unwrap();
        let td = f.find_type("Scanner").unwrap();
        assert_eq!(td.type_params.len(), 1);
        assert!(matches!(td.ty, Type::Struct(_)));
    }

    #[test]
    fn parses_if_with_init_and_composite_ambiguity() {
        let src = "package p\nfunc f() {\n\tif err := g(); err != nil {\n\t\th()\n\t}\n\tif x == limits {\n\t\th()\n\t}\n}\n";
        let f = parse_file(src).unwrap();
        let func = f.find_func("f").unwrap();
        assert_eq!(func.body.as_ref().unwrap().stmts.len(), 2);
    }

    #[test]
    fn composite_literal_in_call_args_still_works() {
        let src = "package p\nfunc f() {\n\tg(Point{x: 1, y: 2})\n\treq := Request{Limit: limit}\n\tuse(req)\n}\n";
        let f = parse_file(src).unwrap();
        assert!(f.find_func("f").is_some());
    }

    #[test]
    fn parses_for_range_and_three_clause() {
        let src = r#"
package p

func f(nums []int) {
	for _, num := range nums {
		use(num)
	}
	for i := 0; i < 100; i++ {
		use(i)
	}
	for {
		break
	}
	for cond() {
		continue
	}
	for k := range m {
		use(k)
	}
}
"#;
        let f = parse_file(src).unwrap();
        let body = f.find_func("f").unwrap().body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 5);
        assert!(matches!(body.stmts[0], Stmt::Range(_)));
        assert!(matches!(body.stmts[1], Stmt::For(_)));
        assert!(matches!(body.stmts[4], Stmt::Range(_)));
    }

    #[test]
    fn parses_select_with_all_comm_kinds() {
        let src = r#"
package p

func f(ch chan int, done chan struct{}) {
	select {
	case v := <-ch:
		use(v)
	case ch <- 1:
		noop()
	case <-done:
		return
	default:
		noop()
	}
}
"#;
        let f = parse_file(src).unwrap();
        let body = f.find_func("f").unwrap().body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Select(s) => {
                assert_eq!(s.cases.len(), 4);
                assert!(matches!(
                    s.cases[0].comm,
                    CommClause::Recv { define: true, .. }
                ));
                assert!(matches!(s.cases[1].comm, CommClause::Send { .. }));
                assert!(matches!(
                    s.cases[2].comm,
                    CommClause::Recv { define: false, .. }
                ));
                assert!(matches!(s.cases[3].comm, CommClause::Default));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_switch_with_tag_and_default() {
        let src = "package p\nfunc f(x int) {\n\tswitch x {\n\tcase 0:\n\t\ta()\n\tcase 1, 2:\n\t\tb()\n\tdefault:\n\t\tc()\n\t}\n}\n";
        let f = parse_file(src).unwrap();
        match &f.find_func("f").unwrap().body.as_ref().unwrap().stmts[0] {
            Stmt::Switch(s) => {
                assert_eq!(s.cases.len(), 3);
                assert_eq!(s.cases[1].exprs.len(), 2);
                assert!(s.cases[2].exprs.is_empty());
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn parses_channel_ops_and_make() {
        let src = r#"
package p

func f() {
	ch := make(chan struct{}, 1)
	m := make(map[string]int)
	s := make([]int, 0, 8)
	ch <- struct{}{}
	<-ch
	v, ok := m["k"]
	use(s, v, ok)
}
"#;
        let f = parse_file(src).unwrap();
        let body = f.find_func("f").unwrap().body.as_ref().unwrap();
        assert!(matches!(body.stmts[0], Stmt::ShortVar { .. }));
        assert!(matches!(body.stmts[3], Stmt::Send { .. }));
    }

    #[test]
    fn parses_func_literal_iife_with_result_type() {
        // Listing 9 pattern: case <-func() chan struct{} { ... }():
        let src = r#"
package p

func f() {
	select {
	case <-func() chan struct{} {
		lk.Lock()
		defer lk.Unlock()
		return chans[idx]
	}():
		return
	}
}
"#;
        parse_file(src).unwrap();
    }

    #[test]
    fn parses_type_assert_and_range_api() {
        let src = r#"
package p

func f(m sync.Map) {
	m.Range(func(key, value interface{}) bool {
		k := key.(ShardKey)
		use(k)
		return true
	})
}
"#;
        parse_file(src).unwrap();
    }

    #[test]
    fn parses_labeled_break() {
        let src = r#"
package p

func f(stop chan struct{}) {
Loop:
	for {
		select {
		case <-stop:
			break Loop
		default:
			work()
		}
	}
}
"#;
        let f = parse_file(src).unwrap();
        let body = f.find_func("f").unwrap().body.as_ref().unwrap();
        assert!(matches!(body.stmts[0], Stmt::Labeled { .. }));
    }

    #[test]
    fn parses_multi_assign_and_incdec() {
        let stmts = parse_stmts("a, b = b, a\ni++\nj--\nx += 2").unwrap();
        assert_eq!(stmts.len(), 4);
        assert!(matches!(&stmts[0], Stmt::Assign { lhs, .. } if lhs.len() == 2));
        assert!(matches!(stmts[1], Stmt::IncDec { inc: true, .. }));
        assert!(matches!(
            stmts[3],
            Stmt::Assign {
                op: AssignOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn parses_slice_expr() {
        let e = parse_expr("xs[1:3]").unwrap();
        assert!(matches!(e, Expr::SliceExpr { .. }));
        let e = parse_expr("xs[:n]").unwrap();
        assert!(matches!(e, Expr::SliceExpr { lo: None, .. }));
    }

    #[test]
    fn parses_table_driven_test() {
        let src = r#"
package p

func TestUploadReaderRead(t *testing.T) {
	sampleHash := md5.New()
	tests := []struct {
		name string
		hash hash.Hash
	}{
		{name: "Success - 1", hash: sampleHash},
		{name: "Success - 2", hash: sampleHash},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			use(tt.hash)
		})
	}
}
"#;
        let f = parse_file(src).unwrap();
        assert!(f.find_func("TestUploadReaderRead").is_some());
    }

    #[test]
    fn parses_variadic_params_and_spread() {
        let src = "package p\nfunc f(prefix string, xs ...int) {\n\tg(xs...)\n}\n";
        let f = parse_file(src).unwrap();
        let func = f.find_func("f").unwrap();
        assert!(func.sig.params[1].variadic);
    }

    #[test]
    fn parses_unnamed_result_tuple() {
        let src = "package p\nfunc f() (*Response, error) { return nil, nil }\n";
        let f = parse_file(src).unwrap();
        let func = f.find_func("f").unwrap();
        assert_eq!(func.sig.results.len(), 2);
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_file("package p\nfunc f() { if }").is_err());
        assert!(parse_file("func f() {}").is_err());
        assert!(parse_expr("1 +").is_err());
    }

    #[test]
    fn precedence_shapes_tree() {
        let e = parse_expr("1 + 2*3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected add at root, got {other:?}"),
        }
        let e = parse_expr("a == b && c != d").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::AndAnd,
                ..
            }
        ));
    }

    #[test]
    fn parses_struct_with_embedded_and_tagged_fields() {
        let src = "package p\ntype T struct {\n\tsync.Mutex\n\tName string `json:\"name\"`\n\ta, b int\n}\n";
        let f = parse_file(src).unwrap();
        match &f.find_type("T").unwrap().ty {
            Type::Struct(fields) => {
                assert_eq!(fields.len(), 3);
                assert!(fields[0].names.is_empty());
                assert_eq!(fields[2].names, vec!["a", "b"]);
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn parses_atomic_and_pointer_ops() {
        let src = "package p\nfunc f(n *int32) {\n\tatomic.StoreInt32(n, 0)\n\tv := atomic.LoadInt32(n)\n\tuse(v)\n\t*n = 5\n\tp := &v\n\tuse(p)\n}\n";
        parse_file(src).unwrap();
    }
}
