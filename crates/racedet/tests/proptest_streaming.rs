//! Differential property tests for the shadow-state lifecycle.
//!
//! Random access/fork/join/exit traces are replayed twice: once
//! through a detector that retires exited threads (`thread_exit`) and
//! collects dead shadow state at arbitrary points (`collect` with the
//! live frontier), and once through a never-collecting reference that
//! receives only the plain event stream. Race reports and every
//! *logical* `DetStats` counter must be bit-identical — the lifecycle
//! is physical, full stop.
//!
//! The trace generator is shrinkable by construction: thread and lock
//! picks are indices reduced modulo the live set at interpretation
//! time, so any sub-vector of steps is itself a valid trace.

use proptest::prelude::*;
use racedet::{Detector, DetectorOptions, ThreadId, DENSE_LIMIT};

/// One step of a random multi-threaded trace.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Spawn a child of the picked live thread.
    Fork {
        pick: u8,
    },
    /// Join a non-main live thread into main, then retire it — the
    /// exit is ordered before everything later, so its clock slot is
    /// eligible for reuse.
    ExitJoined {
        pick: u8,
    },
    /// Retire a non-main live thread with no join — its last accesses
    /// stay unordered and must still race with later conflicting ones.
    ExitDetached {
        pick: u8,
    },
    Read {
        pick: u8,
        addr: u64,
    },
    Write {
        pick: u8,
        addr: u64,
    },
    /// acquire+release of one of three locks (ticks the thread's
    /// clock, which is what pushes old states below the frontier).
    Sync {
        pick: u8,
        lock: u8,
    },
    /// GC side only: collect at the current live frontier.
    Collect,
}

/// Addresses cluster on a few dense cells (so collected state is
/// routinely re-accessed — the hard case for transparency) plus a few
/// sparse cells past the dense/sparse crossover.
fn addr_strategy() -> impl Strategy<Value = u64> {
    (0u64..15).prop_map(|a| {
        if a < 12 {
            a
        } else {
            DENSE_LIMIT as u64 + (a - 12)
        }
    })
}

/// Weighted step mix, encoded as a mapped tuple so the trace stays a
/// flat, shrinkable vector of independently drawn steps.
fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..23, any::<u8>(), addr_strategy(), 0u8..3).prop_map(
        |(kind, pick, addr, lock)| match kind {
            0 | 1 => Step::Fork { pick },
            2 | 3 => Step::ExitJoined { pick },
            4 => Step::ExitDetached { pick },
            5..=10 => Step::Read { pick, addr },
            11..=16 => Step::Write { pick, addr },
            17..=19 => Step::Sync { pick, lock },
            _ => Step::Collect,
        },
    )
}

/// Replays `steps` through a lifecycle-managed detector and a plain
/// reference. Both see the identical fork/join/access/sync stream;
/// only the GC side gets `thread_exit` and `collect` calls.
fn diff_replay(steps: &[Step], sample_mod: u32) -> (Detector, Detector) {
    let opts = DetectorOptions { sample_mod };
    let mut gc = Detector::with_options(opts);
    let mut refd = Detector::with_options(opts);
    let mut live: Vec<ThreadId> = vec![0];
    for s in steps {
        match *s {
            Step::Fork { pick } => {
                if live.len() >= 6 {
                    continue;
                }
                let p = live[pick as usize % live.len()];
                let a = gc.fork(p);
                let b = refd.fork(p);
                assert_eq!(a, b, "external thread ids must stay in lock-step");
                live.push(a);
            }
            Step::ExitJoined { pick } => {
                if live.len() < 2 {
                    continue;
                }
                let t = live.remove(1 + pick as usize % (live.len() - 1));
                gc.join_thread(0, t);
                refd.join_thread(0, t);
                gc.thread_exit(t);
            }
            Step::ExitDetached { pick } => {
                if live.len() < 2 {
                    continue;
                }
                let t = live.remove(1 + pick as usize % (live.len() - 1));
                gc.thread_exit(t);
            }
            Step::Read { pick, addr } => {
                let t = live[pick as usize % live.len()];
                let frame = pick as u32;
                gc.read(t, addr, 0, &[frame]);
                refd.read(t, addr, 0, &[frame]);
            }
            Step::Write { pick, addr } => {
                let t = live[pick as usize % live.len()];
                let frame = pick as u32;
                gc.write(t, addr, 0, &[frame]);
                refd.write(t, addr, 0, &[frame]);
            }
            Step::Sync { pick, lock } => {
                let t = live[pick as usize % live.len()];
                let m = 900 + u64::from(lock);
                gc.acquire(t, m);
                gc.release(t, m);
                refd.acquire(t, m);
                refd.release(t, m);
            }
            Step::Collect => {
                if let Some(f) = gc.live_frontier() {
                    gc.collect(&f);
                }
            }
        }
    }
    (gc, refd)
}

proptest! {
    // The tentpole differential: GC + clock reclamation change
    // nothing observable on any trace the generator can produce.
    #[test]
    fn lifecycle_is_differentially_transparent(
        steps in proptest::collection::vec(step_strategy(), 1..140)
    ) {
        let (gc, refd) = diff_replay(&steps, 1);
        prop_assert_eq!(gc.races(), refd.races(), "race reports diverged");
        prop_assert_eq!(gc.stats(), refd.stats(), "logical counters diverged");
        // Reclamation is one-sided by construction: the reference
        // never exits, so its width only ever grows.
        prop_assert!(gc.clock_width() <= refd.clock_width());
    }

    // Sampling composes with the lifecycle: with any deterministic
    // `sample_mod` on both sides, collect/exit remain invisible.
    #[test]
    fn lifecycle_is_transparent_under_sampling(
        steps in proptest::collection::vec(step_strategy(), 1..80),
        sample_mod in 1u32..4,
    ) {
        let (gc, refd) = diff_replay(&steps, sample_mod);
        prop_assert_eq!(gc.races(), refd.races());
        prop_assert_eq!(gc.stats(), refd.stats());
    }

    // Collected shadow memory never exceeds the uncollected
    // reference's, and a full-trace collect after every thread joined
    // leaves no live state behind.
    #[test]
    fn collect_is_monotone_on_memory(
        steps in proptest::collection::vec(step_strategy(), 1..100)
    ) {
        let (mut gc, refd) = diff_replay(&steps, 1);
        prop_assert!(gc.live_states() <= refd.live_states());
        // Quiesce: tick main past everything it saw, then collect at
        // main's own frontier. Only states unordered w.r.t. main (the
        // detached-exit leftovers and concurrent live threads) survive.
        if let Some(f) = gc.live_frontier() {
            gc.collect(&f);
            prop_assert!(gc.live_states() <= refd.live_states());
        }
    }
}
