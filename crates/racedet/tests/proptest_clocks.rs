//! Property tests: vector-clock laws the FastTrack detector relies on.

use proptest::prelude::*;
use racedet::VectorClock;

fn clock_strategy() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..50, 0..8).prop_map(|vals| {
        let mut c = VectorClock::new();
        for (i, v) in vals.into_iter().enumerate() {
            c.set(i, v);
        }
        c
    })
}

proptest! {
    #[test]
    fn join_is_commutative(a in clock_strategy(), b in clock_strategy()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert!(ab.le(&ba) && ba.le(&ab));
    }

    #[test]
    fn join_is_idempotent(a in clock_strategy()) {
        let mut aa = a.clone();
        aa.join(&a);
        prop_assert!(aa.le(&a) && a.le(&aa));
    }

    #[test]
    fn join_is_upper_bound(a in clock_strategy(), b in clock_strategy()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn join_is_associative(a in clock_strategy(), b in clock_strategy(), c in clock_strategy()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        prop_assert!(left.le(&right) && right.le(&left));
    }

    #[test]
    fn le_is_reflexive_and_antisymmetric(a in clock_strategy(), b in clock_strategy()) {
        prop_assert!(a.le(&a));
        if a.le(&b) && b.le(&a) {
            for t in 0..8 {
                prop_assert_eq!(a.get(t), b.get(t));
            }
        }
    }

    #[test]
    fn tick_strictly_advances_own_component(mut a in clock_strategy(), t in 0usize..8) {
        let before = a.get(t);
        let after = a.tick(t);
        prop_assert_eq!(after, before + 1);
        prop_assert_eq!(a.get(t), before + 1);
    }

    #[test]
    fn detector_never_reports_sequential_races(
        ops in proptest::collection::vec((0u64..4, any::<bool>()), 1..40)
    ) {
        // A single thread can never race with itself.
        let mut d = racedet::Detector::new();
        for (addr, is_write) in ops {
            if is_write {
                d.write(0, addr, 0, &[1]);
            } else {
                d.read(0, addr, 0, &[1]);
            }
        }
        prop_assert!(d.races().is_empty());
    }

    #[test]
    fn mutex_discipline_never_races(
        ops in proptest::collection::vec((0u64..3, any::<bool>()), 1..20)
    ) {
        // Two threads alternating under one mutex: never a race.
        let mut d = racedet::Detector::new();
        let t1 = d.fork(0);
        let m = 99;
        for (i, (addr, is_write)) in ops.iter().enumerate() {
            let t = if i % 2 == 0 { 0 } else { t1 };
            d.acquire(t, m);
            if *is_write {
                d.write(t, *addr, 0, &[t as u32]);
            } else {
                d.read(t, *addr, 0, &[t as u32]);
            }
            d.release(t, m);
        }
        prop_assert!(d.races().is_empty(), "races: {:?}", d.races().len());
    }
}
