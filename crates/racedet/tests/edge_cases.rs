//! FastTrack edge cases the inline unit suite leaves uncovered:
//! fork/join vector-clock transitivity, the epoch → read-shared
//! promotion machinery, and bug-hash stability across permutations of
//! the same race.

use racedet::{Access, AccessKind, Detector, Frame, GoroutineInfo, RaceReport};

const A: u64 = 100;
const B: u64 = 200;
const V: u32 = 1;

fn stack(id: u32) -> Vec<u32> {
    vec![id]
}

// ------------------------------------------------ fork/join transitivity

/// Join edges compose transitively: a grandchild's writes become visible
/// to the grandparent through a chain of joins.
#[test]
fn join_chain_is_transitive() {
    let mut d = Detector::new();
    let child = d.fork(0);
    let grandchild = d.fork(child);
    d.write(grandchild, A, V, &stack(1));
    d.join_thread(child, grandchild); // grandchild ⊑ child
    d.join_thread(0, child); // child ⊑ root
    d.write(0, A, V, &stack(2));
    assert!(d.races().is_empty(), "{:?}", d.races());
}

/// Joining one child does not order a sibling's accesses.
#[test]
fn join_does_not_cover_siblings() {
    let mut d = Detector::new();
    let t1 = d.fork(0);
    let t2 = d.fork(0);
    d.write(t1, A, V, &stack(1));
    d.write(t2, B, V, &stack(2));
    d.join_thread(0, t1);
    d.write(0, A, V, &stack(3)); // ordered after t1's write: fine
    d.write(0, B, V, &stack(4)); // NOT ordered after t2's write: race
    assert_eq!(d.races().len(), 1);
    assert_eq!(d.races()[0].addr, B);
}

/// A fork after a join sees everything the joined child did: the
/// fork-snapshot must include joined clocks, not just the parent's own
/// increments.
#[test]
fn fork_after_join_inherits_joined_clock() {
    let mut d = Detector::new();
    let t1 = d.fork(0);
    d.write(t1, A, V, &stack(1));
    d.join_thread(0, t1);
    let t2 = d.fork(0); // forked after the join
    d.write(t2, A, V, &stack(2));
    assert!(d.races().is_empty(), "{:?}", d.races());
}

/// The fork tick isolates the parent's *post-fork* accesses from the
/// child: the child must not appear ordered with writes the parent does
/// after spawning it.
#[test]
fn parent_post_fork_writes_race_with_child() {
    let mut d = Detector::new();
    let t1 = d.fork(0);
    d.write(0, A, V, &stack(1)); // after the fork
    d.write(t1, A, V, &stack(2));
    assert_eq!(d.races().len(), 1);
}

// ---------------------------------------------- read-shared promotion

/// Ordered same-variable reads by different threads do NOT promote to
/// read-shared: the epoch just advances (FastTrack's exclusive-read fast
/// path). Observable through the event counter staying on the fast path
/// and a subsequent ordered write staying race-free.
#[test]
fn ordered_reads_keep_exclusive_epoch() {
    let mut d = Detector::new();
    d.read(0, A, V, &stack(1));
    let t1 = d.fork(0); // t1 ⊒ root's read
    d.read(t1, A, V, &stack(2)); // ordered: replaces the epoch
    d.write(t1, A, V, &stack(3)); // same thread: no race
    assert!(d.races().is_empty(), "{:?}", d.races());
}

/// Unordered reads promote the variable to read-shared, and a later
/// write unordered with only *some* readers races with exactly those.
#[test]
fn shared_promotion_tracks_each_reader_separately() {
    let mut d = Detector::new();
    let t1 = d.fork(0);
    let t2 = d.fork(0);
    d.read(t1, A, V, &stack(1));
    d.read(t2, A, V, &stack(2)); // unordered with t1's read: promotes
    d.join_thread(0, t1); // root now ⊒ t1's read, but not t2's
    d.write(0, A, V, &stack(3));
    assert_eq!(d.races().len(), 1, "{:?}", d.races());
    assert_eq!(
        d.races()[0].prev.tid,
        t2,
        "must race with the unjoined reader only"
    );
    assert_eq!(d.races()[0].prev.kind, AccessKind::Read);
}

/// A write collapses read-shared state (FastTrack's WriteShared rule):
/// after the write, a new exclusive-read epoch begins and old reader
/// epochs no longer produce duplicate races.
#[test]
fn write_collapses_shared_read_state() {
    let mut d = Detector::new();
    let t1 = d.fork(0);
    let t2 = d.fork(0);
    d.read(t1, A, V, &stack(1));
    d.read(t2, A, V, &stack(2));
    d.write(0, A, V, &stack(3)); // races with both readers
    assert_eq!(d.races().len(), 2);
    // A later read ordered after the write sees the collapsed state:
    // same thread, no new race.
    d.read(0, A, V, &stack(4));
    assert_eq!(d.races().len(), 2);
}

/// Re-reading in the same epoch takes the same-epoch fast path even in
/// shared mode (no duplicate bookkeeping, no spurious races).
#[test]
fn shared_mode_rereads_are_idempotent() {
    let mut d = Detector::new();
    let t1 = d.fork(0);
    let t2 = d.fork(0);
    d.read(t1, A, V, &stack(1));
    d.read(t2, A, V, &stack(2));
    d.read(t1, A, V, &stack(1)); // same epoch, shared state
    d.read(t2, A, V, &stack(2));
    assert!(d.races().is_empty());
    d.write(0, A, V, &stack(3));
    // Still exactly one race per reader, not per read event.
    assert_eq!(d.races().len(), 2);
}

// ------------------------------------------------- bug-hash stability

fn access(kind: AccessKind, tid: usize, frames: &[(&str, &str, u32)]) -> Access {
    Access {
        kind,
        stack: frames
            .iter()
            .map(|(f, file, line)| Frame::new(*f, *file, *line))
            .collect(),
        goroutine: GoroutineInfo {
            id: tid,
            creation: Vec::new(),
        },
    }
}

/// The same race detected under two schedule permutations — the write
/// observed first in one run and second in the other, at shifted line
/// numbers, with different goroutine ids — hashes identically.
#[test]
fn bug_hash_survives_schedule_permutations() {
    let writer = [("app.Work.func1", "counter.go", 12)];
    let reader = [
        ("app.total", "counter.go", 20),
        ("app.TestWork", "counter.go", 31),
    ];
    // Run 1: the read triggers detection (read seen second).
    let r1 = RaceReport {
        accesses: [
            access(AccessKind::Read, 2, &reader),
            access(AccessKind::Write, 1, &writer),
        ],
        var_name: "tally".into(),
        addr: 77,
    };
    // Run 2 (another schedule): the write triggers detection, the
    // goroutine got a different id, and the fix moved lines around.
    let shifted_writer = [("app.Work.func1", "counter.go", 14)];
    let shifted_reader = [
        ("app.total", "counter.go", 25),
        ("app.TestWork", "counter.go", 40),
    ];
    let r2 = RaceReport {
        accesses: [
            access(AccessKind::Write, 5, &shifted_writer),
            access(AccessKind::Read, 3, &shifted_reader),
        ],
        var_name: "tally".into(),
        addr: 4242, // allocation order differs across schedules
    };
    assert_eq!(r1.bug_hash(), r2.bug_hash());
}

/// Hash stability has limits that matter for targeting: a different racy
/// variable or a different function in either stack is a different bug.
#[test]
fn bug_hash_distinguishes_distinct_races() {
    let base = RaceReport {
        accesses: [
            access(AccessKind::Write, 1, &[("app.f", "a.go", 1)]),
            access(AccessKind::Write, 2, &[("app.g", "a.go", 2)]),
        ],
        var_name: "x".into(),
        addr: 1,
    };
    let other_var = RaceReport {
        var_name: "y".into(),
        ..base.clone()
    };
    let other_func = RaceReport {
        accesses: [
            access(AccessKind::Write, 1, &[("app.f", "a.go", 1)]),
            access(AccessKind::Write, 2, &[("app.h", "a.go", 2)]),
        ],
        ..base.clone()
    };
    assert_ne!(base.bug_hash(), other_var.bug_hash());
    assert_ne!(base.bug_hash(), other_func.bug_hash());
}
