//! `racedet` — a FastTrack-style dynamic data-race detector.
//!
//! This crate is the ThreadSanitizer substitute of the Dr.Fix
//! reproduction (PLDI 2025): the `govm` runtime feeds it memory accesses
//! and happens-before edges, and it produces race reports in the shape
//! Dr.Fix's Race Info Extractor consumes (two access stacks plus
//! goroutine creation stacks, a stable bug hash).
//!
//! # Example
//!
//! ```
//! use racedet::{Detector, AccessKind};
//!
//! let mut d = Detector::new();
//! let child = d.fork(0);
//! d.write(0, 0x10, 1, &[100]);
//! d.write(child, 0x10, 1, &[200]);
//! assert_eq!(d.races().len(), 1);
//! assert_eq!(d.races()[0].cur.kind, AccessKind::Write);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod fasttrack;
pub mod report;

pub use clock::{Epoch, ThreadId, VectorClock};
pub use fasttrack::{
    Addr, DetStats, Detector, DetectorOptions, FastBuildHasher, FastHasher, FastPath, FrameId,
    NameId, RawAccess, RawRace, ShadowStats, StackGen, DENSE_LIMIT, PAGE_SIZE,
};
pub use report::{Access, AccessKind, Frame, GoroutineInfo, RaceReport};
