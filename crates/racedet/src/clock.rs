//! Vector clocks and epochs, the core of the FastTrack detector.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a logical thread (goroutine) inside one program run.
pub type ThreadId = usize;

/// A vector clock: for each thread, the last-known logical time.
///
/// Missing entries are implicitly zero, so clocks grow lazily as higher
/// thread ids appear.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// Creates an empty (all-zero) clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Returns the component for thread `t` (zero if absent).
    pub fn get(&self, t: ThreadId) -> u32 {
        self.entries.get(t).copied().unwrap_or(0)
    }

    /// Sets the component for thread `t`.
    pub fn set(&mut self, t: ThreadId, value: u32) {
        if self.entries.len() <= t {
            self.entries.resize(t + 1, 0);
        }
        self.entries[t] = value;
    }

    /// Increments the component for thread `t` and returns the new value.
    pub fn tick(&mut self, t: ThreadId) -> u32 {
        let v = self.get(t) + 1;
        self.set(t, v);
        v
    }

    /// Overwrites `self` with `other`'s contents, reusing `self`'s
    /// buffer. The reuse is what lets sync objects be re-released on
    /// every lock handoff without a fresh clock allocation.
    pub fn copy_from(&mut self, other: &VectorClock) {
        self.entries.clear();
        self.entries.extend_from_slice(&other.entries);
    }

    /// Joins `other` into `self` (pointwise maximum).
    pub fn join(&mut self, other: &VectorClock) {
        if self.entries.len() < other.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (i, &v) in other.entries.iter().enumerate() {
            if v > self.entries[i] {
                self.entries[i] = v;
            }
        }
    }

    /// Meets `other` into `self` (pointwise minimum). Components absent
    /// on either side are implicitly zero, so the result never grows:
    /// trailing entries beyond `other`'s width drop to zero. This is
    /// the retirement-frontier combinator — the meet of every live
    /// thread's clock is the largest clock guaranteed to happen-before
    /// every future event.
    pub fn meet(&mut self, other: &VectorClock) {
        for (i, v) in self.entries.iter_mut().enumerate() {
            let o = other.get(i);
            if o < *v {
                *v = o;
            }
        }
    }

    /// Returns `true` if `self` happens-before-or-equals `other`
    /// (pointwise `<=`).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i))
    }

    /// Number of explicit components (highest thread id seen + 1).
    pub fn width(&self) -> usize {
        self.entries.len()
    }

    /// Iterates `(thread, value)` pairs with non-zero values.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, u32)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0)
            .map(|(i, &v)| (i, v))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (t, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}@{t}")?;
        }
        write!(f, "⟩")
    }
}

/// An epoch `c@t`: a scalar clock value attributed to one thread.
///
/// FastTrack's key optimisation: most variables are accessed by one
/// thread at a time, so a full vector clock is unnecessary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Epoch {
    /// Owning thread.
    pub tid: ThreadId,
    /// Clock value.
    pub clock: u32,
}

impl Epoch {
    /// The zero epoch (never conflicts).
    pub const ZERO: Epoch = Epoch { tid: 0, clock: 0 };

    /// Creates `clock@tid`.
    pub fn new(tid: ThreadId, clock: u32) -> Self {
        Epoch { tid, clock }
    }

    /// Returns `true` if this epoch happens-before-or-equals clock `c`.
    pub fn le(&self, c: &VectorClock) -> bool {
        self.clock <= c.get(self.tid)
    }

    /// Returns `true` if this is the zero epoch.
    pub fn is_zero(&self) -> bool {
        self.clock == 0
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn le_is_partial_order() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = VectorClock::new();
        b.set(0, 2);
        b.set(1, 1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        // Incomparable pair.
        let mut c = VectorClock::new();
        c.set(1, 9);
        assert!(!c.le(&b));
        assert!(!b.le(&c));
    }

    #[test]
    fn meet_is_pointwise_min_and_never_grows() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 5);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 9);
        a.meet(&b);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 0, "absent on one side means zero");
        assert_eq!(a.get(2), 0);
        assert!(a.width() <= 3, "meet must not grow the clock");
        // The meet happens-before both operands.
        let mut c = VectorClock::new();
        c.set(0, 1);
        assert!(a.le(&c));
        assert!(a.le(&b));
    }

    #[test]
    fn tick_increments_own_component() {
        let mut a = VectorClock::new();
        assert_eq!(a.tick(3), 1);
        assert_eq!(a.tick(3), 2);
        assert_eq!(a.get(3), 2);
        assert_eq!(a.get(0), 0);
    }

    #[test]
    fn epoch_le_checks_only_own_component() {
        let e = Epoch::new(1, 4);
        let mut c = VectorClock::new();
        c.set(1, 4);
        assert!(e.le(&c));
        c.set(1, 3);
        assert!(!e.le(&c));
        assert!(Epoch::ZERO.le(&VectorClock::new()));
    }

    #[test]
    fn display_formats() {
        let mut c = VectorClock::new();
        c.set(0, 2);
        c.set(2, 7);
        assert_eq!(c.to_string(), "⟨2@0, 7@2⟩");
        assert_eq!(Epoch::new(1, 3).to_string(), "3@1");
    }
}
