//! Race reports in the shape the Go race detector (ThreadSanitizer)
//! produces: two unordered access stacks plus the creation stacks of the
//! involved goroutines, limited to two ancestry levels (§5.6 of the
//! paper notes this TSan limitation, which Dr.Fix operates within).

use crate::clock::ThreadId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One stack frame: function name plus source coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// Function (or method) name.
    pub function: String,
    /// Source file name.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
}

impl Frame {
    /// Creates a frame.
    pub fn new(function: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        Frame {
            function: function.into(),
            file: file.into(),
            line,
        }
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}:{}", self.function, self.file, self.line)
    }
}

/// Whether an access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Memory read.
    Read,
    /// Memory write.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("Read"),
            AccessKind::Write => f.write_str("Write"),
        }
    }
}

/// The goroutine context of an access: its id and the stacks at which its
/// ancestors spawned it (innermost first, at most two levels).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GoroutineInfo {
    /// Goroutine id within the run.
    pub id: ThreadId,
    /// Creation stacks: `creation[0]` is the parent's stack at the `go`
    /// statement, `creation[1]` the grandparent's (TSan keeps two levels).
    pub creation: Vec<Vec<Frame>>,
}

/// One side of a data race.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Read or write.
    pub kind: AccessKind,
    /// Call stack at the access, innermost frame first.
    pub stack: Vec<Frame>,
    /// Goroutine context.
    pub goroutine: GoroutineInfo,
}

impl Access {
    /// Innermost (leaf) frame of the access, if any.
    pub fn leaf(&self) -> Option<&Frame> {
        self.stack.first()
    }

    /// Outermost (root) frame of the access, if any.
    pub fn root(&self) -> Option<&Frame> {
        self.stack.last()
    }
}

/// A full data-race report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport {
    /// The two unordered accesses; by convention `accesses[0]` is the
    /// access observed second (the one that triggered detection).
    pub accesses: [Access; 2],
    /// Best-effort name of the racy variable (heap cell label).
    pub var_name: String,
    /// Abstract address of the racy cell.
    pub addr: u64,
}

impl RaceReport {
    /// A stable identity for the race, derived from the function names in
    /// both stacks (§4.2: "function names from a bug stack trace form a
    /// stable hash, later used to check if a fix eliminated the race").
    ///
    /// The hash is symmetric in the two accesses and independent of line
    /// numbers, so it survives fixes that move code within functions.
    pub fn bug_hash(&self) -> String {
        let mut names: Vec<&str> = self
            .accesses
            .iter()
            .flat_map(|a| a.stack.iter().map(|f| f.function.as_str()))
            .collect();
        names.sort_unstable();
        let mut h = Fnv1a::new();
        h.write(self.var_name.as_bytes());
        for n in names {
            h.write(b"|");
            h.write(n.as_bytes());
        }
        format!("{:016x}", h.finish())
    }

    /// Renders the report in the familiar `WARNING: DATA RACE` format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("==================\nWARNING: DATA RACE\n");
        for a in &self.accesses {
            let _ = writeln!(
                out,
                "{} at {} by goroutine {}:",
                a.kind, self.var_name, a.goroutine.id
            );
            for fr in &a.stack {
                let _ = writeln!(out, "  {fr}");
            }
            for (lvl, stack) in a.goroutine.creation.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "Goroutine {} (ancestry level {}) created at:",
                    a.goroutine.id, lvl
                );
                for fr in stack {
                    let _ = writeln!(out, "  {fr}");
                }
            }
        }
        out.push_str("==================\n");
        out
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Minimal FNV-1a used for stable, dependency-free hashing.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(kind: AccessKind, funcs: &[&str], gid: ThreadId) -> Access {
        Access {
            kind,
            stack: funcs
                .iter()
                .enumerate()
                .map(|(i, f)| Frame::new(*f, "main.go", 10 + i as u32))
                .collect(),
            goroutine: GoroutineInfo {
                id: gid,
                creation: vec![vec![Frame::new("SomeFunction", "main.go", 8)]],
            },
        }
    }

    fn report() -> RaceReport {
        RaceReport {
            accesses: [
                access(AccessKind::Write, &["closure1", "SomeFunction"], 1),
                access(AccessKind::Write, &["SomeFunction"], 0),
            ],
            var_name: "err".into(),
            addr: 42,
        }
    }

    #[test]
    fn bug_hash_is_symmetric_in_access_order() {
        let r1 = report();
        let mut r2 = r1.clone();
        r2.accesses.swap(0, 1);
        assert_eq!(r1.bug_hash(), r2.bug_hash());
    }

    #[test]
    fn bug_hash_ignores_line_numbers() {
        let r1 = report();
        let mut r2 = r1.clone();
        for a in &mut r2.accesses {
            for fr in &mut a.stack {
                fr.line += 100;
            }
        }
        assert_eq!(r1.bug_hash(), r2.bug_hash());
    }

    #[test]
    fn bug_hash_distinguishes_vars_and_functions() {
        let r1 = report();
        let mut r2 = r1.clone();
        r2.var_name = "limit".into();
        assert_ne!(r1.bug_hash(), r2.bug_hash());
        let mut r3 = r1.clone();
        r3.accesses[0].stack[0].function = "otherClosure".into();
        assert_ne!(r1.bug_hash(), r3.bug_hash());
    }

    #[test]
    fn render_mentions_both_accesses() {
        let text = report().render();
        assert!(text.contains("WARNING: DATA RACE"));
        assert!(text.contains("Write at err by goroutine 1"));
        assert!(text.contains("Write at err by goroutine 0"));
        assert!(text.contains("created at"));
    }

    #[test]
    fn leaf_and_root_frames() {
        let a = access(AccessKind::Read, &["leafFn", "midFn", "rootFn"], 0);
        assert_eq!(a.leaf().unwrap().function, "leafFn");
        assert_eq!(a.root().unwrap().function, "rootFn");
    }
}
