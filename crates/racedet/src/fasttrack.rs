//! The FastTrack dynamic race-detection algorithm (Flanagan & Freund,
//! PLDI 2009), as used by ThreadSanitizer-style runtimes.
//!
//! The detector is event-driven and VM-agnostic: the host runtime feeds
//! it reads/writes (with compact interned stacks) and happens-before
//! edges (fork, mutex acquire/release, merge-release for wait-groups,
//! sequentially-consistent atomic edges, and raw clock snapshot/join for
//! per-message channel synchronisation). Races are recorded — never
//! thrown — so a run reports every distinct race it observes, matching
//! the Go race detector's behaviour.

use crate::clock::{Epoch, ThreadId, VectorClock};
use crate::report::{AccessKind, Fnv1a};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Abstract address of a monitored memory cell.
pub type Addr = u64;

/// Interned id of a variable name (resolved by the host VM).
pub type NameId = u32;

/// Interned id of a stack frame (resolved by the host VM).
pub type FrameId = u32;

/// A compact access record: kind, interned stack (innermost first), and
/// the acting thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawAccess {
    /// Read or write.
    pub kind: AccessKind,
    /// Interned stack, innermost frame first.
    pub stack: Vec<FrameId>,
    /// Acting thread.
    pub tid: ThreadId,
}

/// A detected race between two compact accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRace {
    /// The earlier (already recorded) access.
    pub prev: RawAccess,
    /// The access that triggered detection.
    pub cur: RawAccess,
    /// Racy cell address.
    pub addr: Addr,
    /// Interned variable name.
    pub var: NameId,
}

#[derive(Debug, Clone)]
enum ReadState {
    /// Reads by at most one thread since the last write.
    Epoch(Epoch, Option<RawAccess>),
    /// Read-shared: full clock plus per-thread access info.
    Shared(VectorClock, HashMap<ThreadId, RawAccess>),
}

#[derive(Debug, Clone)]
struct VarState {
    w: Epoch,
    w_access: Option<RawAccess>,
    r: ReadState,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            w: Epoch::ZERO,
            w_access: None,
            r: ReadState::Epoch(Epoch::ZERO, None),
        }
    }
}

/// The FastTrack detector for one program run.
#[derive(Debug, Default)]
pub struct Detector {
    clocks: Vec<VectorClock>,
    vars: HashMap<Addr, VarState>,
    syncs: HashMap<u64, VectorClock>,
    races: Vec<RawRace>,
    dedup: HashSet<u64>,
    /// Total read/write events processed (for instrumentation benches).
    pub events: u64,
}

impl Detector {
    /// Creates a detector with the main thread (id 0) registered.
    pub fn new() -> Self {
        let mut d = Detector::default();
        let mut c = VectorClock::new();
        c.tick(0);
        d.clocks.push(c);
        d
    }

    /// Number of threads registered so far.
    pub fn thread_count(&self) -> usize {
        self.clocks.len()
    }

    /// Registers a new thread forked by `parent`, returning its id.
    ///
    /// Establishes the happens-before edge from the `go` statement to the
    /// start of the child.
    pub fn fork(&mut self, parent: ThreadId) -> ThreadId {
        let child = self.clocks.len();
        let mut cc = self.clocks[parent].clone();
        cc.tick(child);
        self.clocks.push(cc);
        self.clocks[parent].tick(parent);
        child
    }

    /// Establishes `child` happens-before `parent` (a join edge).
    pub fn join_thread(&mut self, parent: ThreadId, child: ThreadId) {
        let cc = self.clocks[child].clone();
        self.clocks[parent].join(&cc);
    }

    /// Processes a read of `addr` by `t`.
    pub fn read(&mut self, t: ThreadId, addr: Addr, var: NameId, stack: &[FrameId]) {
        self.events += 1;
        let ct = &self.clocks[t];
        let e = Epoch::new(t, ct.get(t));
        let vs = self.vars.entry(addr).or_default();

        // Same-epoch fast path.
        if let ReadState::Epoch(re, _) = &vs.r {
            if *re == e {
                return;
            }
        }

        let cur = RawAccess {
            kind: AccessKind::Read,
            stack: stack.to_vec(),
            tid: t,
        };

        // Write-read check.
        if !vs.w.le(ct) {
            let prev = vs.w_access.clone().unwrap_or_else(|| RawAccess {
                kind: AccessKind::Write,
                stack: Vec::new(),
                tid: vs.w.tid,
            });
            let race = RawRace {
                prev,
                cur: cur.clone(),
                addr,
                var,
            };
            Self::push_race(&mut self.races, &mut self.dedup, race);
        }

        // Update read state.
        let ct = &self.clocks[t];
        match &mut vs.r {
            ReadState::Epoch(re, acc) => {
                if re.le(ct) {
                    *re = e;
                    *acc = Some(cur);
                } else {
                    let mut vc = VectorClock::new();
                    vc.set(re.tid, re.clock);
                    vc.set(t, e.clock);
                    let mut accs = HashMap::new();
                    if let Some(a) = acc.take() {
                        accs.insert(re.tid, a);
                    }
                    accs.insert(t, cur);
                    vs.r = ReadState::Shared(vc, accs);
                }
            }
            ReadState::Shared(vc, accs) => {
                vc.set(t, e.clock);
                accs.insert(t, cur);
            }
        }
    }

    /// Processes a write of `addr` by `t`.
    pub fn write(&mut self, t: ThreadId, addr: Addr, var: NameId, stack: &[FrameId]) {
        self.events += 1;
        let ct = &self.clocks[t];
        let e = Epoch::new(t, ct.get(t));
        let vs = self.vars.entry(addr).or_default();

        // Same-epoch fast path.
        if vs.w == e {
            return;
        }

        let cur = RawAccess {
            kind: AccessKind::Write,
            stack: stack.to_vec(),
            tid: t,
        };

        // Write-write check.
        if !vs.w.le(ct) {
            let prev = vs.w_access.clone().unwrap_or_else(|| RawAccess {
                kind: AccessKind::Write,
                stack: Vec::new(),
                tid: vs.w.tid,
            });
            let race = RawRace {
                prev,
                cur: cur.clone(),
                addr,
                var,
            };
            Self::push_race(&mut self.races, &mut self.dedup, race);
        }

        // Read-write check.
        match &vs.r {
            ReadState::Epoch(re, racc) => {
                if !re.is_zero() && !re.le(ct) {
                    let prev = racc.clone().unwrap_or_else(|| RawAccess {
                        kind: AccessKind::Read,
                        stack: Vec::new(),
                        tid: re.tid,
                    });
                    let race = RawRace {
                        prev,
                        cur: cur.clone(),
                        addr,
                        var,
                    };
                    Self::push_race(&mut self.races, &mut self.dedup, race);
                }
            }
            ReadState::Shared(vc, accs) => {
                for (tid, val) in vc.iter() {
                    if val > ct.get(tid) {
                        let prev = accs.get(&tid).cloned().unwrap_or_else(|| RawAccess {
                            kind: AccessKind::Read,
                            stack: Vec::new(),
                            tid,
                        });
                        let race = RawRace {
                            prev,
                            cur: cur.clone(),
                            addr,
                            var,
                        };
                        Self::push_race(&mut self.races, &mut self.dedup, race);
                    }
                }
            }
        }

        vs.w = e;
        vs.w_access = Some(cur);
        // FastTrack WriteShared: collapse the read state after checking.
        vs.r = ReadState::Epoch(Epoch::ZERO, None);
    }

    fn push_race(races: &mut Vec<RawRace>, dedup: &mut HashSet<u64>, race: RawRace) {
        let mut h = Fnv1a::new();
        h.write(&race.var.to_le_bytes());
        // Symmetric over the two stacks: hash the sorted pair of leaves
        // plus full-stack hashes.
        let mut stack_hashes: Vec<u64> = [&race.prev, &race.cur]
            .iter()
            .map(|a| {
                let mut sh = Fnv1a::new();
                for fid in &a.stack {
                    sh.write(&fid.to_le_bytes());
                }
                sh.finish()
            })
            .collect();
        stack_hashes.sort_unstable();
        for s in stack_hashes {
            h.write(&s.to_le_bytes());
        }
        if dedup.insert(h.finish()) {
            races.push(race);
        }
    }

    /// Lock acquire: joins the sync object's release clock into `t`.
    pub fn acquire(&mut self, t: ThreadId, sync: u64) {
        if let Some(s) = self.syncs.get(&sync) {
            let s = s.clone();
            self.clocks[t].join(&s);
        }
    }

    /// Lock release: stores `t`'s clock in the sync object and advances `t`.
    pub fn release(&mut self, t: ThreadId, sync: u64) {
        let c = self.clocks[t].clone();
        self.syncs.insert(sync, c);
        self.clocks[t].tick(t);
    }

    /// Merge-release (wait-group `Done`, RWMutex `RUnlock`): joins `t`'s
    /// clock into the sync object without overwriting other releasers.
    pub fn release_merge(&mut self, t: ThreadId, sync: u64) {
        let c = self.clocks[t].clone();
        self.syncs.entry(sync).or_default().join(&c);
        self.clocks[t].tick(t);
    }

    /// Sequentially-consistent atomic edge: total order between all
    /// atomic operations on `sync` (each op both acquires and releases).
    pub fn atomic_op(&mut self, t: ThreadId, sync: u64) {
        if let Some(s) = self.syncs.get(&sync) {
            let s = s.clone();
            self.clocks[t].join(&s);
        }
        let c = self.clocks[t].clone();
        self.syncs.insert(sync, c);
        self.clocks[t].tick(t);
    }

    /// Snapshots `t`'s clock (release half of a message send) and advances
    /// `t`. The returned clock travels with the message.
    pub fn release_snapshot(&mut self, t: ThreadId) -> VectorClock {
        let c = self.clocks[t].clone();
        self.clocks[t].tick(t);
        c
    }

    /// Joins a message clock into `t` (acquire half of a message receive).
    pub fn acquire_clock(&mut self, t: ThreadId, vc: &VectorClock) {
        self.clocks[t].join(vc);
    }

    /// Forgets a freed cell.
    pub fn forget(&mut self, addr: Addr) {
        self.vars.remove(&addr);
    }

    /// Races recorded so far.
    pub fn races(&self) -> &[RawRace] {
        &self.races
    }

    /// Consumes the detector, returning all recorded races.
    pub fn into_races(self) -> Vec<RawRace> {
        self.races
    }

    /// Current clock of thread `t` (for tests and debugging).
    pub fn clock(&self, t: ThreadId) -> &VectorClock {
        &self.clocks[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Addr = 100;
    const V: NameId = 1;

    fn stack(id: FrameId) -> Vec<FrameId> {
        vec![id]
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].prev.kind, AccessKind::Write);
        assert_eq!(d.races()[0].cur.kind, AccessKind::Write);
    }

    #[test]
    fn fork_edge_orders_parent_prefix() {
        let mut d = Detector::new();
        d.write(0, A, V, &stack(1)); // before fork
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(2)); // child sees parent's prefix
        assert!(d.races().is_empty());
        // But a parent write AFTER the fork races with the child.
        d.write(0, A, V, &stack(3));
        d.read(t1, A, V, &stack(4));
        assert!(!d.races().is_empty());
    }

    #[test]
    fn mutex_orders_critical_sections() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let m = 7;
        d.acquire(0, m);
        d.write(0, A, V, &stack(1));
        d.release(0, m);
        d.acquire(t1, m);
        d.write(t1, A, V, &stack(2));
        d.release(t1, m);
        assert!(d.races().is_empty());
    }

    #[test]
    fn mutex_on_different_locks_does_not_order() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.acquire(0, 7);
        d.write(0, A, V, &stack(1));
        d.release(0, 7);
        d.acquire(t1, 8);
        d.write(t1, A, V, &stack(2));
        d.release(t1, 8);
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn waitgroup_merge_release_orders_all_children() {
        let mut d = Detector::new();
        let wg = 9;
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.release_merge(t1, wg); // Done
        d.write(t2, 200, V, &stack(2));
        d.release_merge(t2, wg); // Done
        d.acquire(0, wg); // Wait
        d.read(0, A, V, &stack(3));
        d.read(0, 200, V, &stack(4));
        assert!(d.races().is_empty());
    }

    #[test]
    fn plain_release_would_lose_first_done() {
        // Demonstrates why Done must merge: with plain release the second
        // Done overwrites the first child's clock.
        let mut d = Detector::new();
        let wg = 9;
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.release(t1, wg);
        d.release(t2, wg); // overwrites
        d.acquire(0, wg);
        d.read(0, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn message_clocks_order_send_before_receive() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        let msg = d.release_snapshot(t1); // send
        d.acquire_clock(0, &msg); // receive
        d.read(0, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn read_shared_then_unordered_write_races_with_each_reader() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.read(t1, A, V, &stack(1));
        d.read(t2, A, V, &stack(2));
        d.write(0, A, V, &stack(3));
        // Races with both readers (two distinct reports).
        assert_eq!(d.races().len(), 2);
        assert!(d
            .races()
            .iter()
            .all(|r| r.prev.kind == AccessKind::Read && r.cur.kind == AccessKind::Write));
    }

    #[test]
    fn atomics_totally_order_operations() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let flag = 11;
        d.write(0, A, V, &stack(1));
        d.atomic_op(0, flag); // store
        d.atomic_op(t1, flag); // load (later in the serialized run)
        d.read(t1, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn duplicate_races_are_deduped() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn join_thread_orders_child_suffix() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.join_thread(0, t1);
        d.write(0, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn same_epoch_fast_path_skips_duplicate_work() {
        let mut d = Detector::new();
        d.write(0, A, V, &stack(1));
        let before = d.events;
        d.write(0, A, V, &stack(1));
        d.write(0, A, V, &stack(1));
        assert_eq!(d.events, before + 2);
        assert!(d.races().is_empty());
    }
}
