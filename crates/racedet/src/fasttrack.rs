//! The FastTrack dynamic race-detection algorithm (Flanagan & Freund,
//! PLDI 2009), as used by ThreadSanitizer-style runtimes.
//!
//! The detector is event-driven and VM-agnostic: the host runtime feeds
//! it reads/writes (with compact interned stacks) and happens-before
//! edges (fork, mutex acquire/release, merge-release for wait-groups,
//! sequentially-consistent atomic edges, and raw clock snapshot/join for
//! per-message channel synchronisation). Races are recorded — never
//! thrown — so a run reports every distinct race it observes, matching
//! the Go race detector's behaviour.
//!
//! # Hot path
//!
//! FastTrack's defining observation is that the overwhelming majority of
//! accesses repeat within the owning thread's current epoch and need no
//! vector-clock work at all. The detector therefore exposes a two-phase
//! API so the *host* can skip its own per-access bookkeeping too:
//!
//! 1. [`Detector::read_fast`] / [`Detector::write_fast`] perform the
//!    same-epoch check without needing a call stack — when they return
//!    [`FastPath::EpochHit`] the event is fully processed and the host
//!    never has to materialise a stack snapshot;
//! 2. on a miss, the host builds the stack and calls
//!    [`Detector::read_slow`] / [`Detector::write_slow`], which run the
//!    full FastTrack transfer function.
//!
//! # Lock-aware sync-epoch cache
//!
//! Sync-heavy programs defeat the same-epoch check by construction:
//! every lock release advances the owner's epoch, so a counter loop
//! (`mu.Lock(); n++; mu.Unlock()`) misses on every iteration even
//! though nothing about the variable's ownership changed. Two O(1)
//! caches close that gap without changing any observable behaviour:
//!
//! - **Per-variable owner cache** (the fast functions' *second
//!   chance*): each access record remembers the [`StackGen`] — an
//!   opaque host token identifying the acting thread's exact call
//!   stack — under which the last slow-path transfer stored it. When
//!   the same thread re-accesses a variable it exclusively owns (write
//!   epoch and read state both its own) at an unchanged stack
//!   generation, the full transfer function provably reduces to
//!   bumping the stored epoch: no race is reachable, and the stored
//!   access record (stack, thread, kind) is already byte-identical to
//!   what the slow path would write. The fast functions apply that
//!   reduced update in place and return [`FastPath::CacheHit`] — the
//!   host skips the snapshot *and* the detector skips the transfer.
//! - **Per-sync release epoch** (FastTrack's O(1) acquire):
//!   [`Detector::release`] stores, next to the released clock, the
//!   epoch `c@t` of the releasing thread. A later
//!   [`Detector::acquire`] whose thread already knows `c@t` (one
//!   component compare) must already contain the whole stored clock,
//!   so the O(width) join is skipped. Merge-releases invalidate the
//!   epoch (several releasers — no single epoch summarises the join).
//!
//! Both caches are *physical* optimisations: the [`DetStats`] counters
//! keep their logical meaning (a short-circuited acquire still counts
//! its `clock_joins`), so counter baselines stay bit-identical across
//! cache on/off — the savings surface in the dedicated
//! `read_sync_hits` / `write_sync_hits` / `sync_epoch_hits` counters
//! and in wall-clock. [`Detector::set_sync_cache`] turns the caches
//! off for differential testing.
//!
//! [`Detector::read`] / [`Detector::write`] remain as the combined
//! single-call form (they pass [`StackGen::NONE`], which never
//! cache-hits). Variable states live in a dense array indexed by
//! address (the host allocates cells densely), sync/dedup maps use a
//! fast deterministic hasher, and every clock operation either joins in
//! place or reuses an existing buffer — [`Detector::stats`] counts the
//! events, fast-path hits, joins, clock allocations and the allocations
//! those reuses avoided, and the counters are exactly reproducible for
//! a given event sequence (the CI perf gate diffs them against a
//! checked-in baseline).
//!
//! # Shadow-state lifecycle (streaming detection)
//!
//! Long-lived programs would grow the shadow state without bound:
//! variable states accumulate per address and the vector-clock width
//! grows per goroutine ever spawned. Three mechanisms bound it, the
//! first two *physical* — turning them on or off never changes race
//! reports or any logical [`DetStats`] counter (the same transparency
//! discipline as the sync caches; the savings land in
//! [`ShadowStats`]):
//!
//! - **Epoch-based GC** ([`Detector::collect`]): the host supplies a
//!   retirement frontier — a clock ≤ every live thread's clock, so ≤
//!   every future event's clock (use [`Detector::live_frontier`]).
//!   Every variable state *strictly* below the frontier is provably
//!   unable to ever race again *or* to produce a same-epoch fast hit,
//!   so it is reset in place and its buffers are freed. Read-shared
//!   states are cleared but keep their `Shared` shape (an epoch-shaped
//!   resurrection would re-enable the same-epoch fast path and drift
//!   the counters). Dense states live in fixed-size pages that are
//!   freed when fully vacant, so shadow memory tracks *live* states,
//!   not the highest address ever touched.
//! - **Clock-width reclamation** ([`Detector::thread_exit`]): an
//!   exiting thread's final clock is joined into a retired-clock
//!   accumulator and its clock *slot* is freed. A later
//!   [`Detector::fork`] reuses the slot only when the exited final
//!   clock ≤ the parent's clock — i.e. the exit happens-before the new
//!   thread's start — which keeps every stale epoch `c@slot` correct:
//!   any thread that appears to know `c` via the slot's new occupant
//!   provably synchronised through the fork point, hence after the
//!   exit. External [`ThreadId`]s stay dense and are never reused; the
//!   slot indirection is invisible to hosts.
//! - **Sampling** ([`DetectorOptions::sample_mod`]): skip shadow
//!   updates for a deterministic subset of addresses. Unlike GC and
//!   slot reuse this *does* trade recall for cost, so it is off by
//!   default and its misses are measured, never silent (the bench
//!   harness reports recall on the exposure corpus).

use crate::clock::{Epoch, ThreadId, VectorClock};
use crate::report::{AccessKind, Fnv1a};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Abstract address of a monitored memory cell.
pub type Addr = u64;

/// Interned id of a variable name (resolved by the host VM).
pub type NameId = u32;

/// Interned id of a stack frame (resolved by the host VM).
pub type FrameId = u32;

/// Addresses below this bound get dense (page-indexed) variable state;
/// anything above falls back to a hash map. Hosts that allocate cells
/// densely from zero — `govm` does — never touch the map.
/// [`Detector::with_dense_limit`] overrides the bound (tests exercise
/// the crossover without growing a multi-million-entry array).
pub const DENSE_LIMIT: usize = 1 << 22;

/// Dense variable states per page (pages are allocated on first touch
/// and freed by [`Detector::collect`] when fully vacant, so dense
/// shadow memory tracks live states, not the highest address).
pub const PAGE_SIZE: usize = 1 << PAGE_BITS;
/// Sized so that first-touch of a page (allocate + default-init) stays
/// in the noise for short corpus runs — a `VarState` is >100 bytes, so
/// 4096-entry pages cost ~0.5 MB of zeroing per touch, which dominated
/// small-program campaigns (measured ~4× on the exposure corpus).
/// 64 entries keeps a page under 10 KB — first-touch beats even the
/// pre-paging flat array's grow-to-max-address resize — and makes
/// page-level GC granularity finer for the churn regime.
const PAGE_BITS: usize = 6;

/// Construction-time detector configuration.
///
/// Everything here is also adjustable after construction; the struct
/// exists so hosts can thread one value through their own option
/// plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorOptions {
    /// Address-sampling modulus. `0` or `1` monitors every address
    /// (full recall). A value `m > 1` monitors a deterministic
    /// pseudo-random `1/m` fraction of the address space (a fixed
    /// multiplicative hash of the address, mod `m` — plain residues
    /// would alias with allocator alignment): shadow updates for the
    /// rest are skipped entirely (counted in
    /// [`ShadowStats::sampled_skips`]), trading a deterministic,
    /// measurable recall loss for per-event cost.
    pub sample_mod: u32,
}

impl Default for DetectorOptions {
    fn default() -> Self {
        DetectorOptions { sample_mod: 1 }
    }
}

/// Physical shadow-state lifecycle counters.
///
/// Deliberately separate from [`DetStats`]: these move when GC, slot
/// reclamation or sampling engage, while every `DetStats` field keeps
/// its logical meaning and stays bit-identical across lifecycle on/off
/// (sampling excepted — skipped events process nothing, which is the
/// point). Deterministic for a given event sequence, like everything
/// the perf gate compares.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowStats {
    /// Variable states retired by [`Detector::collect`] (epoch-shaped
    /// resets plus shared-state clears).
    pub states_collected: u64,
    /// Read-shared states cleared in place (subset of
    /// `states_collected`; they keep their shape, see module docs).
    pub shared_states_cleared: u64,
    /// Dense pages freed after a sweep left them fully vacant.
    pub pages_freed: u64,
    /// [`Detector::collect`] passes run.
    pub collect_passes: u64,
    /// Threads retired via [`Detector::thread_exit`].
    pub threads_exited: u64,
    /// Clock slots of exited threads reused by a later fork.
    pub clock_slots_reclaimed: u64,
    /// Shadow updates skipped by address sampling.
    pub sampled_skips: u64,
}

impl ShadowStats {
    /// Accumulates `other` into `self` (campaign-level aggregation).
    pub fn accumulate(&mut self, other: &ShadowStats) {
        self.states_collected += other.states_collected;
        self.shared_states_cleared += other.shared_states_cleared;
        self.pages_freed += other.pages_freed;
        self.collect_passes += other.collect_passes;
        self.threads_exited += other.threads_exited;
        self.clock_slots_reclaimed += other.clock_slots_reclaimed;
        self.sampled_skips += other.sampled_skips;
    }
}

/// Opaque host token identifying the exact call stack of one thread at
/// one moment: equal tokens from the same thread guarantee the stack
/// snapshot the host *would* materialise is byte-identical.
///
/// `govm` derives it from `(goroutine frame-push/pop generation,
/// interned top-frame id)` — line-granular, so one source statement's
/// reads and writes share a token; any host scheme works as long as a
/// token is never reused by the same thread for a different stack.
/// [`StackGen::NONE`] opts an event out of the owner cache (the
/// combined [`Detector::read`] / [`Detector::write`] forms always pass
/// it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackGen(u64);

impl StackGen {
    /// The "no token" sentinel: never equal to a cacheable generation.
    pub const NONE: StackGen = StackGen(u64::MAX);

    /// Builds a token from a host generation counter and a program
    /// counter (the `govm` scheme).
    pub fn from_parts(depth_gen: u32, pc: u32) -> StackGen {
        StackGen((u64::from(depth_gen) << 32) | u64::from(pc))
    }

    /// `true` unless this is [`StackGen::NONE`].
    pub fn is_some(self) -> bool {
        self != StackGen::NONE
    }
}

/// Outcome of a phase-one ([`Detector::read_fast`] /
/// [`Detector::write_fast`]) check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPath {
    /// The access repeats within the thread's current epoch: fully
    /// processed, no state change, no stack needed.
    EpochHit,
    /// The lock-aware owner cache absorbed the access: the reduced
    /// transfer function has been applied in place, no stack needed.
    CacheHit,
    /// The host must materialise a stack and call the slow phase.
    Miss,
}

impl FastPath {
    /// `true` when the event is fully processed (no slow phase needed).
    pub fn is_hit(self) -> bool {
        !matches!(self, FastPath::Miss)
    }
}

/// A fast, deterministic multiply-xor hasher (FxHash-style) for the
/// detector's interior maps. With the default SipHash, keying the sync
/// and dedup tables dominates per-event cost; none of these tables is
/// ever iterated, so hash quality only has to be good enough to spread
/// dense ids.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

const FAST_HASH_K: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(FAST_HASH_K);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(FAST_HASH_K);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// Deterministic hot-path cost counters for one detector instance.
///
/// Every field is an exact function of the event sequence (no clocks,
/// no addresses-of-allocations), so two runs of the same schedule
/// produce bit-identical counters on any machine — which is what lets
/// the perf CI gate compare them against a checked-in baseline without
/// wall-clock flakiness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetStats {
    /// Read/write events processed.
    pub events: u64,
    /// Reads fully answered by the same-epoch fast path.
    pub read_fast_hits: u64,
    /// Writes fully answered by the same-epoch fast path.
    pub write_fast_hits: u64,
    /// Full vector-clock joins performed.
    pub clock_joins: u64,
    /// Vector clocks freshly allocated (clones and promotions).
    pub clock_allocs: u64,
    /// Clock allocations avoided by joining in place or reusing an
    /// existing sync-object buffer.
    pub clock_allocs_avoided: u64,
    /// Reads absorbed by the lock-aware owner cache (second chance).
    pub read_sync_hits: u64,
    /// Writes absorbed by the lock-aware owner cache (second chance).
    pub write_sync_hits: u64,
    /// Acquire joins short-circuited by the per-sync release epoch
    /// (counted *in addition to* the logical `clock_joins` increment).
    pub sync_epoch_hits: u64,
}

impl DetStats {
    /// Accumulates `other` into `self` (campaign-level aggregation).
    pub fn accumulate(&mut self, other: &DetStats) {
        self.events += other.events;
        self.read_fast_hits += other.read_fast_hits;
        self.write_fast_hits += other.write_fast_hits;
        self.clock_joins += other.clock_joins;
        self.clock_allocs += other.clock_allocs;
        self.clock_allocs_avoided += other.clock_allocs_avoided;
        self.read_sync_hits += other.read_sync_hits;
        self.write_sync_hits += other.write_sync_hits;
        self.sync_epoch_hits += other.sync_epoch_hits;
    }

    /// Same-epoch fast-path hits across reads and writes.
    pub fn fast_hits(&self) -> u64 {
        self.read_fast_hits + self.write_fast_hits
    }

    /// Lock-aware owner-cache hits across reads and writes.
    pub fn sync_hits(&self) -> u64 {
        self.read_sync_hits + self.write_sync_hits
    }
}

/// A compact access record: kind, interned stack (innermost first), and
/// the acting thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawAccess {
    /// Read or write.
    pub kind: AccessKind,
    /// Interned stack, innermost frame first.
    pub stack: Vec<FrameId>,
    /// Acting thread.
    pub tid: ThreadId,
}

/// A detected race between two compact accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRace {
    /// The earlier (already recorded) access.
    pub prev: RawAccess,
    /// The access that triggered detection.
    pub cur: RawAccess,
    /// Racy cell address.
    pub addr: Addr,
    /// Interned variable name.
    pub var: NameId,
}

/// How many distinct `(record, gen)` pairs each reader keeps in the
/// read-shared state. One is enough for a thread that always reads a
/// variable from one site; a reader alternating between a few sites
/// (the classic accumulate-then-publish loop) would thrash a
/// single-record cache — every read flips the stored generation, so no
/// read ever hits. A short MRU list makes all of the alternating sites
/// hit at once.
const READER_GENS: usize = 4;

/// Per-reader access records for the read-shared state: up to
/// [`READER_GENS`] `(record, gen)` pairs, most-recent-use first.
///
/// The front record is always byte-identical to the single record the
/// cache-off run would hold for this thread: a cache hit on a non-front
/// generation *promotes* it (the slow path it replaces would have
/// re-stored exactly that record, making it the latest), and the slow
/// path stores new records at the front.
#[derive(Debug, Clone, Default)]
struct ReaderRecords {
    recs: Vec<(RawAccess, StackGen)>,
}

impl ReaderRecords {
    fn with(rec: RawAccess, gen: StackGen) -> Self {
        ReaderRecords {
            recs: vec![(rec, gen)],
        }
    }

    /// The record the cache-off run would currently hold (MRU front).
    fn current(&self) -> Option<&RawAccess> {
        self.recs.first().map(|(a, _)| a)
    }

    /// Cache probe: if any stored generation equals `gen`, promote that
    /// record to the front and report a hit. Callers guarantee
    /// `gen.is_some()`, so [`StackGen::NONE`] records never match.
    fn promote(&mut self, gen: StackGen) -> bool {
        match self.recs.iter().position(|(_, g)| *g == gen) {
            Some(0) => true,
            Some(i) => {
                self.recs[..=i].rotate_right(1);
                true
            }
            None => false,
        }
    }

    /// Slow-path store: front-inserts (or refreshes in place) the
    /// record for `gen`, evicting the least-recently-used entry beyond
    /// [`READER_GENS`]. The matching-front case reuses the existing
    /// stack buffer — steady-state slow reads stay allocation-free.
    fn store(&mut self, tid: ThreadId, stack: &[FrameId], gen: StackGen) {
        if let Some(i) = self.recs.iter().position(|(_, g)| *g == gen) {
            self.recs[..=i].rotate_right(1);
            let (a, _) = &mut self.recs[0];
            a.kind = AccessKind::Read;
            a.tid = tid;
            a.stack.clear();
            a.stack.extend_from_slice(stack);
            return;
        }
        self.recs.insert(
            0,
            (
                RawAccess {
                    kind: AccessKind::Read,
                    stack: stack.to_vec(),
                    tid,
                },
                gen,
            ),
        );
        self.recs.truncate(READER_GENS);
    }
}

#[derive(Debug, Clone)]
enum ReadState {
    /// Reads by at most one thread since the last write.
    Epoch(Epoch, Option<RawAccess>),
    /// Read-shared: full clock plus per-thread access info, each reader
    /// holding a short MRU list of records tagged with the [`StackGen`]
    /// they were captured under (the owner cache's freshness witness,
    /// per reader and per read site).
    Shared(
        VectorClock,
        HashMap<ThreadId, ReaderRecords, FastBuildHasher>,
    ),
}

#[derive(Debug, Clone)]
struct VarState {
    w: Epoch,
    w_access: Option<RawAccess>,
    /// Host stack token under which `w_access` was stored (the owner
    /// cache's freshness witness); [`StackGen::NONE`] when unknown.
    w_gen: StackGen,
    r: ReadState,
    /// Host stack token for the epoch-read access record.
    r_gen: StackGen,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            w: Epoch::ZERO,
            w_access: None,
            w_gen: StackGen::NONE,
            r: ReadState::Epoch(Epoch::ZERO, None),
            r_gen: StackGen::NONE,
        }
    }
}

/// One sync object: its release clock plus the lock-aware sync-epoch
/// cache — the epoch of the (sole) last releaser, which lets a later
/// acquire prove `clock ≤ acquirer` with one component compare.
#[derive(Debug, Clone)]
struct SyncState {
    clock: VectorClock,
    /// `Some(c@t)`: the stored clock is exactly thread `t`'s clock at
    /// its local time `c` (set by plain release / atomic ops). `None`
    /// after a merge-release — several releasers, no single epoch
    /// summarises the joined clock.
    release_epoch: Option<Epoch>,
}

/// One page of dense variable states (see [`PAGE_SIZE`]).
type VarPage = Box<[VarState]>;

/// The FastTrack detector for one program run.
///
/// Thread identity is two-layered: the *external* [`ThreadId`]s handed
/// out by [`Detector::fork`] are dense and never reused (hosts index
/// their own tables with them), while internally each live thread owns
/// a clock *slot* — the index actually stored in epochs and clock
/// components. [`Detector::thread_exit`] frees a slot for reuse, which
/// is what lets vector-clock width track live threads. All event APIs
/// take external ids.
#[derive(Debug)]
pub struct Detector {
    /// Per-slot clocks (slot-indexed; width = live-ish thread count).
    clocks: Vec<VectorClock>,
    /// External thread id → clock slot.
    slot_of: Vec<usize>,
    /// Clock slot → external id of its *current* owner (only used for
    /// defensive report fallbacks; records carry external ids).
    slot_owner: Vec<ThreadId>,
    /// Whether the slot's owner is still live.
    slot_live: Vec<bool>,
    /// External thread ids retired by [`Detector::thread_exit`]
    /// (debug-assert guard against post-exit events).
    exited: Vec<bool>,
    /// Per-slot high-water mark of the *published* own-clock value —
    /// the highest own component ever stored into shadow state, a sync
    /// clock or another thread's clock. A release ticks the releaser
    /// *after* snapshotting, so an exiting thread's final clock usually
    /// ends one past everything it published; reuse eligibility must
    /// compare against the published value or it would never fire for
    /// the canonical `wg.Done`/send-then-exit shape. Monotone across
    /// slot occupants (never reset on reuse), which is what keeps
    /// epochs of *earlier* occupants covered too.
    published: Vec<u32>,
    /// Freed slots awaiting reuse, FIFO, each with the exiting thread's
    /// final clock and published own value (the reuse-eligibility
    /// witness).
    free_slots: Vec<(usize, VectorClock, u32)>,
    /// Join of every exited thread's final clock.
    retired: VectorClock,
    /// Dense per-address variable state (addresses below `dense_limit`),
    /// in lazily allocated fixed-size pages.
    vars: Vec<Option<VarPage>>,
    /// Overflow variable state for sparse high addresses.
    vars_sparse: HashMap<Addr, VarState, FastBuildHasher>,
    syncs: HashMap<u64, SyncState, FastBuildHasher>,
    races: Vec<RawRace>,
    dedup: HashSet<u64, FastBuildHasher>,
    stats: DetStats,
    shadow: ShadowStats,
    /// Dense/sparse crossover ([`DENSE_LIMIT`] unless overridden).
    dense_limit: Addr,
    /// Lock-aware caching (owner second chance + sync release epochs);
    /// on by default, off for differential testing.
    sync_cache: bool,
    /// Address-sampling modulus (≤ 1 = monitor everything).
    sample_mod: u32,
    /// Sampling rotation salt (see [`Detector::set_sample_salt`]).
    sample_salt: u64,
}

impl Default for Detector {
    fn default() -> Self {
        Detector {
            clocks: Vec::new(),
            slot_of: Vec::new(),
            slot_owner: Vec::new(),
            slot_live: Vec::new(),
            exited: Vec::new(),
            published: Vec::new(),
            free_slots: Vec::new(),
            retired: VectorClock::new(),
            vars: Vec::new(),
            vars_sparse: HashMap::default(),
            syncs: HashMap::default(),
            races: Vec::new(),
            dedup: HashSet::default(),
            stats: DetStats::default(),
            shadow: ShadowStats::default(),
            dense_limit: DENSE_LIMIT as Addr,
            sync_cache: true,
            sample_mod: 1,
            sample_salt: 0,
        }
    }
}

impl Detector {
    /// Creates a detector with the main thread (id 0) registered.
    pub fn new() -> Self {
        let mut d = Detector::default();
        let mut c = VectorClock::new();
        c.tick(0);
        d.clocks.push(c);
        d.slot_of.push(0);
        d.slot_owner.push(0);
        d.slot_live.push(true);
        d.exited.push(false);
        d.published.push(0);
        d
    }

    /// [`Detector::new`] configured from [`DetectorOptions`].
    pub fn with_options(opts: DetectorOptions) -> Self {
        let mut d = Detector::new();
        d.sample_mod = opts.sample_mod;
        d
    }

    /// [`Detector::new`] with a custom dense/sparse address crossover
    /// (tests exercise the exact boundary without a 4M-entry array).
    pub fn with_dense_limit(limit: usize) -> Self {
        let mut d = Detector::new();
        d.dense_limit = limit as Addr;
        d
    }

    /// Sets the address-sampling modulus (see
    /// [`DetectorOptions::sample_mod`]). Changing it mid-run is legal:
    /// already-recorded shadow state stays valid, only future events
    /// are filtered.
    pub fn set_sample_mod(&mut self, sample_mod: u32) {
        self.sample_mod = sample_mod;
    }

    /// Sets the sampling rotation salt. The monitored `1/sample_mod`
    /// address subset is a function of the salt, so a host that feeds
    /// each run's schedule seed here rotates coverage across a
    /// campaign (HardRace's production-sampler design): a single run
    /// monitors `1/m` of the space, but `n` runs miss an address with
    /// probability only `(1 - 1/m)^n` — campaign recall degrades
    /// gracefully instead of cliffing on whatever subset one fixed
    /// hash picked. Deterministic per (salt, address); no effect when
    /// sampling is off.
    pub fn set_sample_salt(&mut self, salt: u64) {
        self.sample_salt = salt;
    }

    /// `true` when address sampling elides shadow updates for `addr`.
    ///
    /// The address is spread with a fixed multiplicative hash before
    /// the modulus so the monitored set is a pseudo-random (but fully
    /// deterministic) `1/sample_mod` fraction of the address space — a
    /// plain `addr % m` would alias with allocator alignment (hosts
    /// hand out word-aligned cells, making recall all-or-nothing
    /// instead of proportional).
    #[inline]
    fn sampled_out(&self, addr: Addr) -> bool {
        self.sample_mod > 1
            && ((addr ^ self.sample_salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33)
                % u64::from(self.sample_mod)
                != 0
    }

    /// Enables or disables the lock-aware caches (owner second chance
    /// and per-sync release epochs). Disabling never changes observable
    /// behaviour — races, clocks and the logical counters are
    /// bit-identical either way; only the `*_sync_hits` /
    /// `sync_epoch_hits` counters stop moving.
    pub fn set_sync_cache(&mut self, enabled: bool) {
        self.sync_cache = enabled;
    }

    /// Number of threads ever registered (external ids stay dense and
    /// are never reused, so this is also the next id `fork` hands out).
    pub fn thread_count(&self) -> usize {
        self.slot_of.len()
    }

    /// Current vector-clock width: clock slots allocated, which tracks
    /// live threads (plus freed slots awaiting an eligible reuse), not
    /// the total ever spawned.
    pub fn clock_width(&self) -> usize {
        self.clocks.len()
    }

    /// The deterministic cost counters accumulated so far.
    pub fn stats(&self) -> &DetStats {
        &self.stats
    }

    /// The physical shadow-lifecycle counters accumulated so far.
    pub fn shadow_stats(&self) -> &ShadowStats {
        &self.shadow
    }

    /// Clock slot of live external thread `t`.
    #[inline]
    fn slot(&self, t: ThreadId) -> usize {
        debug_assert!(!self.exited[t], "event for exited thread {t}");
        self.slot_of[t]
    }

    fn var_mut<'a>(
        dense: &'a mut Vec<Option<VarPage>>,
        sparse: &'a mut HashMap<Addr, VarState, FastBuildHasher>,
        dense_limit: Addr,
        addr: Addr,
    ) -> &'a mut VarState {
        let i = addr as usize;
        if addr < dense_limit {
            let p = i >> PAGE_BITS;
            if p >= dense.len() {
                dense.resize_with(p + 1, || None);
            }
            let page = dense[p]
                .get_or_insert_with(|| vec![VarState::default(); PAGE_SIZE].into_boxed_slice());
            &mut page[i & (PAGE_SIZE - 1)]
        } else {
            sparse.entry(addr).or_default()
        }
    }

    /// Registers a new thread forked by `parent`, returning its id.
    ///
    /// Establishes the happens-before edge from the `go` statement to
    /// the start of the child. The child's external id is always fresh
    /// (dense, never reused); its clock *slot* reuses a freed slot when
    /// some exited thread's final clock ≤ `parent`'s clock — the exit
    /// happens-before the child's start, so stale epochs at that slot
    /// keep exactly their happens-before meaning (module docs). The
    /// logical `clock_allocs` counter moves identically either way.
    pub fn fork(&mut self, parent: ThreadId) -> ThreadId {
        let child = self.slot_of.len();
        let pslot = self.slot(parent);
        self.stats.clock_allocs += 1;
        // First freed slot whose every *published* epoch is ordered
        // before this fork, in retirement order (deterministic). The
        // own component is compared via the published mark, not the
        // final clock — the trailing release tick published nothing.
        let reuse = self.free_slots.iter().position(|(slot, fin, pub_own)| {
            let pc = &self.clocks[pslot];
            *pub_own <= pc.get(*slot) && fin.iter().all(|(k, v)| k == *slot || v <= pc.get(k))
        });
        let cslot = match reuse {
            Some(idx) => {
                let (slot, fin, _) = self.free_slots.remove(idx);
                // Reuse the final clock's buffer for the child's clock.
                let mut cc = fin;
                cc.copy_from(&self.clocks[pslot]);
                cc.tick(slot);
                self.clocks[slot] = cc;
                self.slot_owner[slot] = child;
                self.slot_live[slot] = true;
                self.shadow.clock_slots_reclaimed += 1;
                slot
            }
            None => {
                let slot = self.clocks.len();
                let mut cc = self.clocks[pslot].clone();
                cc.tick(slot);
                self.clocks.push(cc);
                self.slot_owner.push(child);
                self.slot_live.push(true);
                self.published.push(0);
                slot
            }
        };
        self.slot_of.push(cslot);
        self.exited.push(false);
        // The child's clock carries the parent's current own value —
        // that is a publication, and the post-publication tick follows.
        self.publish(pslot);
        self.clocks[pslot].tick(pslot);
        child
    }

    /// Records that `slot`'s current own-clock value is now visible
    /// outside its own clock (shadow state, a sync clock, or another
    /// thread's clock). Clocks are monotone, so plain assignment is a
    /// running maximum.
    #[inline]
    fn publish(&mut self, slot: usize) {
        self.published[slot] = self.clocks[slot].get(slot);
    }

    /// Establishes `child` happens-before `parent` (a join edge).
    pub fn join_thread(&mut self, parent: ThreadId, child: ThreadId) {
        if parent == child {
            return;
        }
        let (pslot, cslot) = (self.slot(parent), self.slot(child));
        let (dst, src) = if pslot < cslot {
            let (lo, hi) = self.clocks.split_at_mut(cslot);
            (&mut lo[pslot], &hi[0])
        } else {
            let (lo, hi) = self.clocks.split_at_mut(pslot);
            (&mut hi[0], &lo[cslot])
        };
        dst.join(src);
        self.stats.clock_joins += 1;
        self.stats.clock_allocs_avoided += 1;
        // The child's whole clock — trailing ticks included — is now
        // visible in the parent.
        self.publish(cslot);
    }

    /// Retires an exited thread: joins its final clock into the
    /// retired-clock accumulator (preserving every happens-before edge
    /// it ever published for races detected later) and frees its clock
    /// slot for reuse by an eligible future [`Detector::fork`].
    ///
    /// Purely physical — no logical counter moves, and no observable
    /// behaviour changes whether or not a host ever calls this. The
    /// caller must deliver no further events for `t`.
    pub fn thread_exit(&mut self, t: ThreadId) {
        let slot = self.slot(t);
        debug_assert!(self.slot_live[slot], "double thread_exit for {t}");
        self.exited[t] = true;
        self.slot_live[slot] = false;
        let fin = std::mem::take(&mut self.clocks[slot]);
        self.retired.join(&fin);
        let pub_own = self.published[slot];
        self.free_slots.push((slot, fin, pub_own));
        self.shadow.threads_exited += 1;
    }

    /// Join of every exited thread's final clock — everything the dead
    /// ever published. For tests and host diagnostics.
    pub fn retired_clock(&self) -> &VectorClock {
        &self.retired
    }

    /// Same-epoch read check — phase one of a read event.
    ///
    /// [`FastPath::EpochHit`]: the read repeats within `t`'s current
    /// epoch; fully processed, no state change, no stack needed.
    /// [`FastPath::CacheHit`]: `t` exclusively owns the read state and
    /// `gen` proves its stored access record is still current, so the
    /// full transfer function reduces to bumping the read epoch —
    /// applied here, in place. [`FastPath::Miss`]: the host must follow
    /// up with [`Detector::read_slow`], passing the same `gen`.
    #[inline]
    pub fn read_fast(&mut self, t: ThreadId, addr: Addr, gen: StackGen) -> FastPath {
        self.read_fast_with(t, addr, || gen).0
    }

    /// [`Detector::read_fast`] with a *lazily derived* stack token: the
    /// epoch check needs no token, so `gen_fn` only runs on an epoch
    /// miss — on hosts where deriving the token costs a few loads, the
    /// dominant same-epoch case stays token-free. Returns the outcome
    /// plus the token (needed for the slow phase on a miss;
    /// [`StackGen::NONE`] after an epoch hit).
    #[inline]
    pub fn read_fast_with<F: FnOnce() -> StackGen>(
        &mut self,
        t: ThreadId,
        addr: Addr,
        gen_fn: F,
    ) -> (FastPath, StackGen) {
        self.stats.events += 1;
        if self.sampled_out(addr) {
            self.shadow.sampled_skips += 1;
            return (FastPath::EpochHit, StackGen::NONE);
        }
        let s = self.slot(t);
        let e = Epoch::new(s, self.clocks[s].get(s));
        let vs = Self::var_mut(
            &mut self.vars,
            &mut self.vars_sparse,
            self.dense_limit,
            addr,
        );
        let VarState {
            w,
            w_access,
            w_gen,
            r,
            r_gen,
        } = vs;
        match r {
            ReadState::Epoch(re, acc) => {
                if *re == e {
                    self.stats.read_fast_hits += 1;
                    return (FastPath::EpochHit, StackGen::NONE);
                }
                let gen = gen_fn();
                if self.sync_cache && gen.is_some() {
                    // Lock-aware second chance: `t` already owns the read
                    // epoch and its stack is unchanged since the record was
                    // stored. The slow path would find `re.le(ct)` (own
                    // component) and `vs.w.le(ct)` either true or a
                    // dedup-identical replay of an already-recorded race,
                    // then store an access record byte-identical to the
                    // current one — so the whole transfer collapses to
                    // `*re = e`.
                    if !re.is_zero() && re.tid == s && *r_gen == gen {
                        *re = e;
                        self.published[s] = e.clock;
                        self.stats.read_sync_hits += 1;
                        return (FastPath::CacheHit, gen);
                    }
                    // Post-write re-read: the read state was collapsed by
                    // `t`'s own write at this very stack generation (the
                    // `n = n + 1` pattern reads and writes one source
                    // line). The write record's stack *is* the current
                    // stack, so the read record the slow path would build
                    // can be copied from it — no host snapshot needed.
                    if re.is_zero() && !w.is_zero() && w.tid == s && *w_gen == gen {
                        if let Some(wa) = w_access {
                            match acc {
                                Some(a) => {
                                    a.kind = AccessKind::Read;
                                    a.tid = t;
                                    a.stack.clone_from(&wa.stack);
                                }
                                None => {
                                    *acc = Some(RawAccess {
                                        kind: AccessKind::Read,
                                        stack: wa.stack.clone(),
                                        tid: t,
                                    })
                                }
                            }
                            *re = e;
                            *r_gen = gen;
                            self.published[s] = e.clock;
                            self.stats.read_sync_hits += 1;
                            return (FastPath::CacheHit, gen);
                        }
                    }
                }
                (FastPath::Miss, gen)
            }
            // Read-shared second chance: `t` re-reads a variable it is
            // already a recorded reader of, at an unchanged stack
            // generation. No write can have intervened (a write
            // collapses the shared state), so the slow path would
            // re-run an already dedup-identical write-read check and
            // overwrite `t`'s record with byte-identical content — all
            // that remains is `t`'s component of the read clock.
            ReadState::Shared(vc, accs) => {
                let gen = gen_fn();
                if self.sync_cache && gen.is_some() {
                    if let Some(recs) = accs.get_mut(&s) {
                        if recs.promote(gen) {
                            vc.set(s, e.clock);
                            self.published[s] = e.clock;
                            self.stats.read_sync_hits += 1;
                            return (FastPath::CacheHit, gen);
                        }
                    }
                }
                (FastPath::Miss, gen)
            }
        }
    }

    /// Full read transfer function — phase two, after a
    /// [`Detector::read_fast`] miss supplied the stack. `gen` must be
    /// the token passed to the matching fast call ([`StackGen::NONE`]
    /// when the host does not track stack generations).
    pub fn read_slow(
        &mut self,
        t: ThreadId,
        addr: Addr,
        var: NameId,
        stack: &[FrameId],
        gen: StackGen,
    ) {
        if self.sampled_out(addr) {
            return;
        }
        let s = self.slot(t);
        let ct = &self.clocks[s];
        let e = Epoch::new(s, ct.get(s));
        // The state record below stores the current epoch.
        self.published[s] = e.clock;
        let slot_owner = &self.slot_owner;
        let vs = Self::var_mut(
            &mut self.vars,
            &mut self.vars_sparse,
            self.dense_limit,
            addr,
        );

        // Same-epoch guard (no-op when correctly preceded by a
        // `read_fast` miss; keeps direct calls semantically identical to
        // the combined `read`).
        if let ReadState::Epoch(re, _) = &vs.r {
            if *re == e {
                return;
            }
        }

        // Write-read check.
        if !vs.w.le(ct) {
            let prev = vs.w_access.clone().unwrap_or_else(|| RawAccess {
                kind: AccessKind::Write,
                stack: Vec::new(),
                // Defensive only (a non-zero epoch always has a record):
                // resolve the slot to its current external owner.
                tid: slot_owner.get(vs.w.tid).copied().unwrap_or(vs.w.tid),
            });
            let race = RawRace {
                prev,
                cur: RawAccess {
                    kind: AccessKind::Read,
                    stack: stack.to_vec(),
                    tid: t,
                },
                addr,
                var,
            };
            Self::push_race(&mut self.races, &mut self.dedup, race);
        }

        // Update read state. The epoch-exclusive branch reuses the
        // existing record's stack buffer — steady-state slow reads are
        // allocation-free.
        match &mut vs.r {
            ReadState::Epoch(re, acc) => {
                if re.le(ct) {
                    *re = e;
                    match acc {
                        Some(a) => {
                            a.kind = AccessKind::Read;
                            a.tid = t;
                            a.stack.clear();
                            a.stack.extend_from_slice(stack);
                        }
                        None => {
                            *acc = Some(RawAccess {
                                kind: AccessKind::Read,
                                stack: stack.to_vec(),
                                tid: t,
                            })
                        }
                    }
                    vs.r_gen = gen;
                } else {
                    let mut vc = VectorClock::new();
                    vc.set(re.tid, re.clock);
                    vc.set(s, e.clock);
                    self.stats.clock_allocs += 1;
                    let mut accs: HashMap<ThreadId, ReaderRecords, FastBuildHasher> =
                        HashMap::default();
                    let prev_gen = vs.r_gen;
                    if let Some(a) = acc.take() {
                        accs.insert(re.tid, ReaderRecords::with(a, prev_gen));
                    }
                    accs.insert(
                        s,
                        ReaderRecords::with(
                            RawAccess {
                                kind: AccessKind::Read,
                                stack: stack.to_vec(),
                                tid: t,
                            },
                            gen,
                        ),
                    );
                    vs.r = ReadState::Shared(vc, accs);
                    vs.r_gen = StackGen::NONE;
                }
            }
            ReadState::Shared(vc, accs) => {
                vc.set(s, e.clock);
                // Front-store into the reader's MRU records (same-site
                // refreshes reuse the existing stack buffer: repeated
                // shared reads are allocation-free).
                accs.entry(s).or_default().store(t, stack, gen);
                vs.r_gen = StackGen::NONE;
            }
        }
    }

    /// Processes a read of `addr` by `t` (combined fast + slow phases).
    pub fn read(&mut self, t: ThreadId, addr: Addr, var: NameId, stack: &[FrameId]) {
        if self.read_fast(t, addr, StackGen::NONE) == FastPath::Miss {
            self.read_slow(t, addr, var, stack, StackGen::NONE);
        }
    }

    /// Same-epoch write check — phase one of a write event.
    ///
    /// [`FastPath::EpochHit`]: the write repeats within `t`'s current
    /// epoch. [`FastPath::CacheHit`]: `t` exclusively owns the variable
    /// (write epoch and read state both its own) and `gen` proves the
    /// stored write record is still current — the transfer function
    /// reduces to bumping the write epoch and collapsing the read
    /// state, applied here in place. [`FastPath::Miss`]: the host must
    /// follow up with [`Detector::write_slow`], passing the same `gen`.
    #[inline]
    pub fn write_fast(&mut self, t: ThreadId, addr: Addr, gen: StackGen) -> FastPath {
        self.write_fast_with(t, addr, || gen).0
    }

    /// [`Detector::write_fast`] with a lazily derived stack token (see
    /// [`Detector::read_fast_with`]).
    #[inline]
    pub fn write_fast_with<F: FnOnce() -> StackGen>(
        &mut self,
        t: ThreadId,
        addr: Addr,
        gen_fn: F,
    ) -> (FastPath, StackGen) {
        self.stats.events += 1;
        if self.sampled_out(addr) {
            self.shadow.sampled_skips += 1;
            return (FastPath::EpochHit, StackGen::NONE);
        }
        let s = self.slot(t);
        let e = Epoch::new(s, self.clocks[s].get(s));
        let vs = Self::var_mut(
            &mut self.vars,
            &mut self.vars_sparse,
            self.dense_limit,
            addr,
        );
        if vs.w == e {
            self.stats.write_fast_hits += 1;
            return (FastPath::EpochHit, StackGen::NONE);
        }
        let gen = gen_fn();
        // Lock-aware second chance: `t` owns the write epoch (its own
        // component only ever grows, so `vs.w.le(ct)` holds), the read
        // state is absent or also `t`'s (same argument), and the stored
        // write record's stack is unchanged — the slow path would
        // record no new race (any replay dedups to an already-recorded
        // one) and write back exactly this state with `w = e`.
        if self.sync_cache && gen.is_some() && !vs.w.is_zero() && vs.w.tid == s && vs.w_gen == gen {
            if let ReadState::Epoch(re, _) = &mut vs.r {
                if re.is_zero() || re.tid == s {
                    vs.w = e;
                    // FastTrack WriteShared collapse, as the slow path
                    // does after its checks (the dead record's buffer
                    // is kept for the next slow read to reuse — a zero
                    // epoch never exposes it).
                    *re = Epoch::ZERO;
                    vs.r_gen = StackGen::NONE;
                    self.published[s] = e.clock;
                    self.stats.write_sync_hits += 1;
                    return (FastPath::CacheHit, gen);
                }
            }
        }
        (FastPath::Miss, gen)
    }

    /// Full write transfer function — phase two, after a
    /// [`Detector::write_fast`] miss supplied the stack. `gen` must be
    /// the token passed to the matching fast call ([`StackGen::NONE`]
    /// when the host does not track stack generations).
    pub fn write_slow(
        &mut self,
        t: ThreadId,
        addr: Addr,
        var: NameId,
        stack: &[FrameId],
        gen: StackGen,
    ) {
        if self.sampled_out(addr) {
            return;
        }
        let s = self.slot(t);
        let ct = &self.clocks[s];
        let e = Epoch::new(s, ct.get(s));
        // The state record below stores the current epoch.
        self.published[s] = e.clock;
        let slot_owner = &self.slot_owner;
        let vs = Self::var_mut(
            &mut self.vars,
            &mut self.vars_sparse,
            self.dense_limit,
            addr,
        );

        // Same-epoch guard (see `read_slow`).
        if vs.w == e {
            return;
        }

        let mk_cur = || RawAccess {
            kind: AccessKind::Write,
            stack: stack.to_vec(),
            tid: t,
        };

        // Write-write check.
        if !vs.w.le(ct) {
            let prev = vs.w_access.clone().unwrap_or_else(|| RawAccess {
                kind: AccessKind::Write,
                stack: Vec::new(),
                // Defensive only — see `read_slow`.
                tid: slot_owner.get(vs.w.tid).copied().unwrap_or(vs.w.tid),
            });
            let race = RawRace {
                prev,
                cur: mk_cur(),
                addr,
                var,
            };
            Self::push_race(&mut self.races, &mut self.dedup, race);
        }

        // Read-write check.
        match &vs.r {
            ReadState::Epoch(re, racc) => {
                if !re.is_zero() && !re.le(ct) {
                    let prev = racc.clone().unwrap_or_else(|| RawAccess {
                        kind: AccessKind::Read,
                        stack: Vec::new(),
                        tid: slot_owner.get(re.tid).copied().unwrap_or(re.tid),
                    });
                    let race = RawRace {
                        prev,
                        cur: mk_cur(),
                        addr,
                        var,
                    };
                    Self::push_race(&mut self.races, &mut self.dedup, race);
                }
            }
            ReadState::Shared(vc, accs) => {
                for (tid, val) in vc.iter() {
                    if val > ct.get(tid) {
                        let prev = accs
                            .get(&tid)
                            .and_then(|r| r.current())
                            .cloned()
                            .unwrap_or_else(|| RawAccess {
                                kind: AccessKind::Read,
                                stack: Vec::new(),
                                tid: slot_owner.get(tid).copied().unwrap_or(tid),
                            });
                        let race = RawRace {
                            prev,
                            cur: mk_cur(),
                            addr,
                            var,
                        };
                        Self::push_race(&mut self.races, &mut self.dedup, race);
                    }
                }
            }
        }

        vs.w = e;
        // Reuse the previous record's stack buffer — steady-state slow
        // writes are allocation-free.
        match &mut vs.w_access {
            Some(a) => {
                a.kind = AccessKind::Write;
                a.tid = t;
                a.stack.clear();
                a.stack.extend_from_slice(stack);
            }
            None => vs.w_access = Some(mk_cur()),
        }
        vs.w_gen = gen;
        // FastTrack WriteShared: collapse the read state after checking.
        // An epoch-state collapse keeps the dead record's stack buffer —
        // the zero epoch guards every use of it, and the next slow read
        // refills it in place instead of allocating.
        match &mut vs.r {
            ReadState::Epoch(re, _) => *re = Epoch::ZERO,
            ReadState::Shared(..) => vs.r = ReadState::Epoch(Epoch::ZERO, None),
        }
        vs.r_gen = StackGen::NONE;
    }

    /// Processes a write of `addr` by `t` (combined fast + slow phases).
    pub fn write(&mut self, t: ThreadId, addr: Addr, var: NameId, stack: &[FrameId]) {
        if self.write_fast(t, addr, StackGen::NONE) == FastPath::Miss {
            self.write_slow(t, addr, var, stack, StackGen::NONE);
        }
    }

    fn push_race(
        races: &mut Vec<RawRace>,
        dedup: &mut HashSet<u64, FastBuildHasher>,
        race: RawRace,
    ) {
        let mut h = Fnv1a::new();
        h.write(&race.var.to_le_bytes());
        // Symmetric over the two stacks: hash the sorted pair of leaves
        // plus full-stack hashes.
        let mut stack_hashes: Vec<u64> = [&race.prev, &race.cur]
            .iter()
            .map(|a| {
                let mut sh = Fnv1a::new();
                for fid in &a.stack {
                    sh.write(&fid.to_le_bytes());
                }
                sh.finish()
            })
            .collect();
        stack_hashes.sort_unstable();
        for s in stack_hashes {
            h.write(&s.to_le_bytes());
        }
        if dedup.insert(h.finish()) {
            races.push(race);
        }
    }

    /// Lock acquire: joins the sync object's release clock into `t`.
    ///
    /// The join is skipped (same result, `sync_epoch_hits` counted)
    /// when the sync-epoch cache proves `t` already contains the stored
    /// clock: the last release was a plain release by thread `u` at
    /// epoch `c@u`, and `t`'s clock already has `u ≥ c` — then the
    /// stored clock (exactly `u`'s clock at `c`) is pointwise ≤ `t`'s.
    /// The logical `clock_joins` / `clock_allocs_avoided` counters are
    /// incremented either way, so counter baselines do not depend on
    /// the cache.
    pub fn acquire(&mut self, t: ThreadId, sync: u64) {
        let slot = self.slot(t);
        if let Some(s) = self.syncs.get(&sync) {
            self.stats.clock_joins += 1;
            self.stats.clock_allocs_avoided += 1;
            if self.sync_cache {
                if let Some(re) = s.release_epoch {
                    if re.le(&self.clocks[slot]) {
                        self.stats.sync_epoch_hits += 1;
                        return;
                    }
                }
            }
            self.clocks[slot].join(&s.clock);
        }
    }

    /// Lock release: stores `t`'s clock in the sync object and advances
    /// `t`. The sync object's existing buffer is reused when present,
    /// and the sync-epoch cache is refreshed — the stored clock is
    /// exactly `t`'s, so the epoch `c@t` summarises it.
    pub fn release(&mut self, t: ThreadId, sync: u64) {
        let slot = self.slot(t);
        let epoch = Some(Epoch::new(slot, self.clocks[slot].get(slot)));
        match self.syncs.entry(sync) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let s = e.get_mut();
                s.clock.copy_from(&self.clocks[slot]);
                s.release_epoch = epoch;
                self.stats.clock_allocs_avoided += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(SyncState {
                    clock: self.clocks[slot].clone(),
                    release_epoch: epoch,
                });
                self.stats.clock_allocs += 1;
            }
        }
        self.publish(slot);
        self.clocks[slot].tick(slot);
    }

    /// Merge-release (wait-group `Done`, RWMutex `RUnlock`): joins `t`'s
    /// clock into the sync object without overwriting other releasers.
    /// Invalidates the sync-epoch cache — no single releaser's epoch
    /// summarises the joined clock.
    pub fn release_merge(&mut self, t: ThreadId, sync: u64) {
        let slot = self.slot(t);
        match self.syncs.entry(sync) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let s = e.get_mut();
                s.clock.join(&self.clocks[slot]);
                s.release_epoch = None;
                self.stats.clock_joins += 1;
                self.stats.clock_allocs_avoided += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(SyncState {
                    clock: self.clocks[slot].clone(),
                    release_epoch: Some(Epoch::new(slot, self.clocks[slot].get(slot))),
                });
                self.stats.clock_allocs += 1;
            }
        }
        self.publish(slot);
        self.clocks[slot].tick(slot);
    }

    /// Sequentially-consistent atomic edge: total order between all
    /// atomic operations on `sync` (each op both acquires and releases).
    pub fn atomic_op(&mut self, t: ThreadId, sync: u64) {
        let slot = self.slot(t);
        match self.syncs.entry(sync) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let s = e.get_mut();
                self.clocks[slot].join(&s.clock);
                s.clock.copy_from(&self.clocks[slot]);
                // Post-join the stored clock is exactly `t`'s again.
                s.release_epoch = Some(Epoch::new(slot, self.clocks[slot].get(slot)));
                self.stats.clock_joins += 1;
                self.stats.clock_allocs_avoided += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(SyncState {
                    clock: self.clocks[slot].clone(),
                    release_epoch: Some(Epoch::new(slot, self.clocks[slot].get(slot))),
                });
                self.stats.clock_allocs += 1;
            }
        }
        self.publish(slot);
        self.clocks[slot].tick(slot);
    }

    /// Snapshots `t`'s clock (release half of a message send) and advances
    /// `t`. The returned clock travels with the message.
    pub fn release_snapshot(&mut self, t: ThreadId) -> VectorClock {
        let slot = self.slot(t);
        let c = self.clocks[slot].clone();
        self.stats.clock_allocs += 1;
        self.publish(slot);
        self.clocks[slot].tick(slot);
        c
    }

    /// Joins a message clock into `t` (acquire half of a message receive).
    pub fn acquire_clock(&mut self, t: ThreadId, vc: &VectorClock) {
        let slot = self.slot(t);
        self.clocks[slot].join(vc);
        self.stats.clock_joins += 1;
    }

    /// Forgets a freed cell. Forgetting an address that was never
    /// accessed — including a dense slot no page ever grew to cover —
    /// is a no-op, and `forget` never moves [`Detector::stats`].
    pub fn forget(&mut self, addr: Addr) {
        let i = addr as usize;
        if addr < self.dense_limit {
            if let Some(Some(page)) = self.vars.get_mut(i >> PAGE_BITS) {
                page[i & (PAGE_SIZE - 1)] = VarState::default();
            }
        } else {
            self.vars_sparse.remove(&addr);
        }
    }

    /// The largest retirement frontier valid right now: the pointwise
    /// minimum of every live thread's clock. Clocks only grow and every
    /// future thread inherits a live parent's clock at fork, so this
    /// frontier happens-before every future event — exactly the
    /// precondition [`Detector::collect`] needs. Returns `None` when no
    /// thread is live (nothing more can happen; collecting is moot).
    pub fn live_frontier(&self) -> Option<VectorClock> {
        let mut live = self
            .clocks
            .iter()
            .zip(&self.slot_live)
            .filter(|&(_, &l)| l)
            .map(|(c, _)| c);
        let mut f = live.next()?.clone();
        for c in live {
            f.meet(c);
        }
        Some(f)
    }

    /// `true` when every access recorded in `vs` sits strictly below
    /// the frontier: no future access can race with it *and* no live
    /// thread's current epoch equals a stored epoch (which is what
    /// keeps the same-epoch fast-hit stream, hence every logical
    /// counter, bit-identical after retirement).
    fn state_dead(vs: &VarState, f: &VectorClock) -> bool {
        let w_dead = vs.w.is_zero() || vs.w.clock < f.get(vs.w.tid);
        if !w_dead {
            return false;
        }
        match &vs.r {
            ReadState::Epoch(re, _) => re.is_zero() || re.clock < f.get(re.tid),
            // Shared states have no same-epoch path, so plain
            // happens-before suffices per component.
            ReadState::Shared(vc, _) => vc.iter().all(|(s, v)| v <= f.get(s)),
        }
    }

    /// `true` when `vs` holds no shadow content (default, or a cleared
    /// shared husk).
    fn state_is_empty(vs: &VarState) -> bool {
        vs.w.is_zero()
            && vs.w_access.is_none()
            && match &vs.r {
                ReadState::Epoch(re, acc) => re.is_zero() && acc.is_none(),
                ReadState::Shared(vc, accs) => vc.iter().next().is_none() && accs.is_empty(),
            }
    }

    /// `true` when `vs` is byte-equivalent to a never-touched state
    /// (epoch-shaped default — the page-free eligibility test).
    fn state_is_pristine(vs: &VarState) -> bool {
        vs.w.is_zero()
            && vs.w_access.is_none()
            && matches!(&vs.r, ReadState::Epoch(re, acc) if re.is_zero() && acc.is_none())
    }

    /// Retires one dead state in place, freeing its buffers. Epoch
    /// states reset to the pristine default; read-shared states are
    /// cleared but keep their `Shared` shape (module docs). Returns
    /// `true` if the slot is now pristine.
    fn retire_state(vs: &mut VarState, shadow: &mut ShadowStats) -> bool {
        shadow.states_collected += 1;
        match &vs.r {
            ReadState::Shared(..) => {
                vs.w = Epoch::ZERO;
                vs.w_access = None;
                vs.w_gen = StackGen::NONE;
                vs.r = ReadState::Shared(VectorClock::new(), HashMap::default());
                vs.r_gen = StackGen::NONE;
                shadow.shared_states_cleared += 1;
                false
            }
            ReadState::Epoch(..) => {
                *vs = VarState::default();
                true
            }
        }
    }

    /// Epoch-based shadow GC: sweeps the dense pages and the sparse
    /// map, retiring every variable state strictly below `frontier` —
    /// a clock the host guarantees happens-before every future event
    /// ([`Detector::live_frontier`] computes the largest such clock).
    /// Fully vacated dense pages are freed. Returns the number of
    /// states retired by this pass.
    ///
    /// Purely physical: races, bug hashes and every logical
    /// [`DetStats`] counter are bit-identical whether or not a host
    /// ever collects — only [`ShadowStats`] and memory move. `collect`
    /// generalises [`Detector::forget`] (one address, host asserts
    /// deadness) to a whole-shadow sweep with a proof obligation the
    /// detector checks per state.
    pub fn collect(&mut self, frontier: &VectorClock) -> u64 {
        let before = self.shadow.states_collected;
        let shadow = &mut self.shadow;
        for slot in self.vars.iter_mut() {
            let Some(page) = slot else { continue };
            let mut pristine = true;
            for vs in page.iter_mut() {
                if !Self::state_is_empty(vs) && Self::state_dead(vs, frontier) {
                    Self::retire_state(vs, shadow);
                }
                pristine &= Self::state_is_pristine(vs);
            }
            if pristine {
                *slot = None;
                shadow.pages_freed += 1;
            }
        }
        self.vars_sparse.retain(|_, vs| {
            if Self::state_is_empty(vs) || !Self::state_dead(vs, frontier) {
                // Keep live states and shared husks; drop a pristine
                // entry (it behaves exactly like an absent one).
                return !Self::state_is_pristine(vs);
            }
            !Self::retire_state(vs, shadow)
        });
        shadow.collect_passes += 1;
        shadow.states_collected - before
    }

    /// Number of variable states currently holding shadow content
    /// (the streaming-memory bound the soak tests assert on).
    pub fn live_states(&self) -> u64 {
        let dense: usize = self
            .vars
            .iter()
            .flatten()
            .map(|p| p.iter().filter(|vs| !Self::state_is_empty(vs)).count())
            .sum();
        let sparse = self
            .vars_sparse
            .values()
            .filter(|vs| !Self::state_is_empty(vs))
            .count();
        (dense + sparse) as u64
    }

    /// Deterministic estimate of resident shadow memory: allocated
    /// dense pages, sparse entries and clock storage. Not an exact
    /// allocator measurement (record stacks and shared maps are
    /// excluded), but an exact function of the event sequence, so the
    /// perf gate can track it without wall-clock noise.
    pub fn shadow_bytes(&self) -> u64 {
        let state = std::mem::size_of::<VarState>() as u64;
        let pages = self.vars.iter().flatten().count() as u64 * PAGE_SIZE as u64 * state;
        let sparse = self.vars_sparse.len() as u64 * state;
        let clocks: u64 = self
            .clocks
            .iter()
            .map(|c| 4 * c.width() as u64)
            .sum::<u64>()
            + 4 * self.retired.width() as u64;
        pages + sparse + clocks
    }

    /// Races recorded so far.
    pub fn races(&self) -> &[RawRace] {
        &self.races
    }

    /// Consumes the detector, returning all recorded races.
    pub fn into_races(self) -> Vec<RawRace> {
        self.races
    }

    /// Current clock of live thread `t` (for tests and debugging).
    pub fn clock(&self, t: ThreadId) -> &VectorClock {
        &self.clocks[self.slot_of[t]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Addr = 100;
    const V: NameId = 1;

    fn stack(id: FrameId) -> Vec<FrameId> {
        vec![id]
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].prev.kind, AccessKind::Write);
        assert_eq!(d.races()[0].cur.kind, AccessKind::Write);
    }

    #[test]
    fn fork_edge_orders_parent_prefix() {
        let mut d = Detector::new();
        d.write(0, A, V, &stack(1)); // before fork
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(2)); // child sees parent's prefix
        assert!(d.races().is_empty());
        // But a parent write AFTER the fork races with the child.
        d.write(0, A, V, &stack(3));
        d.read(t1, A, V, &stack(4));
        assert!(!d.races().is_empty());
    }

    #[test]
    fn mutex_orders_critical_sections() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let m = 7;
        d.acquire(0, m);
        d.write(0, A, V, &stack(1));
        d.release(0, m);
        d.acquire(t1, m);
        d.write(t1, A, V, &stack(2));
        d.release(t1, m);
        assert!(d.races().is_empty());
    }

    #[test]
    fn mutex_on_different_locks_does_not_order() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.acquire(0, 7);
        d.write(0, A, V, &stack(1));
        d.release(0, 7);
        d.acquire(t1, 8);
        d.write(t1, A, V, &stack(2));
        d.release(t1, 8);
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn waitgroup_merge_release_orders_all_children() {
        let mut d = Detector::new();
        let wg = 9;
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.release_merge(t1, wg); // Done
        d.write(t2, 200, V, &stack(2));
        d.release_merge(t2, wg); // Done
        d.acquire(0, wg); // Wait
        d.read(0, A, V, &stack(3));
        d.read(0, 200, V, &stack(4));
        assert!(d.races().is_empty());
    }

    #[test]
    fn plain_release_would_lose_first_done() {
        // Demonstrates why Done must merge: with plain release the second
        // Done overwrites the first child's clock.
        let mut d = Detector::new();
        let wg = 9;
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.release(t1, wg);
        d.release(t2, wg); // overwrites
        d.acquire(0, wg);
        d.read(0, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn message_clocks_order_send_before_receive() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        let msg = d.release_snapshot(t1); // send
        d.acquire_clock(0, &msg); // receive
        d.read(0, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn read_shared_then_unordered_write_races_with_each_reader() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.read(t1, A, V, &stack(1));
        d.read(t2, A, V, &stack(2));
        d.write(0, A, V, &stack(3));
        // Races with both readers (two distinct reports).
        assert_eq!(d.races().len(), 2);
        assert!(d
            .races()
            .iter()
            .all(|r| r.prev.kind == AccessKind::Read && r.cur.kind == AccessKind::Write));
    }

    #[test]
    fn atomics_totally_order_operations() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let flag = 11;
        d.write(0, A, V, &stack(1));
        d.atomic_op(0, flag); // store
        d.atomic_op(t1, flag); // load (later in the serialized run)
        d.read(t1, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn duplicate_races_are_deduped() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn join_thread_orders_child_suffix() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.join_thread(0, t1);
        d.write(0, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn same_epoch_fast_path_skips_duplicate_work() {
        let mut d = Detector::new();
        d.write(0, A, V, &stack(1));
        let before = d.stats().events;
        d.write(0, A, V, &stack(1));
        d.write(0, A, V, &stack(1));
        assert_eq!(d.stats().events, before + 2);
        assert_eq!(d.stats().write_fast_hits, 2);
        assert!(d.races().is_empty());
    }

    #[test]
    fn two_phase_api_matches_combined_calls() {
        // Drive the same event sequence through the combined and the
        // two-phase APIs: identical races and identical counters.
        let drive = |two_phase: bool| {
            let mut d = Detector::new();
            let t1 = d.fork(0);
            let events: Vec<(ThreadId, AccessKind, Addr)> = vec![
                (0, AccessKind::Write, A),
                (0, AccessKind::Read, A),
                (0, AccessKind::Read, A),
                (t1, AccessKind::Read, A),
                (t1, AccessKind::Write, A),
                (0, AccessKind::Write, 300),
                (t1, AccessKind::Read, 300),
            ];
            for (i, (t, kind, addr)) in events.into_iter().enumerate() {
                let st = stack(i as FrameId);
                match (kind, two_phase) {
                    (AccessKind::Read, true) => {
                        if d.read_fast(t, addr, StackGen::NONE) == FastPath::Miss {
                            d.read_slow(t, addr, V, &st, StackGen::NONE);
                        }
                    }
                    (AccessKind::Read, false) => d.read(t, addr, V, &st),
                    (AccessKind::Write, true) => {
                        if d.write_fast(t, addr, StackGen::NONE) == FastPath::Miss {
                            d.write_slow(t, addr, V, &st, StackGen::NONE);
                        }
                    }
                    (AccessKind::Write, false) => d.write(t, addr, V, &st),
                }
            }
            (d.races().to_vec(), *d.stats())
        };
        let (races_combined, stats_combined) = drive(false);
        let (races_split, stats_split) = drive(true);
        assert_eq!(races_combined, races_split);
        assert_eq!(stats_combined, stats_split);
        assert!(stats_combined.fast_hits() > 0);
    }

    #[test]
    fn sparse_addresses_fall_back_to_the_overflow_map() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let far = (DENSE_LIMIT as Addr) + 17;
        d.write(0, far, V, &stack(1));
        d.write(t1, far, V, &stack(2));
        assert_eq!(d.races().len(), 1);
        d.forget(far);
        d.write(t1, far, V, &stack(3));
        assert_eq!(d.races().len(), 1, "forget resets the cell state");
    }

    /// A miniature host: replays a shared trace through any of the
    /// three API shapes, with an honest stack-generation scheme (the
    /// stack is a pure function of the gen, like a real host's frame
    /// stack). `sync` events are lock acquire+release pairs so epochs
    /// advance the way sync-heavy programs advance them.
    #[derive(Clone, Copy)]
    enum Ev {
        R(ThreadId, Addr, u64),
        W(ThreadId, Addr, u64),
        /// acquire+release of lock `sync` by the thread.
        Cs(ThreadId, u64),
    }

    fn drive_trace(events: &[Ev], mode: u8, cache: bool) -> (Vec<RawRace>, DetStats) {
        // mode 0: combined; 1: two-phase without gens; 2: two-phase
        // with real gens.
        let mut d = Detector::new();
        d.set_sync_cache(cache);
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        assert_eq!((t1, t2), (1, 2));
        for ev in events {
            match *ev {
                Ev::Cs(t, s) => {
                    d.acquire(t, s);
                    d.release(t, s);
                }
                Ev::R(t, addr, g) => {
                    let st = vec![g as FrameId];
                    let gen = if mode == 2 {
                        StackGen::from_parts(0, g as u32)
                    } else {
                        StackGen::NONE
                    };
                    match mode {
                        0 => d.read(t, addr, V, &st),
                        _ => {
                            if d.read_fast(t, addr, gen) == FastPath::Miss {
                                d.read_slow(t, addr, V, &st, gen);
                            }
                        }
                    }
                }
                Ev::W(t, addr, g) => {
                    let st = vec![g as FrameId];
                    let gen = if mode == 2 {
                        StackGen::from_parts(0, g as u32)
                    } else {
                        StackGen::NONE
                    };
                    match mode {
                        0 => d.write(t, addr, V, &st),
                        _ => {
                            if d.write_fast(t, addr, gen) == FastPath::Miss {
                                d.write_slow(t, addr, V, &st, gen);
                            }
                        }
                    }
                }
            }
        }
        (d.races().to_vec(), *d.stats())
    }

    /// A sync-heavy trace with same-thread streaks (owner-cache hits),
    /// cross-thread handoffs (true slow paths), a read-shared phase and
    /// a genuine race.
    fn mixed_trace() -> Vec<Ev> {
        use Ev::*;
        let mut t = Vec::new();
        // t1 and t2 increment A under the lock, in streaks.
        for round in 0..4 {
            let owner = 1 + (round % 2);
            for _ in 0..3 {
                t.push(Cs(owner, 7));
                t.push(R(owner, A, 10));
                t.push(W(owner, A, 11));
            }
        }
        // Read-shared phase on another cell, then a racy write.
        t.push(R(1, 300, 20));
        t.push(R(2, 300, 21));
        t.push(W(0, 300, 22));
        // Unsynchronised same-line loop (same-epoch fast path).
        t.push(W(0, 400, 30));
        t.push(W(0, 400, 30));
        t.push(R(0, 400, 31));
        t
    }

    /// Satellite: every access counts `events` exactly once, in every
    /// API shape — combined, two-phase, and two-phase with the
    /// lock-aware cache engaged — and races plus every *logical*
    /// counter are bit-identical across all of them.
    #[test]
    fn counter_exactness_across_api_shapes() {
        let trace = mixed_trace();
        let n_accesses = trace
            .iter()
            .filter(|e| matches!(e, Ev::R(..) | Ev::W(..)))
            .count() as u64;
        let (races0, stats0) = drive_trace(&trace, 0, true);
        let (races1, stats1) = drive_trace(&trace, 1, true);
        let (races2, stats2) = drive_trace(&trace, 2, true);
        let (races3, stats3) = drive_trace(&trace, 2, false);

        assert_eq!(stats0.events, n_accesses, "each access counts once");
        assert_eq!(races0, races1);
        assert_eq!(races0, races2, "owner cache must not change races");
        assert_eq!(races0, races3);
        assert_eq!(stats0, stats1, "two-phase ≡ combined, counter-exact");

        // With real gens the cache absorbs slow transfers, but every
        // logical counter stays bit-identical; only the new sync-hit
        // counters move.
        let logical = |s: &DetStats| {
            (
                s.events,
                s.read_fast_hits,
                s.write_fast_hits,
                s.clock_joins,
                s.clock_allocs,
                s.clock_allocs_avoided,
            )
        };
        assert_eq!(logical(&stats0), logical(&stats2));
        assert_eq!(logical(&stats0), logical(&stats3));
        assert!(stats2.sync_hits() > 0, "{stats2:?}");
        assert!(stats2.sync_epoch_hits > 0, "{stats2:?}");
        assert_eq!(stats3.sync_hits(), 0, "cache off never second-chances");
        assert_eq!(stats3.sync_epoch_hits, 0);
        // A cache hit replaces a slow transfer, never a fast hit.
        assert_eq!(stats2.fast_hits(), stats0.fast_hits());
    }

    /// The owner cache must drop out as soon as another thread touches
    /// the variable or the owner's stack generation changes.
    #[test]
    fn owner_cache_invalidates_on_ownership_or_stack_change() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let g = StackGen::from_parts(0, 5);
        let m = 7;
        d.acquire(0, m);
        assert_eq!(d.write_fast(0, A, g), FastPath::Miss);
        d.write_slow(0, A, V, &stack(5), g);
        d.release(0, m);
        // Same thread, same stack gen, epoch advanced by the release:
        // second chance.
        d.acquire(0, m);
        assert_eq!(d.write_fast(0, A, g), FastPath::CacheHit);
        d.release(0, m);
        // Same thread but a different stack gen: full slow path.
        d.acquire(0, m);
        let g2 = StackGen::from_parts(1, 5);
        assert_eq!(d.write_fast(0, A, g2), FastPath::Miss);
        d.write_slow(0, A, V, &stack(6), g2);
        d.release(0, m);
        // Another thread under the same lock: miss (ownership moved),
        // and after it the original owner misses too.
        d.acquire(t1, m);
        let gt = StackGen::from_parts(0, 9);
        assert_eq!(d.write_fast(t1, A, gt), FastPath::Miss);
        d.write_slow(t1, A, V, &stack(9), gt);
        d.release(t1, m);
        d.acquire(0, m);
        assert_eq!(d.write_fast(0, A, g2), FastPath::Miss);
        assert!(d.races().is_empty(), "properly locked: no races");
    }

    /// `StackGen::NONE` never matches a stored generation — hosts that
    /// do not track stacks can never get a stale record reused.
    #[test]
    fn none_gen_never_cache_hits() {
        let mut d = Detector::new();
        let m = 7;
        for i in 0..3 {
            d.acquire(0, m);
            assert_eq!(d.write_fast(0, A, StackGen::NONE), FastPath::Miss);
            d.write_slow(0, A, V, &stack(i), StackGen::NONE);
            d.release(0, m);
        }
        assert_eq!(d.stats().sync_hits(), 0);
    }

    /// The per-sync release epoch short-circuits self-reacquires but
    /// never a handoff that carries new information.
    #[test]
    fn sync_epoch_cache_skips_only_provable_joins() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let m = 7;
        d.acquire(0, m); // no sync state yet: no join at all
        d.release(0, m);
        let before = d.stats().sync_epoch_hits;
        d.acquire(0, m); // self-reacquire: skippable
        assert_eq!(d.stats().sync_epoch_hits, before + 1);
        d.write(0, A, V, &stack(1));
        d.release(0, m);
        // Handoff to t1: t1 has never seen 0's release epoch, so the
        // join must happen — and it is what orders the write.
        d.acquire(t1, m);
        d.write(t1, A, V, &stack(2));
        assert!(d.races().is_empty(), "handoff join must not be skipped");
        // After the join, t1 knows 0's epoch: re-acquire is skippable.
        d.release(t1, m);
        let before = d.stats().sync_epoch_hits;
        d.acquire(t1, m);
        assert_eq!(d.stats().sync_epoch_hits, before + 1);
    }

    /// Merge-releases invalidate the sync epoch: a `Wait`-style acquire
    /// after two `Done`s must always join.
    #[test]
    fn merge_release_invalidates_sync_epoch() {
        let mut d = Detector::new();
        let wg = 9;
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.release(t1, wg);
        d.write(t2, 200, V, &stack(2));
        d.release_merge(t2, wg); // merge: epoch invalidated
        d.acquire(0, wg);
        d.read(0, A, V, &stack(3));
        d.read(0, 200, V, &stack(4));
        assert!(d.races().is_empty(), "merge clock must be fully joined");
    }

    /// Satellite: accesses and forgets at, below and above the
    /// dense/sparse crossover behave identically, and `forget` of a
    /// never-grown dense slot is a no-op with no stats drift.
    #[test]
    fn dense_sparse_crossover_is_seamless() {
        const LIMIT: usize = 8;
        let limit = LIMIT as Addr;
        // The same two-thread racy trace at the boundary addresses must
        // produce identical races and identical counters per address.
        let run_at = |addr: Addr| {
            let mut d = Detector::with_dense_limit(LIMIT);
            let t1 = d.fork(0);
            d.write(0, addr, V, &stack(1));
            d.write(t1, addr, V, &stack(2));
            d.read(0, addr, V, &stack(3));
            (d.races().len(), *d.stats())
        };
        let (below, s_below) = run_at(limit - 1);
        let (at, s_at) = run_at(limit);
        let (above, s_above) = run_at(limit + 1);
        assert_eq!(below, 2, "write-write + write-read");
        assert_eq!((below, s_below), (at, s_at));
        assert_eq!((below, s_below), (above, s_above));

        // forget resets each side of the boundary identically…
        let forget_roundtrip = |addr: Addr| {
            let mut d = Detector::with_dense_limit(LIMIT);
            let t1 = d.fork(0);
            d.write(0, addr, V, &stack(1));
            d.forget(addr);
            let stats_after_forget = *d.stats();
            d.write(t1, addr, V, &stack(2));
            (d.races().len(), stats_after_forget)
        };
        for addr in [limit - 1, limit, limit + 1] {
            let (races, _) = forget_roundtrip(addr);
            assert_eq!(races, 0, "forget at {addr} must reset the cell");
        }

        // …and forget never moves the stats.
        let mut d = Detector::with_dense_limit(LIMIT);
        d.write(0, 2, V, &stack(1));
        let before = *d.stats();
        d.forget(2);
        d.forget(limit - 1); // dense slot the array never grew to cover
        d.forget(limit); // sparse, never touched
        d.forget(limit + 100);
        assert_eq!(*d.stats(), before, "forget must not drift stats");
        // The never-grown dense slots stayed ungrown: everything here
        // lives on page 0, and forget must not allocate pages.
        assert!(d.vars.len() <= 1, "forget must not grow the page table");
        assert_eq!(
            d.vars.iter().flatten().count(),
            1,
            "forget must not allocate fresh pages"
        );
        // And forgetting the never-grown slot was a true no-op: a fresh
        // access there behaves like a first access.
        let t1 = d.fork(0);
        d.write(t1, limit - 1, V, &stack(2));
        assert!(d.races().is_empty());
    }

    /// The owner cache may never cache-hit across a read-shared state.
    #[test]
    fn shared_read_state_disables_second_chance() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let g = StackGen::from_parts(0, 1);
        // Build a shared read state.
        d.read(0, A, V, &stack(1));
        d.read(t1, A, V, &stack(2));
        // Writer with a matching gen story must still take the slow
        // path (the shared clock has to be checked reader by reader).
        let m = 7;
        d.acquire(0, m);
        assert_eq!(d.write_fast(0, A, g), FastPath::Miss);
        d.write_slow(0, A, V, &stack(3), g);
        d.release(0, m);
        assert_eq!(d.races().len(), 1, "t1's read races with 0's write");
    }

    #[test]
    fn lock_handoffs_reuse_sync_clock_buffers() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let m = 7;
        for _ in 0..4 {
            d.acquire(0, m);
            d.release(0, m);
            d.acquire(t1, m);
            d.release(t1, m);
        }
        let s = d.stats();
        // Only the very first release allocates; every later release
        // reuses the buffer, and every acquire joins in place.
        assert_eq!(s.clock_allocs, 2, "fork clone + first release");
        assert!(s.clock_allocs_avoided >= 14, "{s:?}");
    }

    /// Satellite: a race is still detected (with the right thread id
    /// and stack) after the racing goroutine exited — the stored
    /// access record plus the retired-clock accumulator preserve the
    /// unhappened-before edge past the clock slot's death.
    #[test]
    fn race_detected_after_racing_thread_exited() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.thread_exit(t1); // no join: the write stays unordered
        assert!(d.races().is_empty());
        d.write(0, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].prev.tid, t1, "report names the dead thread");
        assert_eq!(d.races()[0].prev.stack, stack(1));
        // The accumulator kept everything the dead ever published.
        assert!(d.retired_clock().get(1) > 0);
    }

    /// Satellite: exit-then-spawn reuses the dead thread's clock slot
    /// when (and only when) the exit is ordered before the fork, so
    /// clock width tracks live threads while external ids stay dense.
    #[test]
    fn exit_then_spawn_reuses_clock_slot() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.join_thread(0, t1); // exit ordered before everything later
        d.thread_exit(t1);
        assert_eq!(d.clock_width(), 2);
        let t2 = d.fork(0);
        assert_eq!(t2, 2, "external thread ids are never reused");
        assert_eq!(d.clock_width(), 2, "t2 reuses t1's clock slot");
        assert_eq!(d.shadow_stats().clock_slots_reclaimed, 1);
        // The join edge survives the slot handoff: t2's write to A is
        // ordered after t1's, and t1-vs-t2 stays two distinct threads
        // in every report-facing API.
        d.write(t2, A, V, &stack(2));
        assert!(d.races().is_empty(), "join edge must survive slot reuse");
    }

    /// The canonical VM exit shape: the worker's last event is a
    /// release (`wg.Done`, channel send), which ticks its clock *after*
    /// snapshotting — so the final clock is strictly above everything
    /// the waiter can ever learn. Eligibility keys on the *published*
    /// own-epoch instead, and must fire here.
    #[test]
    fn release_then_exit_is_reusable_after_acquire() {
        let wg = 5;
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.release_merge(t1, wg); // wg.Done — ticks t1 past the snapshot
        d.thread_exit(t1);
        // Before the waiter synchronises, the slot is not reusable.
        let t2 = d.fork(0);
        assert_eq!(d.clock_width(), 3, "pre-Wait fork must not reuse");
        // After wg.Wait, everything t1 published is covered.
        d.acquire(0, wg);
        let t3 = d.fork(0);
        assert_eq!(d.clock_width(), 3, "post-Wait fork reuses t1's slot");
        assert_eq!(d.shadow_stats().clock_slots_reclaimed, 1);
        // HB edges stay exact: t3 is ordered after t1's write (via the
        // wait-group), t2 is not.
        d.write(t3, A, V, &stack(3));
        assert!(d.races().is_empty(), "wg edge must survive slot reuse");
        d.write(t2, A, V, &stack(2));
        assert_eq!(d.races().len(), 1, "t2 still races with t3's write");
    }

    /// An *unsynchronised* exit is not eligible for reuse — handing the
    /// slot to a concurrent sibling would manufacture a false
    /// happens-before edge, so the width grows instead.
    #[test]
    fn unsynchronised_exit_is_not_reused() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.thread_exit(t1); // no join
        let t2 = d.fork(0);
        assert_eq!(d.clock_width(), 3, "concurrent sibling gets a fresh slot");
        assert_eq!(d.shadow_stats().clock_slots_reclaimed, 0);
        d.write(t2, A, V, &stack(2));
        assert_eq!(d.races().len(), 1, "t1 and t2 are concurrent");
        assert_eq!(d.races()[0].prev.tid, t1);
    }

    /// Satellite: on a single address, `collect` with a valid frontier
    /// is equivalent to the host asserting deadness via `forget` — same
    /// post-state, same (zero) logical stats movement, and a later
    /// access behaves like a first access in both.
    #[test]
    fn forget_and_collect_agree_on_a_single_address() {
        let run = |use_collect: bool| {
            let mut d = Detector::new();
            let t1 = d.fork(0);
            d.write(t1, A, V, &stack(1));
            // Tick past the access and order the exit before main's
            // future, making the state provably dead.
            d.acquire(t1, 7);
            d.release(t1, 7);
            d.join_thread(0, t1);
            d.thread_exit(t1);
            let logical = *d.stats();
            if use_collect {
                let f = d.live_frontier().expect("main is live");
                assert_eq!(d.collect(&f), 1, "exactly the one state dies");
            } else {
                d.forget(A);
            }
            assert_eq!(*d.stats(), logical, "lifecycle must not move stats");
            assert_eq!(d.live_states(), 0);
            // Fresh access: first-access behaviour, no race against the
            // discarded write.
            let t2 = d.fork(0);
            d.write(t2, A, V, &stack(2));
            (d.races().to_vec(), *d.stats())
        };
        assert_eq!(run(true), run(false));
    }

    /// A state at a *live* thread's current epoch must survive any
    /// collect — retiring it would break the same-epoch hit stream and
    /// drift the logical counters.
    #[test]
    fn collect_spares_live_frontier_states() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        let f = d.live_frontier().expect("live threads exist");
        assert_eq!(d.collect(&f), 0, "current-epoch state is not dead");
        assert_eq!(d.live_states(), 1);
        // The epoch fast path still hits.
        d.write(t1, A, V, &stack(1));
        assert_eq!(d.stats().write_fast_hits, 1);
    }

    /// Dense pages whose every state died are freed, and the byte
    /// estimator shrinks accordingly.
    #[test]
    fn collect_frees_dead_pages() {
        let n = 2 * PAGE_SIZE as Addr;
        let mut d = Detector::new();
        let t1 = d.fork(0);
        for a in 0..n {
            d.write(t1, a, V, &stack(1));
        }
        assert_eq!(d.live_states(), n);
        let bytes_full = d.shadow_bytes();
        d.acquire(t1, 7);
        d.release(t1, 7); // tick past the writes
        d.join_thread(0, t1);
        d.thread_exit(t1);
        let f = d.live_frontier().expect("main is live");
        assert_eq!(d.collect(&f), n);
        assert_eq!(d.live_states(), 0);
        assert_eq!(d.shadow_stats().pages_freed, 2);
        assert!(
            d.shadow_bytes() < bytes_full / 4,
            "freed pages must shrink the footprint ({} vs {})",
            d.shadow_bytes(),
            bytes_full
        );
    }

    /// Collecting mid-trace with the live frontier is logically
    /// invisible: identical races and identical `DetStats` against an
    /// uncollected reference replay, in both API shapes.
    #[test]
    fn collect_is_logically_invisible_on_traces() {
        let trace = mixed_trace();
        for mode in [0u8, 2] {
            let (races_ref, stats_ref) = drive_trace(&trace, mode, true);
            let mut d = Detector::new();
            d.set_sync_cache(true);
            let t1 = d.fork(0);
            let t2 = d.fork(0);
            assert_eq!((t1, t2), (1, 2));
            for (i, ev) in trace.iter().enumerate() {
                match *ev {
                    Ev::Cs(t, s) => {
                        d.acquire(t, s);
                        d.release(t, s);
                    }
                    Ev::R(t, addr, g) => {
                        let gen = if mode == 2 {
                            StackGen::from_parts(0, g as u32)
                        } else {
                            StackGen::NONE
                        };
                        match mode {
                            0 => d.read(t, addr, V, &[g as FrameId]),
                            _ => {
                                if d.read_fast(t, addr, gen) == FastPath::Miss {
                                    d.read_slow(t, addr, V, &[g as FrameId], gen);
                                }
                            }
                        }
                    }
                    Ev::W(t, addr, g) => {
                        let gen = if mode == 2 {
                            StackGen::from_parts(0, g as u32)
                        } else {
                            StackGen::NONE
                        };
                        match mode {
                            0 => d.write(t, addr, V, &[g as FrameId]),
                            _ => {
                                if d.write_fast(t, addr, gen) == FastPath::Miss {
                                    d.write_slow(t, addr, V, &[g as FrameId], gen);
                                }
                            }
                        }
                    }
                }
                if i % 3 == 2 {
                    let f = d.live_frontier().expect("all threads live");
                    d.collect(&f);
                }
            }
            assert_eq!(d.races().to_vec(), races_ref, "mode {mode}");
            assert_eq!(*d.stats(), stats_ref, "mode {mode}");
            assert!(d.shadow_stats().collect_passes > 0);
        }
    }

    /// Satellite: `sample_mod = 1` monitors everything; a coarser mod
    /// deterministically skips the off-residue addresses (no state, no
    /// race) while fully tracking the rest, and only the physical skip
    /// counter reveals the difference.
    #[test]
    fn sampling_is_deterministic_by_address() {
        let racy = |d: &mut Detector, addr: Addr| {
            let t1 = d.fork(0);
            d.write(0, addr, V, &stack(1));
            d.write(t1, addr, V, &stack(2));
        };
        let mut full = Detector::with_options(DetectorOptions::default());
        racy(&mut full, 4);
        assert_eq!(full.races().len(), 1, "sample_mod=1 finds every race");
        assert_eq!(full.shadow_stats().sampled_skips, 0);

        let opts = DetectorOptions { sample_mod: 4 };
        let mut hit = Detector::with_options(opts);
        racy(&mut hit, 6); // hash(6) % 4 == 0: monitored
        assert_eq!(hit.races().len(), 1);

        let mut miss = Detector::with_options(opts);
        racy(&mut miss, 7); // hash(7) % 4 != 0: skipped
        assert!(miss.races().is_empty(), "sampled-out race goes unseen");
        assert_eq!(miss.live_states(), 0, "no shadow state materialises");
        assert_eq!(miss.shadow_stats().sampled_skips, 2);
        // Events still count — sampling is a physical knob, but the
        // event stream length is part of the physical story the bench
        // report uses to compute recall honestly.
        assert_eq!(miss.stats().events, full.stats().events);
    }
}
