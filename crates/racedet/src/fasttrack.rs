//! The FastTrack dynamic race-detection algorithm (Flanagan & Freund,
//! PLDI 2009), as used by ThreadSanitizer-style runtimes.
//!
//! The detector is event-driven and VM-agnostic: the host runtime feeds
//! it reads/writes (with compact interned stacks) and happens-before
//! edges (fork, mutex acquire/release, merge-release for wait-groups,
//! sequentially-consistent atomic edges, and raw clock snapshot/join for
//! per-message channel synchronisation). Races are recorded — never
//! thrown — so a run reports every distinct race it observes, matching
//! the Go race detector's behaviour.
//!
//! # Hot path
//!
//! FastTrack's defining observation is that the overwhelming majority of
//! accesses repeat within the owning thread's current epoch and need no
//! vector-clock work at all. The detector therefore exposes a two-phase
//! API so the *host* can skip its own per-access bookkeeping too:
//!
//! 1. [`Detector::read_fast`] / [`Detector::write_fast`] perform the
//!    same-epoch check without needing a call stack — when they return
//!    `true` the event is fully processed and the host never has to
//!    materialise a stack snapshot;
//! 2. on a miss, the host builds the stack and calls
//!    [`Detector::read_slow`] / [`Detector::write_slow`], which run the
//!    full FastTrack transfer function.
//!
//! [`Detector::read`] / [`Detector::write`] remain as the combined
//! single-call form. Variable states live in a dense array indexed by
//! address (the host allocates cells densely), sync/dedup maps use a
//! fast deterministic hasher, and every clock operation either joins in
//! place or reuses an existing buffer — [`Detector::stats`] counts the
//! events, fast-path hits, joins, clock allocations and the allocations
//! those reuses avoided, and the counters are exactly reproducible for
//! a given event sequence (the CI perf gate diffs them against a
//! checked-in baseline).

use crate::clock::{Epoch, ThreadId, VectorClock};
use crate::report::{AccessKind, Fnv1a};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Abstract address of a monitored memory cell.
pub type Addr = u64;

/// Interned id of a variable name (resolved by the host VM).
pub type NameId = u32;

/// Interned id of a stack frame (resolved by the host VM).
pub type FrameId = u32;

/// Addresses below this bound get dense (array-indexed) variable state;
/// anything above falls back to a hash map. Hosts that allocate cells
/// densely from zero — `govm` does — never touch the map.
const DENSE_LIMIT: usize = 1 << 22;

/// A fast, deterministic multiply-xor hasher (FxHash-style) for the
/// detector's interior maps. With the default SipHash, keying the sync
/// and dedup tables dominates per-event cost; none of these tables is
/// ever iterated, so hash quality only has to be good enough to spread
/// dense ids.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

const FAST_HASH_K: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(FAST_HASH_K);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(FAST_HASH_K);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// Deterministic hot-path cost counters for one detector instance.
///
/// Every field is an exact function of the event sequence (no clocks,
/// no addresses-of-allocations), so two runs of the same schedule
/// produce bit-identical counters on any machine — which is what lets
/// the perf CI gate compare them against a checked-in baseline without
/// wall-clock flakiness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetStats {
    /// Read/write events processed.
    pub events: u64,
    /// Reads fully answered by the same-epoch fast path.
    pub read_fast_hits: u64,
    /// Writes fully answered by the same-epoch fast path.
    pub write_fast_hits: u64,
    /// Full vector-clock joins performed.
    pub clock_joins: u64,
    /// Vector clocks freshly allocated (clones and promotions).
    pub clock_allocs: u64,
    /// Clock allocations avoided by joining in place or reusing an
    /// existing sync-object buffer.
    pub clock_allocs_avoided: u64,
}

impl DetStats {
    /// Accumulates `other` into `self` (campaign-level aggregation).
    pub fn accumulate(&mut self, other: &DetStats) {
        self.events += other.events;
        self.read_fast_hits += other.read_fast_hits;
        self.write_fast_hits += other.write_fast_hits;
        self.clock_joins += other.clock_joins;
        self.clock_allocs += other.clock_allocs;
        self.clock_allocs_avoided += other.clock_allocs_avoided;
    }

    /// Fast-path hits across reads and writes.
    pub fn fast_hits(&self) -> u64 {
        self.read_fast_hits + self.write_fast_hits
    }
}

/// A compact access record: kind, interned stack (innermost first), and
/// the acting thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawAccess {
    /// Read or write.
    pub kind: AccessKind,
    /// Interned stack, innermost frame first.
    pub stack: Vec<FrameId>,
    /// Acting thread.
    pub tid: ThreadId,
}

/// A detected race between two compact accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRace {
    /// The earlier (already recorded) access.
    pub prev: RawAccess,
    /// The access that triggered detection.
    pub cur: RawAccess,
    /// Racy cell address.
    pub addr: Addr,
    /// Interned variable name.
    pub var: NameId,
}

#[derive(Debug, Clone)]
enum ReadState {
    /// Reads by at most one thread since the last write.
    Epoch(Epoch, Option<RawAccess>),
    /// Read-shared: full clock plus per-thread access info.
    Shared(VectorClock, HashMap<ThreadId, RawAccess>),
}

#[derive(Debug, Clone)]
struct VarState {
    w: Epoch,
    w_access: Option<RawAccess>,
    r: ReadState,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            w: Epoch::ZERO,
            w_access: None,
            r: ReadState::Epoch(Epoch::ZERO, None),
        }
    }
}

/// The FastTrack detector for one program run.
#[derive(Debug, Default)]
pub struct Detector {
    clocks: Vec<VectorClock>,
    /// Dense per-address variable state (addresses below [`DENSE_LIMIT`]).
    vars: Vec<VarState>,
    /// Overflow variable state for sparse high addresses.
    vars_sparse: HashMap<Addr, VarState, FastBuildHasher>,
    syncs: HashMap<u64, VectorClock, FastBuildHasher>,
    races: Vec<RawRace>,
    dedup: HashSet<u64, FastBuildHasher>,
    stats: DetStats,
}

impl Detector {
    /// Creates a detector with the main thread (id 0) registered.
    pub fn new() -> Self {
        let mut d = Detector::default();
        let mut c = VectorClock::new();
        c.tick(0);
        d.clocks.push(c);
        d
    }

    /// Number of threads registered so far.
    pub fn thread_count(&self) -> usize {
        self.clocks.len()
    }

    /// The deterministic cost counters accumulated so far.
    pub fn stats(&self) -> &DetStats {
        &self.stats
    }

    fn var_mut<'a>(
        dense: &'a mut Vec<VarState>,
        sparse: &'a mut HashMap<Addr, VarState, FastBuildHasher>,
        addr: Addr,
    ) -> &'a mut VarState {
        let i = addr as usize;
        if addr < DENSE_LIMIT as Addr {
            if i >= dense.len() {
                dense.resize_with(i + 1, VarState::default);
            }
            &mut dense[i]
        } else {
            sparse.entry(addr).or_default()
        }
    }

    /// Registers a new thread forked by `parent`, returning its id.
    ///
    /// Establishes the happens-before edge from the `go` statement to the
    /// start of the child.
    pub fn fork(&mut self, parent: ThreadId) -> ThreadId {
        let child = self.clocks.len();
        let mut cc = self.clocks[parent].clone();
        self.stats.clock_allocs += 1;
        cc.tick(child);
        self.clocks.push(cc);
        self.clocks[parent].tick(parent);
        child
    }

    /// Establishes `child` happens-before `parent` (a join edge).
    pub fn join_thread(&mut self, parent: ThreadId, child: ThreadId) {
        if parent == child {
            return;
        }
        let (dst, src) = if parent < child {
            let (lo, hi) = self.clocks.split_at_mut(child);
            (&mut lo[parent], &hi[0])
        } else {
            let (lo, hi) = self.clocks.split_at_mut(parent);
            (&mut hi[0], &lo[child])
        };
        dst.join(src);
        self.stats.clock_joins += 1;
        self.stats.clock_allocs_avoided += 1;
    }

    /// Same-epoch read check — phase one of a read event.
    ///
    /// Returns `true` when the read repeats within `t`'s current epoch
    /// and is therefore fully processed: no race is possible, no state
    /// changes, and the host does not need a stack snapshot. On `false`
    /// the host must follow up with [`Detector::read_slow`].
    #[inline]
    pub fn read_fast(&mut self, t: ThreadId, addr: Addr) -> bool {
        self.stats.events += 1;
        let e = Epoch::new(t, self.clocks[t].get(t));
        let vs = Self::var_mut(&mut self.vars, &mut self.vars_sparse, addr);
        let hit = matches!(&vs.r, ReadState::Epoch(re, _) if *re == e);
        if hit {
            self.stats.read_fast_hits += 1;
        }
        hit
    }

    /// Full read transfer function — phase two, after a
    /// [`Detector::read_fast`] miss supplied the stack.
    pub fn read_slow(&mut self, t: ThreadId, addr: Addr, var: NameId, stack: &[FrameId]) {
        let ct = &self.clocks[t];
        let e = Epoch::new(t, ct.get(t));
        let vs = Self::var_mut(&mut self.vars, &mut self.vars_sparse, addr);

        // Same-epoch guard (no-op when correctly preceded by a
        // `read_fast` miss; keeps direct calls semantically identical to
        // the combined `read`).
        if let ReadState::Epoch(re, _) = &vs.r {
            if *re == e {
                return;
            }
        }

        let cur = RawAccess {
            kind: AccessKind::Read,
            stack: stack.to_vec(),
            tid: t,
        };

        // Write-read check.
        if !vs.w.le(ct) {
            let prev = vs.w_access.clone().unwrap_or_else(|| RawAccess {
                kind: AccessKind::Write,
                stack: Vec::new(),
                tid: vs.w.tid,
            });
            let race = RawRace {
                prev,
                cur: cur.clone(),
                addr,
                var,
            };
            Self::push_race(&mut self.races, &mut self.dedup, race);
        }

        // Update read state.
        match &mut vs.r {
            ReadState::Epoch(re, acc) => {
                if re.le(ct) {
                    *re = e;
                    *acc = Some(cur);
                } else {
                    let mut vc = VectorClock::new();
                    vc.set(re.tid, re.clock);
                    vc.set(t, e.clock);
                    self.stats.clock_allocs += 1;
                    let mut accs = HashMap::new();
                    if let Some(a) = acc.take() {
                        accs.insert(re.tid, a);
                    }
                    accs.insert(t, cur);
                    vs.r = ReadState::Shared(vc, accs);
                }
            }
            ReadState::Shared(vc, accs) => {
                vc.set(t, e.clock);
                accs.insert(t, cur);
            }
        }
    }

    /// Processes a read of `addr` by `t` (combined fast + slow phases).
    pub fn read(&mut self, t: ThreadId, addr: Addr, var: NameId, stack: &[FrameId]) {
        if !self.read_fast(t, addr) {
            self.read_slow(t, addr, var, stack);
        }
    }

    /// Same-epoch write check — phase one of a write event.
    ///
    /// Returns `true` when the write repeats within `t`'s current epoch
    /// (the variable's write epoch is exactly `t`'s current epoch): the
    /// event is fully processed and no stack snapshot is needed. On
    /// `false` the host must follow up with [`Detector::write_slow`].
    #[inline]
    pub fn write_fast(&mut self, t: ThreadId, addr: Addr) -> bool {
        self.stats.events += 1;
        let e = Epoch::new(t, self.clocks[t].get(t));
        let vs = Self::var_mut(&mut self.vars, &mut self.vars_sparse, addr);
        let hit = vs.w == e;
        if hit {
            self.stats.write_fast_hits += 1;
        }
        hit
    }

    /// Full write transfer function — phase two, after a
    /// [`Detector::write_fast`] miss supplied the stack.
    pub fn write_slow(&mut self, t: ThreadId, addr: Addr, var: NameId, stack: &[FrameId]) {
        let ct = &self.clocks[t];
        let e = Epoch::new(t, ct.get(t));
        let vs = Self::var_mut(&mut self.vars, &mut self.vars_sparse, addr);

        // Same-epoch guard (see `read_slow`).
        if vs.w == e {
            return;
        }

        let cur = RawAccess {
            kind: AccessKind::Write,
            stack: stack.to_vec(),
            tid: t,
        };

        // Write-write check.
        if !vs.w.le(ct) {
            let prev = vs.w_access.clone().unwrap_or_else(|| RawAccess {
                kind: AccessKind::Write,
                stack: Vec::new(),
                tid: vs.w.tid,
            });
            let race = RawRace {
                prev,
                cur: cur.clone(),
                addr,
                var,
            };
            Self::push_race(&mut self.races, &mut self.dedup, race);
        }

        // Read-write check.
        match &vs.r {
            ReadState::Epoch(re, racc) => {
                if !re.is_zero() && !re.le(ct) {
                    let prev = racc.clone().unwrap_or_else(|| RawAccess {
                        kind: AccessKind::Read,
                        stack: Vec::new(),
                        tid: re.tid,
                    });
                    let race = RawRace {
                        prev,
                        cur: cur.clone(),
                        addr,
                        var,
                    };
                    Self::push_race(&mut self.races, &mut self.dedup, race);
                }
            }
            ReadState::Shared(vc, accs) => {
                for (tid, val) in vc.iter() {
                    if val > ct.get(tid) {
                        let prev = accs.get(&tid).cloned().unwrap_or_else(|| RawAccess {
                            kind: AccessKind::Read,
                            stack: Vec::new(),
                            tid,
                        });
                        let race = RawRace {
                            prev,
                            cur: cur.clone(),
                            addr,
                            var,
                        };
                        Self::push_race(&mut self.races, &mut self.dedup, race);
                    }
                }
            }
        }

        vs.w = e;
        vs.w_access = Some(cur);
        // FastTrack WriteShared: collapse the read state after checking.
        vs.r = ReadState::Epoch(Epoch::ZERO, None);
    }

    /// Processes a write of `addr` by `t` (combined fast + slow phases).
    pub fn write(&mut self, t: ThreadId, addr: Addr, var: NameId, stack: &[FrameId]) {
        if !self.write_fast(t, addr) {
            self.write_slow(t, addr, var, stack);
        }
    }

    fn push_race(
        races: &mut Vec<RawRace>,
        dedup: &mut HashSet<u64, FastBuildHasher>,
        race: RawRace,
    ) {
        let mut h = Fnv1a::new();
        h.write(&race.var.to_le_bytes());
        // Symmetric over the two stacks: hash the sorted pair of leaves
        // plus full-stack hashes.
        let mut stack_hashes: Vec<u64> = [&race.prev, &race.cur]
            .iter()
            .map(|a| {
                let mut sh = Fnv1a::new();
                for fid in &a.stack {
                    sh.write(&fid.to_le_bytes());
                }
                sh.finish()
            })
            .collect();
        stack_hashes.sort_unstable();
        for s in stack_hashes {
            h.write(&s.to_le_bytes());
        }
        if dedup.insert(h.finish()) {
            races.push(race);
        }
    }

    /// Lock acquire: joins the sync object's release clock into `t`.
    pub fn acquire(&mut self, t: ThreadId, sync: u64) {
        if let Some(s) = self.syncs.get(&sync) {
            self.clocks[t].join(s);
            self.stats.clock_joins += 1;
            self.stats.clock_allocs_avoided += 1;
        }
    }

    /// Lock release: stores `t`'s clock in the sync object and advances
    /// `t`. The sync object's existing buffer is reused when present.
    pub fn release(&mut self, t: ThreadId, sync: u64) {
        match self.syncs.entry(sync) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().copy_from(&self.clocks[t]);
                self.stats.clock_allocs_avoided += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.clocks[t].clone());
                self.stats.clock_allocs += 1;
            }
        }
        self.clocks[t].tick(t);
    }

    /// Merge-release (wait-group `Done`, RWMutex `RUnlock`): joins `t`'s
    /// clock into the sync object without overwriting other releasers.
    pub fn release_merge(&mut self, t: ThreadId, sync: u64) {
        match self.syncs.entry(sync) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().join(&self.clocks[t]);
                self.stats.clock_joins += 1;
                self.stats.clock_allocs_avoided += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.clocks[t].clone());
                self.stats.clock_allocs += 1;
            }
        }
        self.clocks[t].tick(t);
    }

    /// Sequentially-consistent atomic edge: total order between all
    /// atomic operations on `sync` (each op both acquires and releases).
    pub fn atomic_op(&mut self, t: ThreadId, sync: u64) {
        match self.syncs.entry(sync) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let s = e.get_mut();
                self.clocks[t].join(&*s);
                s.copy_from(&self.clocks[t]);
                self.stats.clock_joins += 1;
                self.stats.clock_allocs_avoided += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.clocks[t].clone());
                self.stats.clock_allocs += 1;
            }
        }
        self.clocks[t].tick(t);
    }

    /// Snapshots `t`'s clock (release half of a message send) and advances
    /// `t`. The returned clock travels with the message.
    pub fn release_snapshot(&mut self, t: ThreadId) -> VectorClock {
        let c = self.clocks[t].clone();
        self.stats.clock_allocs += 1;
        self.clocks[t].tick(t);
        c
    }

    /// Joins a message clock into `t` (acquire half of a message receive).
    pub fn acquire_clock(&mut self, t: ThreadId, vc: &VectorClock) {
        self.clocks[t].join(vc);
        self.stats.clock_joins += 1;
    }

    /// Forgets a freed cell.
    pub fn forget(&mut self, addr: Addr) {
        let i = addr as usize;
        if addr < DENSE_LIMIT as Addr {
            if i < self.vars.len() {
                self.vars[i] = VarState::default();
            }
        } else {
            self.vars_sparse.remove(&addr);
        }
    }

    /// Races recorded so far.
    pub fn races(&self) -> &[RawRace] {
        &self.races
    }

    /// Consumes the detector, returning all recorded races.
    pub fn into_races(self) -> Vec<RawRace> {
        self.races
    }

    /// Current clock of thread `t` (for tests and debugging).
    pub fn clock(&self, t: ThreadId) -> &VectorClock {
        &self.clocks[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Addr = 100;
    const V: NameId = 1;

    fn stack(id: FrameId) -> Vec<FrameId> {
        vec![id]
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].prev.kind, AccessKind::Write);
        assert_eq!(d.races()[0].cur.kind, AccessKind::Write);
    }

    #[test]
    fn fork_edge_orders_parent_prefix() {
        let mut d = Detector::new();
        d.write(0, A, V, &stack(1)); // before fork
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(2)); // child sees parent's prefix
        assert!(d.races().is_empty());
        // But a parent write AFTER the fork races with the child.
        d.write(0, A, V, &stack(3));
        d.read(t1, A, V, &stack(4));
        assert!(!d.races().is_empty());
    }

    #[test]
    fn mutex_orders_critical_sections() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let m = 7;
        d.acquire(0, m);
        d.write(0, A, V, &stack(1));
        d.release(0, m);
        d.acquire(t1, m);
        d.write(t1, A, V, &stack(2));
        d.release(t1, m);
        assert!(d.races().is_empty());
    }

    #[test]
    fn mutex_on_different_locks_does_not_order() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.acquire(0, 7);
        d.write(0, A, V, &stack(1));
        d.release(0, 7);
        d.acquire(t1, 8);
        d.write(t1, A, V, &stack(2));
        d.release(t1, 8);
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn waitgroup_merge_release_orders_all_children() {
        let mut d = Detector::new();
        let wg = 9;
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.release_merge(t1, wg); // Done
        d.write(t2, 200, V, &stack(2));
        d.release_merge(t2, wg); // Done
        d.acquire(0, wg); // Wait
        d.read(0, A, V, &stack(3));
        d.read(0, 200, V, &stack(4));
        assert!(d.races().is_empty());
    }

    #[test]
    fn plain_release_would_lose_first_done() {
        // Demonstrates why Done must merge: with plain release the second
        // Done overwrites the first child's clock.
        let mut d = Detector::new();
        let wg = 9;
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.release(t1, wg);
        d.release(t2, wg); // overwrites
        d.acquire(0, wg);
        d.read(0, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn message_clocks_order_send_before_receive() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        let msg = d.release_snapshot(t1); // send
        d.acquire_clock(0, &msg); // receive
        d.read(0, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn read_shared_then_unordered_write_races_with_each_reader() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let t2 = d.fork(0);
        d.read(t1, A, V, &stack(1));
        d.read(t2, A, V, &stack(2));
        d.write(0, A, V, &stack(3));
        // Races with both readers (two distinct reports).
        assert_eq!(d.races().len(), 2);
        assert!(d
            .races()
            .iter()
            .all(|r| r.prev.kind == AccessKind::Read && r.cur.kind == AccessKind::Write));
    }

    #[test]
    fn atomics_totally_order_operations() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let flag = 11;
        d.write(0, A, V, &stack(1));
        d.atomic_op(0, flag); // store
        d.atomic_op(t1, flag); // load (later in the serialized run)
        d.read(t1, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn duplicate_races_are_deduped() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        d.write(0, A, V, &stack(1));
        d.write(t1, A, V, &stack(2));
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn join_thread_orders_child_suffix() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        d.write(t1, A, V, &stack(1));
        d.join_thread(0, t1);
        d.write(0, A, V, &stack(2));
        assert!(d.races().is_empty());
    }

    #[test]
    fn same_epoch_fast_path_skips_duplicate_work() {
        let mut d = Detector::new();
        d.write(0, A, V, &stack(1));
        let before = d.stats().events;
        d.write(0, A, V, &stack(1));
        d.write(0, A, V, &stack(1));
        assert_eq!(d.stats().events, before + 2);
        assert_eq!(d.stats().write_fast_hits, 2);
        assert!(d.races().is_empty());
    }

    #[test]
    fn two_phase_api_matches_combined_calls() {
        // Drive the same event sequence through the combined and the
        // two-phase APIs: identical races and identical counters.
        let drive = |two_phase: bool| {
            let mut d = Detector::new();
            let t1 = d.fork(0);
            let events: Vec<(ThreadId, AccessKind, Addr)> = vec![
                (0, AccessKind::Write, A),
                (0, AccessKind::Read, A),
                (0, AccessKind::Read, A),
                (t1, AccessKind::Read, A),
                (t1, AccessKind::Write, A),
                (0, AccessKind::Write, 300),
                (t1, AccessKind::Read, 300),
            ];
            for (i, (t, kind, addr)) in events.into_iter().enumerate() {
                let st = stack(i as FrameId);
                match (kind, two_phase) {
                    (AccessKind::Read, true) => {
                        if !d.read_fast(t, addr) {
                            d.read_slow(t, addr, V, &st);
                        }
                    }
                    (AccessKind::Read, false) => d.read(t, addr, V, &st),
                    (AccessKind::Write, true) => {
                        if !d.write_fast(t, addr) {
                            d.write_slow(t, addr, V, &st);
                        }
                    }
                    (AccessKind::Write, false) => d.write(t, addr, V, &st),
                }
            }
            (d.races().to_vec(), *d.stats())
        };
        let (races_combined, stats_combined) = drive(false);
        let (races_split, stats_split) = drive(true);
        assert_eq!(races_combined, races_split);
        assert_eq!(stats_combined, stats_split);
        assert!(stats_combined.fast_hits() > 0);
    }

    #[test]
    fn sparse_addresses_fall_back_to_the_overflow_map() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let far = (DENSE_LIMIT as Addr) + 17;
        d.write(0, far, V, &stack(1));
        d.write(t1, far, V, &stack(2));
        assert_eq!(d.races().len(), 1);
        d.forget(far);
        d.write(t1, far, V, &stack(3));
        assert_eq!(d.races().len(), 1, "forget resets the cell state");
    }

    #[test]
    fn lock_handoffs_reuse_sync_clock_buffers() {
        let mut d = Detector::new();
        let t1 = d.fork(0);
        let m = 7;
        for _ in 0..4 {
            d.acquire(0, m);
            d.release(0, m);
            d.acquire(t1, m);
            d.release(t1, m);
        }
        let s = d.stats();
        // Only the very first release allocates; every later release
        // reuses the buffer, and every acquire joins in place.
        assert_eq!(s.clock_allocs, 2, "fork clone + first release");
        assert!(s.clock_allocs_avoided >= 14, "{s:?}");
    }
}
