//! Builtin functions, native methods, and package constants.
//!
//! The compiler resolves qualified names (`fmt.Println`, `atomic.AddInt32`)
//! and conversion builtins to indices into [`BUILTIN_NAMES`]; the VM
//! dispatches on those indices at call time (see `vm.rs`). Native
//! *methods* (`mu.Lock`, `t.Run`, `r.Intn`) are dispatched by receiver
//! kind and method name inside the VM, because most need scheduler access.

/// Names of all builtin functions, in dispatch order.
pub const BUILTIN_NAMES: &[&str] = &[
    // 0..: fmt
    "fmt.Println",
    "fmt.Printf",
    "fmt.Sprintf",
    "fmt.Sprint",
    "fmt.Errorf",
    // errors
    "errors.New",
    "errors.Is",
    // time
    "time.Sleep",
    "time.Now",
    "time.Since",
    "time.After",
    // context
    "context.Background",
    "context.TODO",
    "context.WithTimeout",
    "context.WithCancel",
    // math/rand
    "rand.NewSource",
    "rand.New",
    "rand.Intn",
    "rand.Int63",
    "rand.Float64",
    // crypto/md5
    "md5.New",
    // strings
    "strings.NewReader",
    "strings.Repeat",
    "strings.Contains",
    "strings.ToUpper",
    "strings.Join",
    // io
    "io.Copy",
    "io.CopyN",
    // strconv
    "strconv.Itoa",
    "strconv.Atoi",
    // testify assert
    "assert.Equal",
    "assert.True",
    "assert.False",
    "assert.NoError",
    "assert.Error",
    "assert.Nil",
    "assert.NotNil",
    "assert.Fail",
    "assert.Len",
    // sync/atomic
    "atomic.AddInt32",
    "atomic.LoadInt32",
    "atomic.StoreInt32",
    "atomic.CompareAndSwapInt32",
    "atomic.AddInt64",
    "atomic.LoadInt64",
    "atomic.StoreInt64",
    "atomic.CompareAndSwapInt64",
    // runtime
    "runtime.Gosched",
    // core builtins lowered to calls
    "copy",
    // conversions
    "conv.int",
    "conv.float",
    "conv.string",
    "conv.duration",
];

/// Identifiers treated as numeric conversions when called.
pub const INT_CONVERSIONS: &[&str] = &[
    "int", "int8", "int16", "int32", "int64", "uint", "uint8", "uint16", "uint32", "uint64",
    "byte", "rune", "uintptr",
];

/// Returns the builtin id for a qualified name.
pub fn builtin_id(name: &str) -> Option<u16> {
    BUILTIN_NAMES
        .iter()
        .position(|n| *n == name)
        .map(|i| i as u16)
}

/// Returns the name of a builtin id.
pub fn builtin_name(id: u16) -> &'static str {
    BUILTIN_NAMES[id as usize]
}

/// Package-level integer constants the compiler folds.
///
/// Durations are measured in *scheduler steps*: one millisecond maps to
/// one step, so `3 * time.Minute` style deadlines stay meaningful
/// relative to the step budget of a run.
pub const INT_CONSTS: &[(&str, i64)] = &[
    ("time.Nanosecond", 1),
    ("time.Microsecond", 1),
    ("time.Millisecond", 1),
    ("time.Second", 10),
    ("time.Minute", 60),
    ("time.Hour", 600),
    ("http.StatusOK", 200),
    ("http.StatusInternalServerError", 500),
    ("math.MaxInt32", i32::MAX as i64),
    ("math.MaxInt64", i64::MAX),
];

/// Returns a folded constant for a qualified name.
pub fn const_value(name: &str) -> Option<i64> {
    INT_CONSTS.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

/// Import paths the compiler recognises; the last path segment (or the
/// explicit alias) becomes the builtin namespace.
pub const KNOWN_PACKAGES: &[&str] = &[
    "sync",
    "sync/atomic",
    "fmt",
    "errors",
    "time",
    "context",
    "math",
    "math/rand",
    "crypto/md5",
    "strings",
    "strconv",
    "io",
    "net/http",
    "runtime",
    "testing",
    "hash",
    "github.com/stretchr/testify/assert",
];

// ===========================================================================
// Implementations
// ===========================================================================

use crate::value::{Gid, MapKey, ObjRef, Value};
use crate::vm::{Status, Vm, WakeAction};
use rand::Rng;

/// Sync-object id namespaces for the detector.
const SYNC_MUTEX: u64 = 1 << 40;
const SYNC_RW_W: u64 = 2 << 40;
const SYNC_RW_R: u64 = 3 << 40;
const SYNC_WG: u64 = 4 << 40;
const SYNC_ATOMIC: u64 = 5 << 40;
const SYNC_SYNCMAP: u64 = 6 << 40;

/// Result of a builtin function call.
pub(crate) enum BuiltinOutcome {
    /// Completed with a value.
    Value(Value),
    /// Park until the given step, then resume pushing the value.
    Sleep(u64, Value),
    /// Runtime error (panics the goroutine).
    Error(String),
}

/// Every native method name, interned to a dense id.
///
/// Variants are keyed by *name*, not `(receiver, name)` — the receiver
/// kind disambiguates at dispatch (`Done` serves both `wg.Done()` and
/// `ctx.Done()`; `Lock` serves `Mutex` and `RWMutex`), exactly as the
/// old string match did. [`crate::ProgContext`] resolves every
/// string-pool name to `Option<NativeMethod>` once at build, so
/// call-time dispatch is a table load plus an integer match — no `&str`
/// comparison on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants *are* the Go method names
pub enum NativeMethod {
    Lock,
    TryLock,
    Unlock,
    RLock,
    RUnlock,
    Add,
    Done,
    Wait,
    Load,
    Store,
    Delete,
    LoadOrStore,
    Range,
    /// The synthetic `$cancel` method of context cancel funcs.
    Cancel,
    Err,
    Value,
    Intn,
    Int63,
    Float64,
    Write,
    Sum,
    Reset,
    Read,
    Len,
    Run,
    Parallel,
    Name,
    Errorf,
    Error,
    Fatalf,
    Fatal,
    Fail,
    FailNow,
    Logf,
    Log,
    Helper,
    Cleanup,
    Skip,
    SkipNow,
    Skipf,
    Setenv,
}

impl NativeMethod {
    /// Resolves a method-name string to its interned id.
    pub fn from_name(name: &str) -> Option<Self> {
        use NativeMethod as N;
        Some(match name {
            "Lock" => N::Lock,
            "TryLock" => N::TryLock,
            "Unlock" => N::Unlock,
            "RLock" => N::RLock,
            "RUnlock" => N::RUnlock,
            "Add" => N::Add,
            "Done" => N::Done,
            "Wait" => N::Wait,
            "Load" => N::Load,
            "Store" => N::Store,
            "Delete" => N::Delete,
            "LoadOrStore" => N::LoadOrStore,
            "Range" => N::Range,
            "$cancel" => N::Cancel,
            "Err" => N::Err,
            "Value" => N::Value,
            "Intn" => N::Intn,
            "Int63" => N::Int63,
            "Float64" => N::Float64,
            "Write" => N::Write,
            "Sum" => N::Sum,
            "Reset" => N::Reset,
            "Read" => N::Read,
            "Len" => N::Len,
            "Run" => N::Run,
            "Parallel" => N::Parallel,
            "Name" => N::Name,
            "Errorf" => N::Errorf,
            "Error" => N::Error,
            "Fatalf" => N::Fatalf,
            "Fatal" => N::Fatal,
            "Fail" => N::Fail,
            "FailNow" => N::FailNow,
            "Logf" => N::Logf,
            "Log" => N::Log,
            "Helper" => N::Helper,
            "Cleanup" => N::Cleanup,
            "Skip" => N::Skip,
            "SkipNow" => N::SkipNow,
            "Skipf" => N::Skipf,
            "Setenv" => N::Setenv,
            _ => return None,
        })
    }

    /// The exact Go-visible method name (error messages, `t.Errorf`
    /// failure prefixes).
    pub fn as_str(self) -> &'static str {
        use NativeMethod as N;
        match self {
            N::Lock => "Lock",
            N::TryLock => "TryLock",
            N::Unlock => "Unlock",
            N::RLock => "RLock",
            N::RUnlock => "RUnlock",
            N::Add => "Add",
            N::Done => "Done",
            N::Wait => "Wait",
            N::Load => "Load",
            N::Store => "Store",
            N::Delete => "Delete",
            N::LoadOrStore => "LoadOrStore",
            N::Range => "Range",
            N::Cancel => "$cancel",
            N::Err => "Err",
            N::Value => "Value",
            N::Intn => "Intn",
            N::Int63 => "Int63",
            N::Float64 => "Float64",
            N::Write => "Write",
            N::Sum => "Sum",
            N::Reset => "Reset",
            N::Read => "Read",
            N::Len => "Len",
            N::Run => "Run",
            N::Parallel => "Parallel",
            N::Name => "Name",
            N::Errorf => "Errorf",
            N::Error => "Error",
            N::Fatalf => "Fatalf",
            N::Fatal => "Fatal",
            N::Fail => "Fail",
            N::FailNow => "FailNow",
            N::Logf => "Logf",
            N::Log => "Log",
            N::Helper => "Helper",
            N::Cleanup => "Cleanup",
            N::Skip => "Skip",
            N::SkipNow => "SkipNow",
            N::Skipf => "Skipf",
            N::Setenv => "Setenv",
        }
    }
}

/// Result of a native method dispatch.
pub(crate) enum MethodOutcome {
    /// Completed with a value (the VM pops operands and pushes it).
    Done(Value),
    /// Park retry-style (operands stay on the stack).
    Park(&'static str),
    /// Park with a pre-armed wake action (operands cleaned by the action).
    ParkArmed(&'static str),
    /// Receiver has no native method with this name.
    NotNative,
    /// Runtime error.
    Error(String),
}

/// Action to run when a goroutine finishes (subtest bookkeeping).
#[derive(Debug)]
pub enum OnExit {
    /// Signal the parent of a subtest if `t.Parallel` did not already.
    Subtest {
        /// The subtest's `testing.T` value.
        tvalue: Value,
    },
}

// ------------------------------------------------------------ small helpers

fn struct_ref(v: &Value) -> Option<ObjRef> {
    match v {
        Value::Struct(r) => Some(*r),
        _ => None,
    }
}

fn sfield(vm: &Vm, s: ObjRef, name: &str) -> Option<Value> {
    vm.heap.structs[s]
        .field(name)
        .map(|a| vm.heap.load_silent(a).clone())
}

fn sfield_set(vm: &mut Vm, s: ObjRef, name: &str, v: Value) {
    if let Some(a) = vm.heap.structs[s].field(name) {
        vm.heap.store_silent(a, v);
    }
}

fn struct_type<'a>(vm: &'a Vm, v: &Value) -> Option<&'a str> {
    struct_ref(v).map(|r| vm.heap.structs[r].type_name.as_str())
}

fn make_struct(vm: &mut Vm, ty: &str, fields: Vec<(&str, Value)>) -> Value {
    let fields = fields
        .into_iter()
        .map(|(n, v)| {
            let id = vm.intern(n);
            (n.to_owned(), v, id)
        })
        .collect();
    vm.heap.alloc_struct_named(ty.to_owned(), fields)
}

fn render_all(vm: &Vm, args: &[Value], sep: &str) -> String {
    args.iter()
        .map(|a| a.render(&vm.heap))
        .collect::<Vec<_>>()
        .join(sep)
}

/// Minimal printf-style formatting (`%v %s %d %q %w %%`).
fn format_go(vm: &Vm, fmt: &str, args: &[Value]) -> String {
    let mut out = String::new();
    let mut ai = 0;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('v') | Some('s') | Some('d') | Some('q') | Some('w') | Some('t') | Some('f')
            | Some('x') => {
                if let Some(a) = args.get(ai) {
                    out.push_str(&a.render(&vm.heap));
                    ai += 1;
                }
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

/// Steps a linear-congruential PRNG state cell (race-tracked — this is
/// what makes shared `rand.Source` use a real data race, matching the
/// paper's "Others" category).
fn step_source(vm: &mut Vm, gid: Gid, state_addr: u64) -> i64 {
    let cur = vm.read_cell(gid, state_addr).as_int().unwrap_or(1);
    let next = cur
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    vm.write_cell(gid, state_addr, Value::Int(next));
    (next >> 11).abs()
}

fn rand_state_addr(vm: &Vm, recv: &Value) -> Option<u64> {
    let r = struct_ref(recv)?;
    match vm.heap.structs[r].type_name.as_str() {
        "rand.Source" => vm.heap.structs[r].field("state"),
        "rand.Rand" => {
            let src = sfield(vm, r, "src")?;
            let sr = struct_ref(&src)?;
            vm.heap.structs[sr].field("state")
        }
        _ => None,
    }
}

// ----------------------------------------------------------------- builtins

pub(crate) fn call_builtin(vm: &mut Vm, gid: Gid, id: u16, args: Vec<Value>) -> BuiltinOutcome {
    use BuiltinOutcome as O;
    let name = builtin_name(id);
    match name {
        "fmt.Println" => {
            let line = render_all(vm, &args, " ");
            vm.output.push_str(&line);
            vm.output.push('\n');
            O::Value(Value::Nil)
        }
        "fmt.Printf" => {
            let fmt = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            let line = format_go(vm, &fmt, &args[1..]);
            vm.output.push_str(&line);
            O::Value(Value::Nil)
        }
        "fmt.Sprintf" => {
            let fmt = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            O::Value(Value::str(format_go(vm, &fmt, &args[1..])))
        }
        "fmt.Sprint" => O::Value(Value::str(render_all(vm, &args, ""))),
        "fmt.Errorf" => {
            let fmt = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            O::Value(Value::error(format_go(vm, &fmt, &args[1..])))
        }
        "errors.New" => O::Value(Value::error(
            args.first().map(|v| v.render(&vm.heap)).unwrap_or_default(),
        )),
        "errors.Is" => O::Value(Value::Bool(args.len() == 2 && args[0].go_eq(&args[1]))),
        "time.Sleep" => {
            let d = args.first().and_then(|v| v.as_int()).unwrap_or(0).max(0) as u64;
            O::Sleep(vm.steps + d.max(1), Value::Nil)
        }
        "time.Now" => O::Value(Value::Int(vm.steps as i64)),
        "time.Since" => {
            let t = args.first().and_then(|v| v.as_int()).unwrap_or(0);
            O::Value(Value::Int(vm.steps as i64 - t))
        }
        "time.After" => {
            let d = args.first().and_then(|v| v.as_int()).unwrap_or(1).max(1) as u64;
            let ch = vm.heap.alloc_chan(1);
            if let Value::Chan(r) = ch {
                let jitter = vm.rng.gen_range(1..=d.max(1));
                vm.timers.push((vm.steps + jitter, r));
            }
            O::Value(ch)
        }
        "context.Background" | "context.TODO" => O::Value(make_struct(
            vm,
            "context.Context",
            vec![("done", Value::Nil)],
        )),
        "context.WithTimeout" => {
            let ch = vm.heap.alloc_chan(1);
            if let Value::Chan(r) = ch {
                // Deadline jitter models wall-clock nondeterminism: the
                // deadline may fire before or after dependent work.
                let d = args.get(1).and_then(|v| v.as_int()).unwrap_or(60).max(2) as u64;
                let fire = vm.rng.gen_range(2..=d.clamp(2, 240));
                vm.timers.push((vm.steps + fire, r));
            }
            let ctx = make_struct(vm, "context.Context", vec![("done", ch.clone())]);
            let cancel_name = vm.intern("$cancel");
            let cancel = Value::Method {
                recv: Box::new(ch),
                name: cancel_name,
            };
            O::Value(Value::Tuple(std::rc::Rc::new(vec![ctx, cancel])))
        }
        "context.WithCancel" => {
            let ch = vm.heap.alloc_chan(1);
            let ctx = make_struct(vm, "context.Context", vec![("done", ch.clone())]);
            let cancel_name = vm.intern("$cancel");
            let cancel = Value::Method {
                recv: Box::new(ch),
                name: cancel_name,
            };
            O::Value(Value::Tuple(std::rc::Rc::new(vec![ctx, cancel])))
        }
        "rand.NewSource" => {
            let seed = args.first().and_then(|v| v.as_int()).unwrap_or(1);
            O::Value(make_struct(
                vm,
                "rand.Source",
                vec![("state", Value::Int(seed))],
            ))
        }
        "rand.New" => {
            let src = args.into_iter().next().unwrap_or(Value::Nil);
            O::Value(make_struct(vm, "rand.Rand", vec![("src", src)]))
        }
        "rand.Intn" | "rand.Int63" | "rand.Float64" => {
            if vm.global_rand.is_none() {
                let s = make_struct(vm, "rand.Source", vec![("state", Value::Int(99))]);
                vm.global_rand = Some(s);
            }
            let g = vm.global_rand.clone().expect("global rand");
            let addr = rand_state_addr(vm, &g).expect("rand state");
            let raw = step_source(vm, gid, addr);
            match name {
                "rand.Intn" => {
                    let n = args.first().and_then(|v| v.as_int()).unwrap_or(1).max(1);
                    O::Value(Value::Int(raw % n))
                }
                "rand.Float64" => O::Value(Value::Float((raw % 1_000_000) as f64 / 1_000_000.0)),
                _ => O::Value(Value::Int(raw)),
            }
        }
        "md5.New" => O::Value(make_struct(vm, "md5.Hash", vec![("state", Value::Int(0))])),
        "strings.NewReader" => {
            let s = args.into_iter().next().unwrap_or(Value::str(""));
            O::Value(make_struct(
                vm,
                "strings.Reader",
                vec![("data", s), ("pos", Value::Int(0))],
            ))
        }
        "strings.Repeat" => {
            let s = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            let n = args.get(1).and_then(|v| v.as_int()).unwrap_or(0).max(0) as usize;
            O::Value(Value::str(s.repeat(n)))
        }
        "strings.Contains" => {
            let s = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            let sub = args.get(1).map(|v| v.render(&vm.heap)).unwrap_or_default();
            O::Value(Value::Bool(s.contains(&sub)))
        }
        "strings.ToUpper" => {
            let s = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            O::Value(Value::str(s.to_uppercase()))
        }
        "strings.Join" => {
            let sep = args.get(1).map(|v| v.render(&vm.heap)).unwrap_or_default();
            match args.first() {
                Some(Value::Slice(r)) => {
                    let addrs = vm.heap.slices[*r].elems.clone();
                    let parts: Vec<String> = addrs
                        .into_iter()
                        .map(|a| vm.read_cell(gid, a).render(&vm.heap))
                        .collect();
                    O::Value(Value::str(parts.join(&sep)))
                }
                _ => O::Value(Value::str("")),
            }
        }
        "io.Copy" | "io.CopyN" => {
            let n = if name == "io.CopyN" {
                args.get(2).and_then(|v| v.as_int()).unwrap_or(1)
            } else {
                1
            };
            // Touch the reader's mutable state (race-tracked).
            if let Some(src) = args.get(1) {
                if let Some(addr) = rand_state_addr(vm, src) {
                    step_source(vm, gid, addr);
                } else if let Some(r) = struct_ref(src) {
                    if let Some(pos_addr) = vm.heap.structs[r].field("pos") {
                        let cur = vm.read_cell(gid, pos_addr).as_int().unwrap_or(0);
                        vm.write_cell(gid, pos_addr, Value::Int(cur + n));
                    }
                }
            }
            // Feed the writer if it is a hash.
            if let Some(dst) = args.first() {
                if struct_type(vm, dst) == Some("md5.Hash") {
                    if let Some(r) = struct_ref(dst) {
                        if let Some(a) = vm.heap.structs[r].field("state") {
                            let cur = vm.read_cell(gid, a).as_int().unwrap_or(0);
                            vm.write_cell(gid, a, Value::Int(cur.wrapping_mul(31).wrapping_add(n)));
                        }
                    }
                }
            }
            O::Value(Value::Tuple(std::rc::Rc::new(vec![
                Value::Int(n),
                Value::Nil,
            ])))
        }
        "strconv.Itoa" => {
            let n = args.first().and_then(|v| v.as_int()).unwrap_or(0);
            O::Value(Value::str(n.to_string()))
        }
        "strconv.Atoi" => {
            let s = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            match s.trim().parse::<i64>() {
                Ok(n) => O::Value(Value::Tuple(std::rc::Rc::new(vec![
                    Value::Int(n),
                    Value::Nil,
                ]))),
                Err(_) => O::Value(Value::Tuple(std::rc::Rc::new(vec![
                    Value::Int(0),
                    Value::error("invalid syntax"),
                ]))),
            }
        }
        "assert.Equal" => {
            if args.len() >= 3 && !args[1].go_eq(&args[2]) {
                let msg = format!(
                    "assert.Equal failed: expected {} got {}",
                    args[1].render(&vm.heap),
                    args[2].render(&vm.heap)
                );
                vm.test_failures.push(msg);
            }
            O::Value(Value::Bool(true))
        }
        "assert.True" => {
            if args.get(1).and_then(|v| v.as_bool()) != Some(true) {
                vm.test_failures.push("assert.True failed".into());
            }
            O::Value(Value::Bool(true))
        }
        "assert.False" => {
            if args.get(1).and_then(|v| v.as_bool()) != Some(false) {
                vm.test_failures.push("assert.False failed".into());
            }
            O::Value(Value::Bool(true))
        }
        "assert.NoError" => {
            if args.get(1).map(|v| !v.is_nil()).unwrap_or(false) {
                vm.test_failures.push(format!(
                    "assert.NoError failed: {}",
                    args[1].render(&vm.heap)
                ));
            }
            O::Value(Value::Bool(true))
        }
        "assert.Error" => {
            if args.get(1).map(|v| v.is_nil()).unwrap_or(true) {
                vm.test_failures.push("assert.Error failed".into());
            }
            O::Value(Value::Bool(true))
        }
        "assert.Nil" => {
            if args.get(1).map(|v| !v.is_nil()).unwrap_or(false) {
                vm.test_failures.push("assert.Nil failed".into());
            }
            O::Value(Value::Bool(true))
        }
        "assert.NotNil" => {
            if args.get(1).map(|v| v.is_nil()).unwrap_or(true) {
                vm.test_failures.push("assert.NotNil failed".into());
            }
            O::Value(Value::Bool(true))
        }
        "assert.Fail" => {
            let msg = args.get(1).map(|v| v.render(&vm.heap)).unwrap_or_default();
            vm.test_failures.push(format!("assert.Fail: {msg}"));
            O::Value(Value::Bool(true))
        }
        "assert.Len" => O::Value(Value::Bool(true)),
        "atomic.AddInt32" | "atomic.AddInt64" => match args.first() {
            Some(Value::Ptr(a)) => {
                vm.det.atomic_op(gid, SYNC_ATOMIC | *a);
                let delta = args.get(1).and_then(|v| v.as_int()).unwrap_or(0);
                let cur = vm.heap.load_silent(*a).as_int().unwrap_or(0);
                let next = cur.wrapping_add(delta);
                vm.heap.store_silent(*a, Value::Int(next));
                O::Value(Value::Int(next))
            }
            _ => O::Error("atomic add of non-pointer".into()),
        },
        "atomic.LoadInt32" | "atomic.LoadInt64" => match args.first() {
            Some(Value::Ptr(a)) => {
                vm.det.atomic_op(gid, SYNC_ATOMIC | *a);
                O::Value(vm.heap.load_silent(*a).clone())
            }
            _ => O::Error("atomic load of non-pointer".into()),
        },
        "atomic.StoreInt32" | "atomic.StoreInt64" => match args.first() {
            Some(Value::Ptr(a)) => {
                vm.det.atomic_op(gid, SYNC_ATOMIC | *a);
                let v = args.get(1).cloned().unwrap_or(Value::Int(0));
                vm.heap.store_silent(*a, v);
                O::Value(Value::Nil)
            }
            _ => O::Error("atomic store of non-pointer".into()),
        },
        "atomic.CompareAndSwapInt32" | "atomic.CompareAndSwapInt64" => match args.first() {
            Some(Value::Ptr(a)) => {
                vm.det.atomic_op(gid, SYNC_ATOMIC | *a);
                let old = args.get(1).and_then(|v| v.as_int()).unwrap_or(0);
                let new = args.get(2).and_then(|v| v.as_int()).unwrap_or(0);
                let cur = vm.heap.load_silent(*a).as_int().unwrap_or(0);
                if cur == old {
                    vm.heap.store_silent(*a, Value::Int(new));
                    O::Value(Value::Bool(true))
                } else {
                    O::Value(Value::Bool(false))
                }
            }
            _ => O::Error("atomic CAS of non-pointer".into()),
        },
        "runtime.Gosched" => O::Sleep(vm.steps + 1, Value::Nil),
        "copy" => {
            let (dst, src) = (args.first().cloned(), args.get(1).cloned());
            match (dst, src) {
                (Some(Value::Slice(d)), Some(Value::Slice(s))) => {
                    let n = vm.heap.slices[d]
                        .elems
                        .len()
                        .min(vm.heap.slices[s].elems.len());
                    for i in 0..n {
                        let sa = vm.heap.slices[s].elems[i];
                        let da = vm.heap.slices[d].elems[i];
                        let v = vm.read_cell(gid, sa);
                        vm.write_cell(gid, da, v);
                    }
                    O::Value(Value::Int(n as i64))
                }
                _ => O::Value(Value::Int(0)),
            }
        }
        "conv.int" => match args.into_iter().next() {
            Some(Value::Int(i)) => O::Value(Value::Int(i)),
            Some(Value::Float(f)) => O::Value(Value::Int(f as i64)),
            Some(Value::Bool(b)) => O::Value(Value::Int(b as i64)),
            Some(other) => O::Error(format!("cannot convert {} to int", other.type_name())),
            None => O::Value(Value::Int(0)),
        },
        "conv.float" => match args.into_iter().next() {
            Some(Value::Int(i)) => O::Value(Value::Float(i as f64)),
            Some(Value::Float(f)) => O::Value(Value::Float(f)),
            Some(other) => O::Error(format!("cannot convert {} to float", other.type_name())),
            None => O::Value(Value::Float(0.0)),
        },
        "conv.string" => match args.into_iter().next() {
            Some(Value::Str(s)) => O::Value(Value::Str(s)),
            Some(Value::Error(e)) => O::Value(Value::Str(e)),
            Some(Value::Int(i)) => O::Value(Value::str(
                char::from_u32(i as u32).unwrap_or('\u{fffd}').to_string(),
            )),
            Some(other) => O::Value(Value::str(other.type_name())),
            None => O::Value(Value::str("")),
        },
        "conv.duration" => match args.into_iter().next() {
            Some(Value::Int(i)) => O::Value(Value::Int(i)),
            _ => O::Value(Value::Int(0)),
        },
        other => O::Error(format!("builtin `{other}` not implemented")),
    }
}

// ----------------------------------------------------------- native methods

pub(crate) fn dispatch_method(
    vm: &mut Vm,
    gid: Gid,
    recv: &Value,
    method: NativeMethod,
    args: Vec<Value>,
) -> MethodOutcome {
    use MethodOutcome as M;
    use NativeMethod as N;
    match recv {
        Value::Mutex(r) => mutex_method(vm, gid, *r, method),
        Value::RwMutex(r) => rwmutex_method(vm, gid, *r, method),
        Value::WaitGroup(r) => waitgroup_method(vm, gid, *r, method, &args),
        Value::SyncMap(r) => syncmap_method(vm, gid, *r, method, args),
        Value::Chan(r) => {
            if method == N::Cancel {
                vm.close_chan_internal(*r);
                M::Done(Value::Nil)
            } else {
                M::NotNative
            }
        }
        Value::Ptr(a) => {
            // Auto-deref pointer receivers for native methods. The one
            // clone on this path: the inner value is lifted out of the
            // heap so the recursion can borrow it while the VM is
            // mutably borrowed — cheap for the sync primitives this
            // exists for (they are object refs).
            let inner = vm.heap.load_silent(*a).clone();
            if matches!(
                inner,
                Value::Struct(_)
                    | Value::Mutex(_)
                    | Value::RwMutex(_)
                    | Value::WaitGroup(_)
                    | Value::SyncMap(_)
            ) {
                dispatch_method(vm, gid, &inner, method, args)
            } else {
                M::NotNative
            }
        }
        Value::Struct(r) => {
            let ty = vm.heap.structs[*r].type_name.clone();
            match (ty.as_str(), method) {
                ("testing.T", _) => testing_method(vm, gid, *r, method, args),
                ("context.Context", N::Done) => {
                    let done = sfield(vm, *r, "done").unwrap_or(Value::Nil);
                    match done {
                        Value::Chan(_) => M::Done(done),
                        _ => {
                            if vm.never_chan.is_none() {
                                if let Value::Chan(c) = vm.heap.alloc_chan(0) {
                                    vm.never_chan = Some(c);
                                }
                            }
                            M::Done(Value::Chan(vm.never_chan.expect("never chan")))
                        }
                    }
                }
                ("context.Context", N::Err) => M::Done(Value::Nil),
                ("context.Context", N::Value) => M::Done(Value::Nil),
                ("rand.Rand", N::Intn) | ("rand.Source", N::Intn) => {
                    match rand_state_addr(vm, recv) {
                        Some(addr) => {
                            let raw = step_source(vm, gid, addr);
                            let n = args.first().and_then(|v| v.as_int()).unwrap_or(1).max(1);
                            M::Done(Value::Int(raw % n))
                        }
                        None => M::Error("rand state missing".into()),
                    }
                }
                ("rand.Rand", N::Int63) | ("rand.Source", N::Int63) => {
                    match rand_state_addr(vm, recv) {
                        Some(addr) => M::Done(Value::Int(step_source(vm, gid, addr))),
                        None => M::Error("rand state missing".into()),
                    }
                }
                ("rand.Rand", N::Float64) => match rand_state_addr(vm, recv) {
                    Some(addr) => {
                        let raw = step_source(vm, gid, addr);
                        M::Done(Value::Float((raw % 1_000_000) as f64 / 1_000_000.0))
                    }
                    None => M::Error("rand state missing".into()),
                },
                ("md5.Hash", N::Write) => {
                    let a = vm.heap.structs[*r].field("state").expect("hash state");
                    let add = match args.first() {
                        Some(Value::Str(s)) => s.len() as i64 + 7,
                        Some(Value::Slice(sl)) => vm.heap.slices[*sl].elems.len() as i64 + 3,
                        _ => 1,
                    };
                    let cur = vm.read_cell(gid, a).as_int().unwrap_or(0);
                    vm.write_cell(gid, a, Value::Int(cur.wrapping_mul(31).wrapping_add(add)));
                    M::Done(Value::Tuple(std::rc::Rc::new(vec![
                        Value::Int(add),
                        Value::Nil,
                    ])))
                }
                ("md5.Hash", N::Sum) => {
                    let a = vm.heap.structs[*r].field("state").expect("hash state");
                    let cur = vm.read_cell(gid, a).as_int().unwrap_or(0);
                    M::Done(Value::str(format!("{cur:016x}")))
                }
                ("md5.Hash", N::Reset) => {
                    let a = vm.heap.structs[*r].field("state").expect("hash state");
                    vm.write_cell(gid, a, Value::Int(0));
                    M::Done(Value::Nil)
                }
                ("strings.Reader", N::Read) => {
                    let pos = vm.heap.structs[*r].field("pos").expect("reader pos");
                    let data = sfield(vm, *r, "data")
                        .map(|v| v.render(&vm.heap))
                        .unwrap_or_default();
                    let cur = vm.read_cell(gid, pos).as_int().unwrap_or(0);
                    if cur as usize >= data.len() {
                        M::Done(Value::Tuple(std::rc::Rc::new(vec![
                            Value::Int(0),
                            Value::error("EOF"),
                        ])))
                    } else {
                        let n = (data.len() as i64 - cur).min(8);
                        vm.write_cell(gid, pos, Value::Int(cur + n));
                        M::Done(Value::Tuple(std::rc::Rc::new(vec![
                            Value::Int(n),
                            Value::Nil,
                        ])))
                    }
                }
                ("strings.Reader", N::Len) => {
                    let data = sfield(vm, *r, "data")
                        .map(|v| v.render(&vm.heap))
                        .unwrap_or_default();
                    M::Done(Value::Int(data.len() as i64))
                }
                _ => {
                    // Embedded sync-primitive promotion: `c.Lock()` where
                    // the struct embeds sync.Mutex.
                    promote_embedded(vm, gid, *r, method)
                }
            }
        }
        _ => M::NotNative,
    }
}

/// Promotes `Lock`/`Unlock`/… through embedded sync primitives.
fn promote_embedded(vm: &mut Vm, gid: Gid, s: ObjRef, method: NativeMethod) -> MethodOutcome {
    use NativeMethod as N;
    let fields: Vec<(String, u64)> = vm.heap.structs[s].fields.clone();
    for (_, addr) in fields {
        let v = vm.heap.load_silent(addr).clone();
        match (&v, method) {
            (Value::Mutex(r), N::Lock | N::Unlock | N::TryLock) => {
                return mutex_method(vm, gid, *r, method)
            }
            (Value::RwMutex(r), N::Lock | N::Unlock | N::RLock | N::RUnlock) => {
                return rwmutex_method(vm, gid, *r, method)
            }
            (Value::WaitGroup(r), N::Add | N::Done | N::Wait) => {
                return waitgroup_method(vm, gid, *r, method, &[])
            }
            _ => {}
        }
    }
    MethodOutcome::NotNative
}

fn mutex_method(vm: &mut Vm, gid: Gid, r: ObjRef, method: NativeMethod) -> MethodOutcome {
    use MethodOutcome as M;
    use NativeMethod as N;
    let sid = SYNC_MUTEX | r as u64;
    match method {
        N::Lock => {
            if vm.heap.mutexes[r].locked {
                if !vm.heap.mutexes[r].waiters.contains(&gid) {
                    vm.heap.mutexes[r].waiters.push(gid);
                }
                M::Park("mutex lock")
            } else {
                vm.heap.mutexes[r].locked = true;
                vm.det.acquire(gid, sid);
                M::Done(Value::Nil)
            }
        }
        N::TryLock => {
            if vm.heap.mutexes[r].locked {
                M::Done(Value::Bool(false))
            } else {
                vm.heap.mutexes[r].locked = true;
                vm.det.acquire(gid, sid);
                M::Done(Value::Bool(true))
            }
        }
        N::Unlock => {
            if !vm.heap.mutexes[r].locked {
                return M::Error("sync: unlock of unlocked mutex".into());
            }
            vm.det.release(gid, sid);
            vm.heap.mutexes[r].locked = false;
            let waiters = std::mem::take(&mut vm.heap.mutexes[r].waiters);
            vm.heap.mutexes[r].waiters = wake_all(vm, waiters);
            M::Done(Value::Nil)
        }
        _ => M::NotNative,
    }
}

fn rwmutex_method(vm: &mut Vm, gid: Gid, r: ObjRef, method: NativeMethod) -> MethodOutcome {
    use MethodOutcome as M;
    use NativeMethod as N;
    let wid = SYNC_RW_W | r as u64;
    let rid = SYNC_RW_R | r as u64;
    match method {
        N::Lock => {
            let m = &vm.heap.rwmutexes[r];
            if m.write_locked || m.readers > 0 {
                if !vm.heap.rwmutexes[r].write_waiters.contains(&gid) {
                    vm.heap.rwmutexes[r].write_waiters.push(gid);
                }
                M::Park("rwmutex lock")
            } else {
                vm.heap.rwmutexes[r].write_locked = true;
                vm.det.acquire(gid, wid);
                vm.det.acquire(gid, rid);
                M::Done(Value::Nil)
            }
        }
        N::Unlock => {
            if !vm.heap.rwmutexes[r].write_locked {
                return M::Error("sync: unlock of unlocked RWMutex".into());
            }
            vm.det.release(gid, wid);
            vm.heap.rwmutexes[r].write_locked = false;
            let ws = std::mem::take(&mut vm.heap.rwmutexes[r].write_waiters);
            let rs = std::mem::take(&mut vm.heap.rwmutexes[r].read_waiters);
            vm.heap.rwmutexes[r].write_waiters = wake_all(vm, ws);
            vm.heap.rwmutexes[r].read_waiters = wake_all(vm, rs);
            M::Done(Value::Nil)
        }
        N::RLock => {
            if vm.heap.rwmutexes[r].write_locked {
                if !vm.heap.rwmutexes[r].read_waiters.contains(&gid) {
                    vm.heap.rwmutexes[r].read_waiters.push(gid);
                }
                M::Park("rwmutex rlock")
            } else {
                vm.heap.rwmutexes[r].readers += 1;
                vm.det.acquire(gid, wid);
                M::Done(Value::Nil)
            }
        }
        N::RUnlock => {
            if vm.heap.rwmutexes[r].readers == 0 {
                return M::Error("sync: RUnlock of unlocked RWMutex".into());
            }
            vm.det.release_merge(gid, rid);
            vm.heap.rwmutexes[r].readers -= 1;
            if vm.heap.rwmutexes[r].readers == 0 {
                let ws = std::mem::take(&mut vm.heap.rwmutexes[r].write_waiters);
                vm.heap.rwmutexes[r].write_waiters = wake_all(vm, ws);
            }
            M::Done(Value::Nil)
        }
        _ => M::NotNative,
    }
}

fn waitgroup_method(
    vm: &mut Vm,
    gid: Gid,
    r: ObjRef,
    method: NativeMethod,
    args: &[Value],
) -> MethodOutcome {
    use MethodOutcome as M;
    use NativeMethod as N;
    let sid = SYNC_WG | r as u64;
    match method {
        N::Add => {
            let n = args.first().and_then(|v| v.as_int()).unwrap_or(1);
            vm.heap.waitgroups[r].counter += n;
            if vm.heap.waitgroups[r].counter < 0 {
                return M::Error("sync: negative WaitGroup counter".into());
            }
            if vm.heap.waitgroups[r].counter == 0 {
                wake_wg_waiters(vm, r);
            }
            M::Done(Value::Nil)
        }
        N::Done => {
            vm.det.release_merge(gid, sid);
            vm.heap.waitgroups[r].counter -= 1;
            if vm.heap.waitgroups[r].counter < 0 {
                return M::Error("sync: negative WaitGroup counter".into());
            }
            if vm.heap.waitgroups[r].counter == 0 {
                wake_wg_waiters(vm, r);
            }
            M::Done(Value::Nil)
        }
        N::Wait => {
            if vm.heap.waitgroups[r].counter != 0 {
                if !vm.heap.waitgroups[r].waiters.contains(&gid) {
                    vm.heap.waitgroups[r].waiters.push(gid);
                }
                M::Park("waitgroup wait")
            } else {
                vm.det.acquire(gid, sid);
                M::Done(Value::Nil)
            }
        }
        _ => M::NotNative,
    }
}

fn wake_wg_waiters(vm: &mut Vm, r: ObjRef) {
    let waiters = std::mem::take(&mut vm.heap.waitgroups[r].waiters);
    vm.heap.waitgroups[r].waiters = wake_all(vm, waiters);
}

/// Wakes every blocked goroutine in `waiters` and hands the vector back
/// *cleared but with its capacity intact* — waiter lists cycle through
/// take/park constantly on contended locks, and re-allocating the
/// buffer on every park showed up in sync-heavy profiles.
fn wake_all(vm: &mut Vm, mut waiters: Vec<Gid>) -> Vec<Gid> {
    for &w in &waiters {
        if vm.gos[w].status == Status::Blocked {
            vm.gos[w].status = Status::Runnable;
        }
    }
    waiters.clear();
    waiters
}

fn syncmap_method(
    vm: &mut Vm,
    gid: Gid,
    r: ObjRef,
    method: NativeMethod,
    args: Vec<Value>,
) -> MethodOutcome {
    use MethodOutcome as M;
    use NativeMethod as N;
    let sid = SYNC_SYNCMAP | r as u64;
    vm.det.atomic_op(gid, sid);
    match method {
        N::Load => {
            let Some(key) = args.first().and_then(MapKey::from_value) else {
                return M::Error("invalid sync.Map key".into());
            };
            match vm.heap.syncmaps[r].entries.get(&key) {
                Some(v) => M::Done(Value::Tuple(std::rc::Rc::new(vec![
                    v.clone(),
                    Value::Bool(true),
                ]))),
                None => M::Done(Value::Tuple(std::rc::Rc::new(vec![
                    Value::Nil,
                    Value::Bool(false),
                ]))),
            }
        }
        N::Store => {
            let Some(key) = args.first().and_then(MapKey::from_value) else {
                return M::Error("invalid sync.Map key".into());
            };
            let v = args.get(1).cloned().unwrap_or(Value::Nil);
            vm.heap.syncmaps[r].entries.insert(key, v);
            M::Done(Value::Nil)
        }
        N::Delete => {
            let Some(key) = args.first().and_then(MapKey::from_value) else {
                return M::Error("invalid sync.Map key".into());
            };
            vm.heap.syncmaps[r].entries.remove(&key);
            M::Done(Value::Nil)
        }
        N::LoadOrStore => {
            let Some(key) = args.first().and_then(MapKey::from_value) else {
                return M::Error("invalid sync.Map key".into());
            };
            let v = args.get(1).cloned().unwrap_or(Value::Nil);
            match vm.heap.syncmaps[r].entries.get(&key) {
                Some(existing) => M::Done(Value::Tuple(std::rc::Rc::new(vec![
                    existing.clone(),
                    Value::Bool(true),
                ]))),
                None => {
                    vm.heap.syncmaps[r].entries.insert(key, v.clone());
                    M::Done(Value::Tuple(std::rc::Rc::new(vec![v, Value::Bool(false)])))
                }
            }
        }
        N::Range => {
            let f = args.into_iter().next().unwrap_or(Value::Nil);
            let entries: Vec<(MapKey, Value)> = vm.heap.syncmaps[r]
                .entries
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            for (k, v) in entries {
                match run_nested_call(vm, gid, f.clone(), vec![k.to_value(), v]) {
                    Ok(Value::Bool(false)) => break,
                    Ok(_) => {}
                    Err(e) => return M::Error(e),
                }
            }
            M::Done(Value::Nil)
        }
        _ => M::NotNative,
    }
}

fn testing_method(
    vm: &mut Vm,
    gid: Gid,
    t: ObjRef,
    method: NativeMethod,
    args: Vec<Value>,
) -> MethodOutcome {
    use MethodOutcome as M;
    use NativeMethod as N;
    match method {
        N::Run => {
            let name = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            let f = args.get(1).cloned().unwrap_or(Value::Nil);
            let parent_name = sfield(vm, t, "name")
                .map(|v| v.render(&vm.heap))
                .unwrap_or_default();
            let child_t = make_struct(
                vm,
                "testing.T",
                vec![
                    ("name", Value::str(format!("{parent_name}/{name}"))),
                    ("$parent", Value::Int(gid as i64)),
                    ("$signaled", Value::Bool(false)),
                ],
            );
            match vm.spawn(Some(gid), f, vec![child_t.clone()]) {
                Ok(child) => {
                    vm.gos[child].on_exit = Some(OnExit::Subtest { tvalue: child_t });
                    // t.Run(name, f): argc 2 + callee = 3 operands.
                    vm.gos[gid].wake = Some(WakeAction {
                        pops: 3,
                        push: vec![Value::Bool(true)],
                        acquire: None,
                        jump_to: None,
                    });
                    M::ParkArmed("t.Run")
                }
                Err(e) => M::Error(e),
            }
        }
        N::Parallel => {
            signal_parent(vm, gid, t);
            M::Done(Value::Nil)
        }
        N::Name => M::Done(sfield(vm, t, "name").unwrap_or(Value::str(""))),
        N::Errorf | N::Error | N::Fatalf | N::Fatal | N::Fail | N::FailNow => {
            let fmt = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            let msg = format_go(vm, &fmt, args.get(1..).unwrap_or(&[]));
            vm.test_failures.push(format!("{}: {msg}", method.as_str()));
            M::Done(Value::Nil)
        }
        N::Logf | N::Log => {
            let fmt = args.first().map(|v| v.render(&vm.heap)).unwrap_or_default();
            let msg = format_go(vm, &fmt, args.get(1..).unwrap_or(&[]));
            vm.output.push_str(&msg);
            vm.output.push('\n');
            M::Done(Value::Nil)
        }
        N::Helper | N::Cleanup | N::Skip | N::SkipNow | N::Skipf | N::Setenv => M::Done(Value::Nil),
        _ => M::NotNative,
    }
}

/// Wakes the parent blocked in `t.Run` (used by `t.Parallel` and subtest
/// exit), with a happens-before edge from the child.
fn signal_parent(vm: &mut Vm, child_gid: Gid, t: ObjRef) {
    let parent = sfield(vm, t, "$parent")
        .and_then(|v| v.as_int())
        .unwrap_or(-1);
    let signaled = sfield(vm, t, "$signaled")
        .and_then(|v| v.as_bool())
        .unwrap_or(true);
    if parent < 0 || signaled {
        return;
    }
    sfield_set(vm, t, "$signaled", Value::Bool(true));
    let p = parent as usize;
    let clock = vm.det.release_snapshot(child_gid);
    if let Some(w) = &mut vm.gos[p].wake {
        w.acquire = Some(clock);
    }
    if vm.gos[p].status == Status::Blocked {
        vm.gos[p].status = Status::Runnable;
    }
}

/// Called by the VM whenever a goroutine finishes.
pub(crate) fn on_goroutine_exit(vm: &mut Vm, gid: Gid) {
    if let Some(OnExit::Subtest { tvalue }) = vm.gos[gid].on_exit.take() {
        if let Some(t) = struct_ref(&tvalue) {
            signal_parent(vm, gid, t);
        }
    }
}

/// Runs a callback synchronously inside a native (used by
/// `sync.Map.Range`). The callback must not block.
pub(crate) fn run_nested_call(
    vm: &mut Vm,
    gid: Gid,
    callee: Value,
    args: Vec<Value>,
) -> Result<Value, String> {
    let base = vm.gos[gid].frames.len();
    // The caller frame sits mid-instruction; frame pops below will bump
    // its pc, so save and restore it around the nested execution.
    let saved_pc = vm.gos[gid].frames.last().map(|f| f.pc);
    vm.push_call(gid, callee, args)?;
    let mut guard = 0u64;
    loop {
        guard += 1;
        if guard > 1_000_000 {
            return Err("nested call ran too long".into());
        }
        if vm.gos[gid].frames.len() == base {
            if let (Some(pc), Some(f)) = (saved_pc, vm.gos[gid].frames.last_mut()) {
                f.pc = pc;
            }
            return Ok(vm.gos[gid].stack.pop().unwrap_or(Value::Nil));
        }
        if vm.gos[gid]
            .frames
            .last()
            .map(|f| f.returning.is_some())
            .unwrap_or(false)
        {
            vm.proceed_return_public(gid);
            continue;
        }
        let Some((fid, pc)) = vm.gos[gid].frames.last().map(|f| (f.func, f.pc)) else {
            return Err("nested call lost its frame".into());
        };
        let prog = vm.prog;
        let code = &prog.funcs[fid as usize].code;
        if pc >= code.len() {
            vm.start_return_public(gid, Value::Nil);
            continue;
        }
        match crate::ops::exec(vm, gid, &code[pc]) {
            crate::vm::Flow::Next => {
                if let Some(f) = vm.gos[gid].frames.last_mut() {
                    f.pc += 1;
                }
            }
            crate::vm::Flow::Jump(t) => {
                if let Some(f) = vm.gos[gid].frames.last_mut() {
                    f.pc = t;
                }
            }
            crate::vm::Flow::Stay => {}
            crate::vm::Flow::Park(r) => {
                return Err(format!("callback blocked on {r} inside sync.Map.Range"))
            }
            crate::vm::Flow::Returned(v) => {
                vm.start_return_public(gid, v);
            }
            crate::vm::Flow::Panic(m) => return Err(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_ids_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for (i, name) in BUILTIN_NAMES.iter().enumerate() {
            assert!(seen.insert(*name), "duplicate builtin {name}");
            assert_eq!(builtin_id(name), Some(i as u16));
            assert_eq!(builtin_name(i as u16), *name);
        }
        assert_eq!(builtin_id("no.such"), None);
    }

    #[test]
    fn duration_constants_fold() {
        assert_eq!(const_value("time.Minute"), Some(60));
        assert_eq!(const_value("time.Fortnight"), None);
    }

    #[test]
    fn native_method_names_round_trip() {
        use NativeMethod as N;
        for m in [
            N::Lock,
            N::TryLock,
            N::Unlock,
            N::RLock,
            N::RUnlock,
            N::Add,
            N::Done,
            N::Wait,
            N::Load,
            N::Store,
            N::Delete,
            N::LoadOrStore,
            N::Range,
            N::Cancel,
            N::Err,
            N::Value,
            N::Intn,
            N::Int63,
            N::Float64,
            N::Write,
            N::Sum,
            N::Reset,
            N::Read,
            N::Len,
            N::Run,
            N::Parallel,
            N::Name,
            N::Errorf,
            N::Error,
            N::Fatalf,
            N::Fatal,
            N::Fail,
            N::FailNow,
            N::Logf,
            N::Log,
            N::Helper,
            N::Cleanup,
            N::Skip,
            N::SkipNow,
            N::Skipf,
            N::Setenv,
        ] {
            assert_eq!(NativeMethod::from_name(m.as_str()), Some(m));
        }
        assert_eq!(NativeMethod::from_name("NoSuchMethod"), None);
        assert_eq!(NativeMethod::from_name(""), None);
    }
}
