//! Pluggable schedule-exploration policies (§4.4.1).
//!
//! Dr.Fix's reproduce and validate steps run each test under many
//! schedules; a race the scheduler never exposes is a false "fixed".
//! This module makes the exploration strategy a first-class, pluggable
//! component of the VM:
//!
//! - [`SchedulePolicy::Random`] — the original uniform-random scheduler:
//!   at every scheduling point, pick a runnable goroutine uniformly and
//!   run it for a uniform quantum. Bit-compatible with the pre-refactor
//!   VM for identical seeds.
//! - [`SchedulePolicy::Pct`] — a PCT-style priority scheduler
//!   (Burckhardt et al., ASPLOS 2010): each goroutine gets a random
//!   priority, the highest-priority runnable goroutine always runs, and
//!   `depth` priority-change points (drawn uniformly over an instruction
//!   `budget`) demote the running goroutine, forcing the rare
//!   interleavings uniform sampling takes many schedules to reach.
//! - [`SchedulePolicy::Sweep`] — a quantum sweep: each run fixes one
//!   preemption quantum from a ladder (chosen by the run seed), so a
//!   campaign covers both fine-grained interleavings (quantum 1) and
//!   long uninterrupted stretches in few runs.
//!
//! Every run also folds its scheduling decisions into a **schedule
//! signature** (a hash of the preemption-point sequence, exposed as
//! [`crate::RunResult::schedule_sig`]). Two runs with the same signature
//! executed the same interleaving, so
//! [`crate::run_test_many`] can stop a campaign early once the schedule
//! space saturates instead of burning instructions on replays.
//!
//! The VM accepts any custom engine via
//! [`crate::Vm::with_scheduler`]; the built-in policies cover the
//! paper's validation loop and the `schedules_to_expose` bench.

use crate::value::Gid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64: the standard 64-bit finalizing mixer (Steele et al.).
///
/// Used both to derive statistically independent per-run seeds from one
/// base seed (see [`SeedStream::Split`]) and to seed the policies' own
/// priority streams.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a multi-run campaign derives per-run VM seeds from its base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedStream {
    /// `base + i` — the pre-refactor stream. Kept for exact replay of
    /// historical campaigns; campaigns with nearby base seeds share most
    /// of their schedules (base 0 runs 1..N are base 1 runs 0..N-1).
    Sequential,
    /// `splitmix64(base ⊕ splitmix64(i))` — statistically independent
    /// per-run seeds; nearby base seeds share no schedules.
    #[default]
    Split,
}

impl SeedStream {
    /// The VM seed for run `i` of a campaign with base seed `base`.
    pub fn derive(self, base: u64, i: u64) -> u64 {
        match self {
            SeedStream::Sequential => base.wrapping_add(i),
            SeedStream::Split => splitmix64(base ^ splitmix64(i)),
        }
    }
}

/// One scheduling decision: which goroutine runs next, and for how many
/// instructions before the scheduler is consulted again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The goroutine to run.
    pub gid: Gid,
    /// Its quantum (clamped to at least 1 by the VM).
    pub quantum: u64,
}

/// A per-run scheduling engine.
///
/// The VM calls [`Scheduler::pick`] at every scheduling point with the
/// runnable set (non-empty, ascending by goroutine id) and the current
/// instruction count. Engines may draw from the VM's seeded `rng` (the
/// random and sweep policies do — exactly matching the pre-refactor
/// draw sequence) or keep their own derived streams (PCT does, so its
/// bookkeeping never perturbs program-visible randomness).
pub trait Scheduler {
    /// Chooses the next goroutine and quantum.
    fn pick(&mut self, rng: &mut StdRng, runnable: &[Gid], steps: u64) -> Decision;

    /// Short diagnostic label, e.g. `"pct(d=3)"`.
    fn name(&self) -> String;
}

/// Declarative policy configuration, carried by [`crate::VmOptions`],
/// [`crate::TestConfig`] and the pipeline configs. [`build`] turns it
/// into a per-run [`Scheduler`] engine.
///
/// [`build`]: SchedulePolicy::build
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Uniform-random goroutine and quantum — the pre-refactor default.
    #[default]
    Random,
    /// PCT-style priority scheduling with `depth` priority-change points
    /// drawn uniformly over the first `budget` instructions of the run.
    Pct {
        /// Number of priority-change points per run (the paper's *d*).
        depth: u32,
        /// Instruction window the change points are drawn from.
        budget: u64,
    },
    /// Per-run fixed preemption quantum from [`SWEEP_QUANTA`].
    Sweep,
}

/// The quantum ladder [`SchedulePolicy::Sweep`] cycles through, one rung
/// per run seed: from instruction-level interleaving to long stretches.
pub const SWEEP_QUANTA: [u64; 8] = [1, 2, 3, 5, 8, 16, 32, 64];

/// Default number of priority-change points for [`SchedulePolicy::pct`].
pub const PCT_DEFAULT_DEPTH: u32 = 3;

/// Default change-point window for [`SchedulePolicy::pct`] — generous
/// for the corpus programs (tens to a few thousand instructions).
pub const PCT_DEFAULT_BUDGET: u64 = 2048;

impl SchedulePolicy {
    /// The PCT policy with default depth and budget.
    pub fn pct() -> Self {
        SchedulePolicy::Pct {
            depth: PCT_DEFAULT_DEPTH,
            budget: PCT_DEFAULT_BUDGET,
        }
    }

    /// Instantiates the per-run engine for a run with seed `seed` and
    /// the VM's maximum preemption quantum `preempt_max`.
    pub fn build(&self, seed: u64, preempt_max: u32) -> Box<dyn Scheduler> {
        match *self {
            SchedulePolicy::Random => Box::new(RandomScheduler { preempt_max }),
            SchedulePolicy::Pct { depth, budget } => {
                Box::new(PctScheduler::new(seed, depth, budget))
            }
            SchedulePolicy::Sweep => {
                let quantum = SWEEP_QUANTA[(splitmix64(seed) % SWEEP_QUANTA.len() as u64) as usize];
                Box::new(SweepScheduler { quantum })
            }
        }
    }

    /// Parses a policy spec: `random`, `sweep`, `pct`, `pct:<depth>` or
    /// `pct:<depth>:<budget>` (case-insensitive). Returns `None` for
    /// anything else.
    pub fn parse(spec: &str) -> Option<Self> {
        let s = spec.trim().to_ascii_lowercase();
        if s == "random" || s == "uniform" {
            return Some(SchedulePolicy::Random);
        }
        if s == "sweep" {
            return Some(SchedulePolicy::Sweep);
        }
        let mut parts = s.split(':');
        if parts.next()? != "pct" {
            return None;
        }
        let depth = match parts.next() {
            None => PCT_DEFAULT_DEPTH,
            Some(d) => d.parse().ok()?,
        };
        let budget = match parts.next() {
            None => PCT_DEFAULT_BUDGET,
            Some(b) => b.parse().ok()?,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(SchedulePolicy::Pct { depth, budget })
    }

    /// Reads the `DRFIX_POLICY` environment variable, defaulting to
    /// [`SchedulePolicy::Random`] when unset or unparseable.
    pub fn from_env() -> Self {
        std::env::var("DRFIX_POLICY")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Short label, e.g. `pct(d=3,b=2048)`.
    pub fn label(&self) -> String {
        match self {
            SchedulePolicy::Random => "random".to_owned(),
            SchedulePolicy::Pct { depth, budget } => format!("pct(d={depth},b={budget})"),
            SchedulePolicy::Sweep => "sweep".to_owned(),
        }
    }
}

// ------------------------------------------------------------- engines

/// The pre-refactor scheduler: uniform goroutine, uniform quantum.
///
/// The two `gen_range` draws (pick, then quantum) happen in exactly the
/// pre-refactor order against the shared VM rng, which is what keeps
/// old seeds bit-compatible.
struct RandomScheduler {
    preempt_max: u32,
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, rng: &mut StdRng, runnable: &[Gid], _steps: u64) -> Decision {
        let gid = runnable[rng.gen_range(0..runnable.len())];
        let quantum = rng.gen_range(1..=self.preempt_max as u64);
        Decision { gid, quantum }
    }

    fn name(&self) -> String {
        "random".to_owned()
    }
}

/// Uniform goroutine pick with a per-run fixed quantum.
struct SweepScheduler {
    quantum: u64,
}

impl Scheduler for SweepScheduler {
    fn pick(&mut self, rng: &mut StdRng, runnable: &[Gid], _steps: u64) -> Decision {
        let gid = runnable[rng.gen_range(0..runnable.len())];
        Decision {
            gid,
            quantum: self.quantum,
        }
    }

    fn name(&self) -> String {
        format!("sweep(q={})", self.quantum)
    }
}

/// PCT-style priority scheduler.
///
/// Priorities live in two disjoint bands: initial priorities are drawn
/// in a high band, demotions assign strictly decreasing values from a
/// low band, so a demoted goroutine ranks below every goroutine that has
/// not been demoted, and earlier demotions rank above later ones — the
/// PCT priority order. The engine keeps its own seed-derived rng so its
/// draws never perturb the program-visible random stream.
struct PctScheduler {
    depth: u32,
    /// Change points (absolute instruction counts), ascending.
    change_points: Vec<u64>,
    next_cp: usize,
    /// Lazily assigned priority per goroutine id.
    priorities: Vec<Option<u64>>,
    /// Next demotion value (strictly decreasing).
    next_low: u64,
    /// The goroutine chosen at the previous scheduling point — the one a
    /// crossed change point demotes.
    last: Option<Gid>,
    prio_rng: StdRng,
}

/// High band floor for initial PCT priorities.
const PCT_HIGH_BAND: u64 = 1 << 32;

impl PctScheduler {
    fn new(seed: u64, depth: u32, budget: u64) -> Self {
        let mut prio_rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x9C7_5EED));
        let budget = budget.max(1);
        let mut change_points: Vec<u64> =
            (0..depth).map(|_| prio_rng.gen_range(1..=budget)).collect();
        change_points.sort_unstable();
        PctScheduler {
            depth,
            change_points,
            next_cp: 0,
            priorities: Vec::new(),
            next_low: PCT_HIGH_BAND - 1,
            last: None,
            prio_rng,
        }
    }

    fn priority(&mut self, gid: Gid) -> u64 {
        if gid >= self.priorities.len() {
            self.priorities.resize(gid + 1, None);
        }
        *self.priorities[gid]
            .get_or_insert_with(|| PCT_HIGH_BAND + self.prio_rng.gen_range(0..PCT_HIGH_BAND))
    }
}

impl Scheduler for PctScheduler {
    fn pick(&mut self, _rng: &mut StdRng, runnable: &[Gid], steps: u64) -> Decision {
        // Crossed change points demote whoever was running across them.
        while self.next_cp < self.change_points.len() && steps >= self.change_points[self.next_cp] {
            if let Some(last) = self.last {
                if last >= self.priorities.len() {
                    self.priorities.resize(last + 1, None);
                }
                self.priorities[last] = Some(self.next_low);
                self.next_low = self.next_low.saturating_sub(1);
            }
            self.next_cp += 1;
        }
        // Highest priority wins; ties (impossible in practice) break
        // towards the lower gid for determinism.
        let gid = *runnable
            .iter()
            .max_by_key(|&&g| (self.priority(g), std::cmp::Reverse(g)))
            .expect("runnable set is non-empty");
        self.last = Some(gid);
        // Run until the next change point (or a long stretch when none
        // remain) — the chosen goroutine yields earlier if it blocks.
        let quantum = match self.change_points.get(self.next_cp) {
            Some(&cp) if cp > steps => (cp - steps).min(4096),
            _ => 4096,
        };
        Decision { gid, quantum }
    }

    fn name(&self) -> String {
        format!("pct(d={})", self.depth)
    }
}

/// Folds one scheduling decision into a running schedule signature.
///
/// The signature is an FNV-1a-style fold over the `(goroutine, step)`
/// preemption-point sequence: two runs with equal signatures made the
/// same decisions at the same instruction counts, i.e. executed the same
/// interleaving of the same program.
pub fn fold_signature(sig: u64, gid: Gid, steps: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = sig ^ (gid as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = h.wrapping_mul(PRIME);
    h ^= steps;
    h.wrapping_mul(PRIME)
}

/// Starting value for [`fold_signature`] chains.
pub const SIGNATURE_SEED: u64 = 0xCBF2_9CE4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(
            SchedulePolicy::parse("random"),
            Some(SchedulePolicy::Random)
        );
        assert_eq!(SchedulePolicy::parse("SWEEP"), Some(SchedulePolicy::Sweep));
        assert_eq!(
            SchedulePolicy::parse("pct"),
            Some(SchedulePolicy::Pct {
                depth: PCT_DEFAULT_DEPTH,
                budget: PCT_DEFAULT_BUDGET
            })
        );
        assert_eq!(
            SchedulePolicy::parse("pct:7:512"),
            Some(SchedulePolicy::Pct {
                depth: 7,
                budget: 512
            })
        );
        assert_eq!(SchedulePolicy::parse("pct:seven"), None);
        assert_eq!(SchedulePolicy::parse("fifo"), None);
        assert_eq!(SchedulePolicy::parse("pct:1:2:3"), None);
    }

    #[test]
    fn seed_streams_differ_in_collision_behaviour() {
        // Sequential: base 0 and base 1 share all but one seed over 8 runs.
        let a: Vec<u64> = (0..8)
            .map(|i| SeedStream::Sequential.derive(0, i))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|i| SeedStream::Sequential.derive(1, i))
            .collect();
        let shared = a.iter().filter(|s| b.contains(s)).count();
        assert_eq!(shared, 7, "sequential streams overlap");
        // Split: no overlap at all.
        let a: Vec<u64> = (0..8).map(|i| SeedStream::Split.derive(0, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| SeedStream::Split.derive(1, i)).collect();
        assert!(a.iter().all(|s| !b.contains(s)), "split streams collide");
    }

    #[test]
    fn pct_runs_highest_priority_and_demotes_at_change_points() {
        let mut rng = StdRng::seed_from_u64(0);
        let policy = SchedulePolicy::Pct {
            depth: 2,
            budget: 100,
        };
        let mut eng = policy.build(42, 24);
        let first = eng.pick(&mut rng, &[0, 1, 2], 0);
        // Before any change point the same goroutine keeps winning.
        let again = eng.pick(&mut rng, &[0, 1, 2], 1);
        assert_eq!(first.gid, again.gid);
        // After the whole budget every change point has fired; the
        // original winner has been demoted below the others.
        let later = eng.pick(&mut rng, &[0, 1, 2], 200);
        assert_ne!(later.gid, first.gid, "change points must demote");
    }

    #[test]
    fn sweep_quantum_is_fixed_per_run_and_varies_across_runs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut quanta = std::collections::HashSet::new();
        for seed in 0..32u64 {
            let mut eng = SchedulePolicy::Sweep.build(seed, 24);
            let d1 = eng.pick(&mut rng, &[0, 1], 0);
            let d2 = eng.pick(&mut rng, &[0, 1], 10);
            assert_eq!(d1.quantum, d2.quantum, "quantum fixed within a run");
            assert!(SWEEP_QUANTA.contains(&d1.quantum));
            quanta.insert(d1.quantum);
        }
        assert!(quanta.len() >= 4, "seeds must cover the ladder: {quanta:?}");
    }

    #[test]
    fn signature_fold_distinguishes_order() {
        let a = fold_signature(fold_signature(SIGNATURE_SEED, 0, 5), 1, 9);
        let b = fold_signature(fold_signature(SIGNATURE_SEED, 1, 5), 0, 9);
        assert_ne!(a, b);
        assert_eq!(
            a,
            fold_signature(fold_signature(SIGNATURE_SEED, 0, 5), 1, 9)
        );
    }
}
