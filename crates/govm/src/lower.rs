//! Lowering pass: fused superinstructions for the register tier.
//!
//! The stack `Op` tier stays the golden reference; this pass runs after
//! `govm::compile` (at [`crate::ProgContext`] build time) and produces,
//! per function, a pc-indexed table of *fused superinstructions* — the
//! hottest four-op stack sequences measured by `BENCH_hotpath.json`
//! (statement-level native calls like `mu.Lock()`, counter updates like
//! `n = n + 1`, and loop-condition compare-and-branch) collapsed into
//! one dispatch each. The pc space is unchanged: a fused entry at `p`
//! covers `code[p..p+4]`, and the register exec loop falls back to
//! single-op execution at any pc without an entry (including mid-window
//! jump targets), so lowering can never change program behaviour.
//!
//! Bit-identity with the stack tier is structural, not best-effort: a
//! fused handler charges `vm.steps` before each covered sub-op exactly
//! like the quantum loop does, updates the frame pc before every
//! detector-visible sub-op (so stack generations, interned snapshots and
//! race reports see the same `(func, pc)` the stack tier would), and is
//! only entered when the whole window fits in the remaining quantum
//! allowance (so preemption points are unchanged). Everything that stays
//! in Rust locals — the loaded operands, the arithmetic, the branch
//! decision — is precisely the operand-stack traffic the tier removes.

use crate::bytecode::{CompiledFunc, Op};

/// Width (in stack-tier ops) of every fused window.
pub const FUSED_WIDTH: usize = 4;

/// Operand source/destination of a fused superinstruction: the three
/// addressable cell kinds a `Load*`/`Store*` op can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Frame-local slot (`Op::LoadLocal` / `Op::StoreLocal`).
    Local(u16),
    /// Captured upvalue (`Op::LoadUpval` / `Op::StoreUpval`).
    Upval(u16),
    /// Package-level global (`Op::LoadGlobal` / `Op::StoreGlobal`).
    Global(u16),
}

/// Comparison selector for the fused compare-and-branch forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A fused superinstruction covering `code[pc..pc + FUSED_WIDTH]`.
///
/// Jump targets keep the stack tier's `i32` operand form (cast to
/// `usize` at execution, exactly like `Op::JumpIfFalse`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fused {
    /// `recv.name()` as a statement:
    /// `[Load recv, BindMethod name, Call{argc:0}, Pop]`.
    /// The sync-heavy hot path (`mu.Lock()`, `mu.Unlock()`, `wg.Done()`).
    NativeCallStmt {
        /// Receiver cell.
        recv: Src,
        /// Method name (string-pool id).
        name: u32,
    },
    /// `dst = a + k`: `[Load a, ConstInt k, Add, Store dst]`
    /// (counter bumps, loop increments).
    AddConstStore {
        /// Left operand cell.
        a: Src,
        /// Immediate addend.
        k: i64,
        /// Destination cell.
        dst: Src,
    },
    /// `dst = a + b`: `[Load a, Load b, Add, Store dst]`.
    AddStore {
        /// Left operand cell.
        a: Src,
        /// Right operand cell.
        b: Src,
        /// Destination cell.
        dst: Src,
    },
    /// `if !(a <op> k) goto target`:
    /// `[Load a, ConstInt k, cmp, JumpIfFalse target]` (loop conditions).
    CmpConstJump {
        /// Left operand cell.
        a: Src,
        /// Immediate right operand.
        k: i64,
        /// Comparison.
        op: CmpOp,
        /// `JumpIfFalse` target.
        target: i32,
    },
    /// `if !(a <op> b) goto target`:
    /// `[Load a, Load b, cmp, JumpIfFalse target]`.
    CmpJump {
        /// Left operand cell.
        a: Src,
        /// Right operand cell.
        b: Src,
        /// Comparison.
        op: CmpOp,
        /// `JumpIfFalse` target.
        target: i32,
    },
}

fn load_src(op: &Op) -> Option<Src> {
    match op {
        Op::LoadLocal(s) => Some(Src::Local(*s)),
        Op::LoadUpval(i) => Some(Src::Upval(*i)),
        Op::LoadGlobal(i) => Some(Src::Global(*i)),
        _ => None,
    }
}

fn store_dst(op: &Op) -> Option<Src> {
    match op {
        Op::StoreLocal(s) => Some(Src::Local(*s)),
        Op::StoreUpval(i) => Some(Src::Upval(*i)),
        Op::StoreGlobal(i) => Some(Src::Global(*i)),
        _ => None,
    }
}

fn cmp_op(op: &Op) -> Option<CmpOp> {
    match op {
        Op::Lt => Some(CmpOp::Lt),
        Op::Le => Some(CmpOp::Le),
        Op::Gt => Some(CmpOp::Gt),
        Op::Ge => Some(CmpOp::Ge),
        Op::Eq => Some(CmpOp::Eq),
        Op::Ne => Some(CmpOp::Ne),
        _ => None,
    }
}

fn match_window(w: &[Op]) -> Option<Fused> {
    let a = load_src(&w[0])?;
    if let (Op::BindMethod(name), Op::Call { argc: 0 }, Op::Pop) = (&w[1], &w[2], &w[3]) {
        return Some(Fused::NativeCallStmt {
            recv: a,
            name: *name,
        });
    }
    if let (Op::ConstInt(k), Op::Add) = (&w[1], &w[2]) {
        if let Some(dst) = store_dst(&w[3]) {
            return Some(Fused::AddConstStore { a, k: *k, dst });
        }
    }
    if let Op::Add = &w[2] {
        if let (Some(b), Some(dst)) = (load_src(&w[1]), store_dst(&w[3])) {
            return Some(Fused::AddStore { a, b, dst });
        }
    }
    if let (Op::ConstInt(k), Op::JumpIfFalse(t)) = (&w[1], &w[3]) {
        if let Some(op) = cmp_op(&w[2]) {
            return Some(Fused::CmpConstJump {
                a,
                k: *k,
                op,
                target: *t,
            });
        }
    }
    if let Op::JumpIfFalse(t) = &w[3] {
        if let (Some(b), Some(op)) = (load_src(&w[1]), cmp_op(&w[2])) {
            return Some(Fused::CmpJump {
                a,
                b,
                op,
                target: *t,
            });
        }
    }
    None
}

/// Lowers one compiled function to its fused table: `out[pc]` holds the
/// superinstruction starting at `pc`, if the window matches a pattern.
/// Windows may overlap — the register loop consults the table at its
/// current pc, whatever that is, so overlapping entries are all valid.
pub fn lower_func(f: &CompiledFunc) -> Vec<Option<Fused>> {
    let code = &f.code;
    let mut out = vec![None; code.len()];
    if code.len() < FUSED_WIDTH {
        return out;
    }
    for p in 0..=code.len() - FUSED_WIDTH {
        out[p] = match_window(&code[p..p + FUSED_WIDTH]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func(code: Vec<Op>) -> CompiledFunc {
        let lines = vec![1; code.len()];
        CompiledFunc {
            name: "f".into(),
            file: 0,
            params: 0,
            param_names: vec![],
            n_slots: 4,
            results: 0,
            code,
            lines,
        }
    }

    #[test]
    fn fuses_native_call_statement() {
        let f = func(vec![
            Op::LoadLocal(0),
            Op::BindMethod(7),
            Op::Call { argc: 0 },
            Op::Pop,
        ]);
        let t = lower_func(&f);
        assert_eq!(
            t[0],
            Some(Fused::NativeCallStmt {
                recv: Src::Local(0),
                name: 7
            })
        );
        assert!(t[1..].iter().all(|e| e.is_none()));
    }

    #[test]
    fn fuses_counter_bump_and_loop_condition() {
        let f = func(vec![
            Op::LoadUpval(1),
            Op::ConstInt(1),
            Op::Add,
            Op::StoreUpval(1),
            Op::LoadLocal(0),
            Op::ConstInt(100),
            Op::Lt,
            Op::JumpIfFalse(42),
        ]);
        let t = lower_func(&f);
        assert_eq!(
            t[0],
            Some(Fused::AddConstStore {
                a: Src::Upval(1),
                k: 1,
                dst: Src::Upval(1)
            })
        );
        assert_eq!(
            t[4],
            Some(Fused::CmpConstJump {
                a: Src::Local(0),
                k: 100,
                op: CmpOp::Lt,
                target: 42
            })
        );
    }

    #[test]
    fn fuses_two_operand_forms() {
        let f = func(vec![
            Op::LoadLocal(0),
            Op::LoadGlobal(2),
            Op::Add,
            Op::StoreLocal(3),
            Op::LoadLocal(0),
            Op::LoadLocal(1),
            Op::Ge,
            Op::JumpIfFalse(9),
        ]);
        let t = lower_func(&f);
        assert_eq!(
            t[0],
            Some(Fused::AddStore {
                a: Src::Local(0),
                b: Src::Global(2),
                dst: Src::Local(3)
            })
        );
        assert_eq!(
            t[4],
            Some(Fused::CmpJump {
                a: Src::Local(0),
                b: Src::Local(1),
                op: CmpOp::Ge,
                target: 9
            })
        );
    }

    #[test]
    fn non_statement_calls_and_argful_calls_stay_single() {
        // Call result consumed (no Pop) — not a statement, not fused.
        let f = func(vec![
            Op::LoadLocal(0),
            Op::BindMethod(1),
            Op::Call { argc: 0 },
            Op::StoreLocal(2),
        ]);
        assert!(lower_func(&f)[0].is_none());
        // Call with arguments — not fused.
        let g = func(vec![
            Op::LoadLocal(0),
            Op::BindMethod(1),
            Op::Call { argc: 1 },
            Op::Pop,
        ]);
        assert!(lower_func(&g)[0].is_none());
    }

    #[test]
    fn short_functions_lower_to_empty_tables() {
        let f = func(vec![Op::ConstNil, Op::Return { n: 1 }]);
        assert_eq!(lower_func(&f), vec![None, None]);
    }
}
