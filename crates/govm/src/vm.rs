//! The virtual machine: a deterministic, seeded, preemptive green-thread
//! interpreter with race-detector hooks on every cell access.
//!
//! One OS thread runs everything. Goroutines are interleaved by a seeded
//! scheduler that preempts after a random quantum, so each seed explores
//! a different schedule — re-running a test under many seeds reproduces
//! `go test -race -count=N` (§4.4.1 of the paper).

use crate::bytecode::{Program, TypeHint};
use crate::lower::{self, Fused};
use crate::natives::{self, NativeMethod};
use crate::sched::{self, SchedulePolicy, Scheduler};
use crate::value::*;
use racedet::{
    DetStats, Detector, FastPath, Frame as RFrame, GoroutineInfo, RaceReport, StackGen, VectorClock,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::rc::Rc;

/// Which exec loop interprets the program.
///
/// Both tiers run the same compiled `Op` stream and are bit-identical
/// on everything logical — races, bug hashes, schedule signatures,
/// [`RunCounters`] — pinned by the golden suites and the cross-tier
/// differential proptest. The register tier additionally consults the
/// per-program fused-superinstruction tables (see [`crate::lower`]) to
/// collapse the hottest four-op stack sequences into one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// The original stack-machine loop — the golden reference.
    #[default]
    Stack,
    /// The lowered register/superinstruction loop.
    Reg,
}

impl Tier {
    /// Parses a tier spec: `stack`, or `reg`/`register`.
    pub fn parse(spec: &str) -> Option<Self> {
        match spec.trim().to_ascii_lowercase().as_str() {
            "stack" => Some(Tier::Stack),
            "reg" | "register" => Some(Tier::Reg),
            _ => None,
        }
    }

    /// Reads `DRFIX_TIER` from the environment (default: `Stack`).
    pub fn from_env() -> Self {
        std::env::var("DRFIX_TIER")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Stack => "stack",
            Tier::Reg => "reg",
        }
    }
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Scheduler seed — each seed explores one interleaving.
    pub seed: u64,
    /// Hard instruction budget (a run exceeding it reports `StepLimit`).
    pub max_steps: u64,
    /// Maximum preemption quantum (instructions between forced yields).
    pub preempt_max: u32,
    /// Extra budget to drain leftover goroutines after the root finishes.
    pub drain_steps: u64,
    /// Schedule-exploration policy (see [`crate::sched`]).
    pub policy: SchedulePolicy,
    /// Lock-aware detector caching + batched stack interning (on by
    /// default). Turning it off never changes observable behaviour —
    /// races, schedule signatures and the logical counters are
    /// bit-identical either way (pinned by tests); it exists for
    /// differential testing and A/B timing.
    pub sync_epoch_cache: bool,
    /// Shadow-state lifecycle management (on by default): exited
    /// goroutines retire their detector clock slot, and every few
    /// exits the VM sweeps dead shadow state at the live frontier.
    /// Purely physical, exactly like `sync_epoch_cache` — races, bug
    /// hashes, schedule signatures and logical counters are
    /// bit-identical with it off (pinned by tests); only memory and
    /// the `ShadowStats` bookkeeping move.
    pub shadow_gc: bool,
    /// Detector address-sampling modulus (1 = monitor everything, the
    /// default). A coarser modulus deterministically skips shadow
    /// tracking for all but a hash-spread `1/sample_mod` fraction of
    /// addresses, trading recall for memory/time. The monitored subset
    /// is salted with the run seed, so a multi-run campaign rotates
    /// coverage instead of missing the same addresses forever; the
    /// bench harness measures the recall it costs instead of letting
    /// it pass silently.
    pub sample_mod: u32,
    /// Which exec loop to run (see [`Tier`]). Defaults to the
    /// `DRFIX_TIER` environment knob, so an entire pipeline — testrun,
    /// fleet, campaign, perfscan — switches tier without any config
    /// plumbing; code that needs a fixed tier sets this field
    /// explicitly.
    pub tier: Tier,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            seed: 0,
            max_steps: 2_000_000,
            preempt_max: 24,
            drain_steps: 100_000,
            policy: SchedulePolicy::Random,
            sync_epoch_cache: true,
            shadow_gc: true,
            sample_mod: 1,
            tier: Tier::from_env(),
        }
    }
}

/// Why a run ended abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A goroutine panicked.
    Panic(String),
    /// All goroutines blocked.
    Deadlock(String),
    /// The instruction budget was exhausted.
    StepLimit,
    /// An internal interpreter error.
    Internal(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panic(m) => write!(f, "panic: {m}"),
            RunError::Deadlock(m) => {
                write!(
                    f,
                    "fatal error: all goroutines are asleep - deadlock! ({m})"
                )
            }
            RunError::StepLimit => write!(f, "step limit exceeded (possible livelock)"),
            RunError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

/// Deterministic hot-path cost counters for one run.
///
/// Every field is an exact function of the executed schedule — nothing
/// here depends on wall-clock, addresses or hashing seeds — so a seed
/// replays to bit-identical counters on any machine. The perf CI gate
/// (`make perf-smoke`) diffs these against a checked-in baseline, which
/// is what makes hot-path regressions detectable without flaky
/// wall-clock thresholds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunCounters {
    /// Instructions executed.
    pub vm_steps: u64,
    /// Scheduling decisions made.
    pub sched_points: u64,
    /// Stack identities the detector slow path (or goroutine creation)
    /// required. This is a *logical* count — one per slow event whether
    /// the snapshot was freshly built, served from the per-goroutine
    /// cache, or absorbed entirely by the detector's lock-aware owner
    /// cache — so it is independent of the caches and baselines never
    /// drift when caching improves. Physical rebuilds are
    /// `stack_snapshots - stack_cache_hits - det.sync_hits()`.
    pub stack_snapshots: u64,
    /// Memory accesses answered without a stack snapshot by the
    /// detector's same-epoch fast path (lock-aware cache hits are
    /// counted in `det.read_sync_hits`/`det.write_sync_hits` instead).
    pub snapshots_avoided: u64,
    /// Snapshot rebuilds avoided by the per-goroutine `(frame
    /// generation, pc)` interning cache on actual slow-path calls.
    pub stack_cache_hits: u64,
    /// Shadow states retired by the lifecycle GC (physical; zero with
    /// `shadow_gc` off).
    pub states_collected: u64,
    /// Detector clock slots handed from exited goroutines to later
    /// spawns (physical; zero with `shadow_gc` off).
    pub clock_slots_reclaimed: u64,
    /// High-water mark of the detector's estimated resident shadow
    /// bytes, sampled at every lifecycle checkpoint (goroutine exits
    /// and end of run). Campaign aggregation takes the max, not the
    /// sum — it is a gauge, not a counter.
    pub peak_shadow_bytes: u64,
    /// Vector-clock width at end of run (clock slots allocated; the
    /// width never shrinks, so end-of-run *is* the peak). With
    /// `shadow_gc` on this tracks peak *live* goroutines; off, total
    /// spawned. A gauge: campaigns aggregate by max.
    pub peak_clock_width: u64,
    /// Detector-side counters (events, fast hits, clock joins/allocs).
    pub det: DetStats,
}

impl RunCounters {
    /// Accumulates `other` into `self` (campaign-level aggregation).
    pub fn accumulate(&mut self, other: &RunCounters) {
        self.vm_steps += other.vm_steps;
        self.sched_points += other.sched_points;
        self.stack_snapshots += other.stack_snapshots;
        self.snapshots_avoided += other.snapshots_avoided;
        self.stack_cache_hits += other.stack_cache_hits;
        self.states_collected += other.states_collected;
        self.clock_slots_reclaimed += other.clock_slots_reclaimed;
        self.peak_shadow_bytes = self.peak_shadow_bytes.max(other.peak_shadow_bytes);
        self.peak_clock_width = self.peak_clock_width.max(other.peak_clock_width);
        self.det.accumulate(&other.det);
    }
}

/// The result of one program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Data races detected, in report form.
    pub races: Vec<RaceReport>,
    /// Abnormal termination, if any.
    pub error: Option<RunError>,
    /// Instructions executed.
    pub steps: u64,
    /// Captured `fmt` output.
    pub output: String,
    /// Recorded test failures (`t.Errorf`, failed asserts).
    pub test_failures: Vec<String>,
    /// Hash of the preemption-point sequence this run executed: two runs
    /// of the same program with equal signatures took the same
    /// interleaving (see [`crate::sched::fold_signature`]).
    pub schedule_sig: u64,
    /// Scheduling decisions made during the run.
    pub sched_points: u64,
    /// Fused superinstructions executed (register tier only; always 0
    /// on the stack tier). Deliberately *not* part of [`RunCounters`]:
    /// the logical counters are pinned bit-identical across tiers, and
    /// this is the physical evidence the register tier engaged.
    pub fused_ops: u64,
    /// Deterministic hot-path cost counters (see [`RunCounters`]).
    pub counters: RunCounters,
}

impl RunResult {
    /// `true` when the run saw no races, no errors and no test failures.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.error.is_none() && self.test_failures.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    Blocked,
    Done,
}

/// What to do when a parked goroutine's blocking operation is completed
/// by another goroutine.
#[derive(Debug)]
pub(crate) struct WakeAction {
    /// Values to pop from the goroutine's stack first.
    pub pops: usize,
    /// Values to push afterwards.
    pub push: Vec<Value>,
    /// Clock to acquire.
    pub acquire: Option<VectorClock>,
    /// Absolute pc to jump to (`None` = advance past the current op).
    pub jump_to: Option<usize>,
}

/// A parked `select`: the evaluated case data, kept until a case is ready.
#[derive(Debug)]
pub(crate) struct ParkedSelect {
    /// Cases in source order.
    pub cases: Vec<ParkedCase>,
}

/// One evaluated select case.
#[derive(Debug)]
pub(crate) enum ParkedCase {
    /// A pending send.
    Send {
        /// Channel (usize::MAX = nil).
        chan: ObjRef,
        /// Value to send.
        value: Value,
        /// Body pc.
        body: usize,
    },
    /// A pending receive.
    Recv {
        /// Channel (usize::MAX = nil).
        chan: ObjRef,
        /// Body pc.
        body: usize,
        /// Push the received value at the body.
        push_value: bool,
        /// Also push the `ok` flag.
        push_ok: bool,
    },
}

pub(crate) struct CallFrame {
    pub func: u32,
    pub pc: usize,
    pub locals: Vec<Addr>,
    pub upvals: Vec<Addr>,
    pub defers: Vec<(Value, Vec<Value>)>,
    /// Stack height at frame entry (restored on return).
    pub stack_base: usize,
    /// Set when the frame is unwinding through its defers.
    pub returning: Option<Value>,
}

pub(crate) struct Goroutine {
    pub frames: Vec<CallFrame>,
    pub stack: Vec<Value>,
    pub status: Status,
    /// Creation stacks (up to two ancestry levels), innermost first.
    pub creation: Vec<Vec<u32>>,
    pub wake: Option<WakeAction>,
    pub select: Option<ParkedSelect>,
    /// Step at which a `time.Sleep` expires.
    pub sleep_until: Option<u64>,
    /// Channel a plain send/receive is parked on.
    pub parked_on: Option<ObjRef>,
    /// Whether the parked receive wants the `ok` flag.
    pub parked_recv_comma_ok: bool,
    /// What the goroutine is blocked on (for deadlock messages).
    pub block_reason: &'static str,
    /// Callback target when this goroutine finishes (subtests).
    pub on_exit: Option<natives::OnExit>,
    /// Frame push/pop generation: bumped on every call, return and
    /// unwind, so `(depth_gen, top pc)` uniquely identifies this
    /// goroutine's exact call stack — the [`StackGen`] handed to the
    /// detector and the key of the interned snapshots below.
    pub depth_gen: u32,
    /// Interned snapshot: the materialised stack (frame ids, innermost
    /// first) of the most recent slow-path access. Within one
    /// `depth_gen` only element 0 (the top frame) can differ between
    /// stack generations, so a loop body that touches many source
    /// lines still reuses the whole outer stack and patches one id.
    pub snap: Vec<u32>,
    /// Exact generation `snap` is current for ([`StackGen::NONE`] =
    /// invalid).
    pub snap_gen: StackGen,
    /// `depth_gen` the outer part of `snap` was built at — top-patching
    /// is valid while this matches (u32::MAX = never built).
    pub snap_depth_gen: u32,
}

const UNBOUND: Addr = Addr::MAX;

/// Immutable per-program runtime tables: the interned string pool and
/// its reverse map.
///
/// Building these is a large share of a short run's total cost (every
/// pool name used to be re-allocated and re-hashed per `Vm`). A
/// campaign builds one `ProgContext` and shares it across all of its
/// runs via [`Vm::with_context`]; runtime-interned names layer on top
/// per VM, with ids continuing past the pool, so sharing is invisible
/// to program semantics.
#[derive(Debug)]
pub struct ProgContext {
    names: Vec<Rc<str>>,
    name_map: HashMap<Rc<str>, u32>,
    /// Interned stack frames: id → `(func, line)`. Frame identity is a
    /// static property of the program (every `(func, line)` pair is
    /// known from the line tables), so the whole table is built once
    /// per program and shared read-only by every run — snapshot
    /// resolution and [`StackGen`] derivation are pure array loads.
    frame_table: Vec<(u32, u32)>,
    /// Per-function `pc → frame id` tables.
    func_frames: Vec<Vec<u32>>,
    /// Per-function fused-superinstruction tables (the register tier's
    /// lowered form; see [`crate::lower`]). Built once per program and
    /// shared by every run — the stack tier never consults them.
    fused: Vec<Vec<Option<Fused>>>,
    /// Pool name id → native method, the table behind id-indexed native
    /// dispatch: every method name the program can utter is resolved to
    /// a dense [`NativeMethod`] once, at context build, instead of by
    /// `&str` match on every call.
    pool_natives: Vec<Option<NativeMethod>>,
}

impl ProgContext {
    /// Interns `prog`'s string pool and stack-frame tables.
    pub fn new(prog: &Program) -> Self {
        let names: Vec<Rc<str>> = prog.pool.iter().map(|s| Rc::from(s.as_str())).collect();
        let name_map = names
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        // Enumerate every function's line table in pc order, interning
        // each distinct `(func, line)` pair on first encounter — the
        // same first-touch discipline the per-VM map used, made static.
        let mut frame_table: Vec<(u32, u32)> = Vec::new();
        let mut frame_map: HashMap<(u32, u32), u32, racedet::FastBuildHasher> = HashMap::default();
        let mut func_frames: Vec<Vec<u32>> = Vec::with_capacity(prog.funcs.len());
        for (fid, func) in prog.funcs.iter().enumerate() {
            let mut intern = |line: u32| -> u32 {
                *frame_map.entry((fid as u32, line)).or_insert_with(|| {
                    let id = frame_table.len() as u32;
                    frame_table.push((fid as u32, line));
                    id
                })
            };
            let mut tbl = Vec::with_capacity(func.lines.len().max(1));
            for &line in &func.lines {
                tbl.push(intern(line));
            }
            if tbl.is_empty() {
                // Line-table-less function: one synthetic line-0 frame.
                tbl.push(intern(0));
            }
            func_frames.push(tbl);
        }
        let fused = prog.funcs.iter().map(lower::lower_func).collect();
        let pool_natives = prog
            .pool
            .iter()
            .map(|s| NativeMethod::from_name(s))
            .collect();
        ProgContext {
            names,
            name_map,
            frame_table,
            func_frames,
            fused,
            pool_natives,
        }
    }

    /// Interned frame id for `(fid, pc)` (pc clamped into the line
    /// table, matching snapshot semantics).
    #[inline]
    fn frame_id_at(&self, fid: u32, pc: usize) -> u32 {
        let tbl = &self.func_frames[fid as usize];
        tbl[pc.min(tbl.len() - 1)]
    }

    /// Fused superinstruction starting at `(fid, pc)`, if any.
    #[inline]
    fn fused_at(&self, fid: u32, pc: usize) -> Option<Fused> {
        self.fused[fid as usize].get(pc).copied().flatten()
    }
}

/// The virtual machine.
pub struct Vm<'p> {
    pub(crate) prog: &'p Program,
    pub(crate) heap: Heap,
    pub(crate) det: Detector,
    pub(crate) gos: Vec<Goroutine>,
    pub(crate) rng: StdRng,
    pub(crate) steps: u64,
    pub(crate) opts: VmOptions,
    pub(crate) globals: Vec<Addr>,
    /// Shared per-program tables (interned pool names); one campaign
    /// builds this once and every run's VM reuses it.
    ctx: Rc<ProgContext>,
    /// Names interned at runtime, ids continuing past `ctx.names`.
    extra_names: Vec<Rc<str>>,
    extra_name_map: HashMap<Rc<str>, u32>,
    /// Reusable runnable-set buffer for the scheduler loop.
    runnable_buf: Vec<Gid>,
    /// Recycled method-value receiver boxes (see `Op::BindMethod`).
    /// The boxes themselves are the point: `Value::Method` stores its
    /// receiver boxed, and the pool exists to reuse those heap cells.
    #[allow(clippy::vec_box)]
    pub(crate) method_box_pool: Vec<Box<Value>>,
    /// Stack identities required so far (logical; see
    /// [`RunCounters::stack_snapshots`]).
    snapshots_taken: u64,
    /// Snapshot rebuilds avoided by the per-goroutine interning cache.
    stack_cache_hits: u64,
    /// Goroutine exits delivered to the detector (drives the periodic
    /// shadow-GC trigger; physical bookkeeping only).
    exits_seen: u64,
    /// Fused superinstructions executed (register tier only).
    pub(crate) fused_ops: u64,
    /// High-water mark of the detector's estimated shadow bytes,
    /// sampled at lifecycle checkpoints.
    peak_shadow_bytes: u64,
    pub(crate) output: String,
    pub(crate) test_failures: Vec<String>,
    /// `(fire step, channel)` timers (context deadlines, `time.After`).
    pub(crate) timers: Vec<(u64, ObjRef)>,
    /// Goroutines currently carrying a `sleep_until` deadline. Purely
    /// an upper bound (a goroutine killed mid-sleep is never
    /// decremented) — it exists so the per-decision timer sweep can
    /// skip the all-goroutine scan in the common no-timers case.
    pub(crate) sleepers: u64,
    /// Lazily allocated never-ready channel for background `ctx.Done()`.
    pub(crate) never_chan: Option<ObjRef>,
    /// Lazily allocated global rand source.
    pub(crate) global_rand: Option<Value>,
    pub(crate) fatal: Option<RunError>,
    /// The pluggable scheduling engine (see [`crate::sched`]).
    sched: Box<dyn Scheduler>,
    /// Running schedule-signature fold.
    sched_sig: u64,
    /// Scheduling decisions made so far.
    sched_points: u64,
    /// The goroutine the previous decision ran (for switch detection).
    last_running: Option<Gid>,
}

/// Internal control-flow signal from one instruction.
pub(crate) enum Flow {
    /// Continue with the next instruction.
    Next,
    /// Jump to absolute pc.
    Jump(usize),
    /// Frame stack changed (call pushed); leave pc management alone.
    Stay,
    /// Re-run this instruction later (goroutine parked).
    Park(&'static str),
    /// The current frame returned.
    Returned(Value),
    /// A panic started unwinding.
    Panic(String),
}

impl<'p> Vm<'p> {
    /// Creates a VM for `prog`, with the scheduling engine built from
    /// `opts.policy`.
    pub fn new(prog: &'p Program, opts: VmOptions) -> Self {
        let engine = opts.policy.build(opts.seed, opts.preempt_max);
        Self::with_scheduler(prog, opts, engine)
    }

    /// Creates a VM driven by a caller-supplied scheduling engine —
    /// the extension point for exploration strategies beyond the
    /// built-in [`SchedulePolicy`] variants.
    pub fn with_scheduler(prog: &'p Program, opts: VmOptions, sched: Box<dyn Scheduler>) -> Self {
        Self::with_parts(prog, opts, sched, Rc::new(ProgContext::new(prog)))
    }

    /// Creates a VM from a pre-built per-program context.
    ///
    /// Campaigns ([`crate::run_test_many`]) build the [`ProgContext`]
    /// once and hand a clone to every run, so the per-run constructor
    /// does no name interning at all — a large share of a short run's
    /// cost at campaign scale.
    pub fn with_context(prog: &'p Program, opts: VmOptions, ctx: Rc<ProgContext>) -> Self {
        let engine = opts.policy.build(opts.seed, opts.preempt_max);
        Self::with_parts(prog, opts, engine, ctx)
    }

    fn with_parts(
        prog: &'p Program,
        opts: VmOptions,
        sched: Box<dyn Scheduler>,
        ctx: Rc<ProgContext>,
    ) -> Self {
        debug_assert_eq!(
            ctx.names.len(),
            prog.pool.len(),
            "context built for another program"
        );
        let mut det = Detector::new();
        det.set_sync_cache(opts.sync_epoch_cache);
        det.set_sample_mod(opts.sample_mod);
        det.set_sample_salt(opts.seed);
        let mut vm = Vm {
            prog,
            heap: Heap::new(),
            det,
            gos: Vec::new(),
            rng: StdRng::seed_from_u64(opts.seed),
            steps: 0,
            opts,
            globals: Vec::new(),
            ctx,
            extra_names: Vec::new(),
            extra_name_map: HashMap::new(),
            runnable_buf: Vec::new(),
            method_box_pool: Vec::new(),
            snapshots_taken: 0,
            stack_cache_hits: 0,
            exits_seen: 0,
            fused_ops: 0,
            peak_shadow_bytes: 0,
            output: String::new(),
            test_failures: Vec::new(),
            timers: Vec::new(),
            sleepers: 0,
            never_chan: None,
            global_rand: None,
            fatal: None,
            sched,
            sched_sig: sched::SIGNATURE_SEED,
            sched_points: 0,
            last_running: None,
        };
        for g in &prog.globals {
            let zero = vm.zero_value(prog.hints[g.hint as usize]);
            let a = vm.heap.alloc_cell(zero, g.name);
            vm.globals.push(a);
        }
        vm
    }

    /// Interns a runtime string into the name table.
    pub(crate) fn intern(&mut self, s: &str) -> u32 {
        if let Some(id) = self.lookup_name(s) {
            return id;
        }
        let id = (self.ctx.names.len() + self.extra_names.len()) as u32;
        let rc: Rc<str> = Rc::from(s);
        self.extra_names.push(rc.clone());
        self.extra_name_map.insert(rc, id);
        id
    }

    /// Resolves an interned name id (pool names first, then runtime
    /// interns).
    pub(crate) fn name(&self, id: u32) -> &Rc<str> {
        self.name_opt(id).expect("dangling name id")
    }

    /// [`Vm::name`], tolerating out-of-range ids.
    pub(crate) fn name_opt(&self, id: u32) -> Option<&Rc<str>> {
        let id = id as usize;
        let base = self.ctx.names.len();
        if id < base {
            self.ctx.names.get(id)
        } else {
            self.extra_names.get(id - base)
        }
    }

    /// Looks up an interned id by name (pool first, then runtime).
    pub(crate) fn lookup_name(&self, s: &str) -> Option<u32> {
        self.ctx
            .name_map
            .get(s)
            .copied()
            .or_else(|| self.extra_name_map.get(s).copied())
    }

    /// The interned `Rc<str>` for string-pool id `id` — a refcount bump,
    /// no allocation.
    pub(crate) fn const_str(&mut self, id: u32) -> Rc<str> {
        self.ctx.names[id as usize].clone()
    }

    /// Native method for name id `id`: a table load for pool names (the
    /// common case — every statically-written method name), a one-time
    /// string match for runtime-interned ones.
    #[inline]
    pub(crate) fn native_of(&self, id: u32) -> Option<NativeMethod> {
        match self.ctx.pool_natives.get(id as usize) {
            Some(m) => *m,
            None => self.name_opt(id).and_then(|s| NativeMethod::from_name(s)),
        }
    }

    pub(crate) fn zero_value(&mut self, hint: TypeHint) -> Value {
        match hint {
            TypeHint::Int => Value::Int(0),
            TypeHint::Float => Value::Float(0.0),
            TypeHint::Bool => Value::Bool(false),
            TypeHint::Str => Value::str(""),
            TypeHint::Error
            | TypeHint::Slice
            | TypeHint::Map
            | TypeHint::Chan
            | TypeHint::Ptr
            | TypeHint::Func
            | TypeHint::Unknown => Value::Nil,
            TypeHint::Mutex => self.heap.alloc_mutex(),
            TypeHint::RwMutex => self.heap.alloc_rwmutex(),
            TypeHint::WaitGroup => self.heap.alloc_waitgroup(),
            TypeHint::SyncMap => self.heap.alloc_syncmap(),
            TypeHint::Struct(name) => {
                let prog = self.prog;
                match prog.struct_type(name) {
                    Some(def) => {
                        let mut fields = Vec::with_capacity(def.fields.len());
                        for &(fname, fhint) in &def.fields {
                            let v = self.zero_value(prog.hints[fhint as usize]);
                            fields.push((prog.str(fname).to_owned(), v, fname));
                        }
                        self.heap
                            .alloc_struct_named(prog.str(name).to_owned(), fields)
                    }
                    None => Value::Nil,
                }
            }
        }
    }

    // -------------------------------------------------------------- stacks

    /// The current [`StackGen`] of `gid`: `(frame push/pop generation,
    /// interned top-frame id)`, the token under which stack snapshots
    /// are interned and the detector's owner cache is validated. Keyed
    /// on the top frame's *line* (via its frame id), not its pc, so
    /// every instruction of one source statement shares a token — a
    /// `n = n + 1` reads and writes under the same generation. Returns
    /// [`StackGen::NONE`] with no frames or with the cache disabled.
    #[inline]
    fn stack_gen(&self, gid: Gid) -> StackGen {
        Self::derive_stack_gen(&self.gos, &self.ctx, &self.opts, gid)
    }

    /// [`Vm::stack_gen`] over disjoint field borrows, so the detector's
    /// lazy-token fast path can derive it while the detector itself is
    /// mutably borrowed.
    #[inline]
    fn derive_stack_gen(
        gos: &[Goroutine],
        ctx: &ProgContext,
        opts: &VmOptions,
        gid: Gid,
    ) -> StackGen {
        if !opts.sync_epoch_cache {
            return StackGen::NONE;
        }
        let g = &gos[gid];
        let (fid, pc, depth_gen) = match g.frames.last() {
            Some(f) => (f.func, f.pc, g.depth_gen),
            None => return StackGen::NONE,
        };
        StackGen::from_parts(depth_gen, ctx.frame_id_at(fid, pc))
    }

    /// Ensures `gid`'s interned snapshot (`snap`) is current for `gen`.
    /// Three tiers: exact generation match (free), same `depth_gen`
    /// with a moved pc (patch the top frame id — one interning lookup),
    /// or a full rebuild after a call/return changed the stack shape.
    /// Counts one logical snapshot either way; full rebuilds avoided
    /// land in `stack_cache_hits`.
    fn refresh_snapshot(&mut self, gid: Gid, gen: StackGen) {
        self.snapshots_taken += 1;
        let g = &self.gos[gid];
        if gen.is_some() {
            if g.snap_gen == gen {
                self.stack_cache_hits += 1;
                return;
            }
            if g.snap_depth_gen == g.depth_gen && !g.snap.is_empty() {
                // Same call stack, different source line: everything
                // below the top frame is unchanged.
                let f = g.frames.last().expect("depth_gen matched a live stack");
                let id = self.ctx.frame_id_at(f.func, f.pc);
                let g = &mut self.gos[gid];
                g.snap[0] = id;
                g.snap_gen = gen;
                self.stack_cache_hits += 1;
                return;
            }
        }
        let mut buf = std::mem::take(&mut self.gos[gid].snap);
        self.fill_stack_snapshot(gid, &mut buf);
        let g = &mut self.gos[gid];
        g.snap = buf;
        g.snap_gen = gen;
        g.snap_depth_gen = if gen.is_some() { g.depth_gen } else { u32::MAX };
    }

    /// Fills `out` with `gid`'s stack as interned frame ids, innermost
    /// first. Single pass, no intermediate allocation; `out` is cleared
    /// first so a scratch buffer can be reused across calls.
    pub(crate) fn fill_stack_snapshot(&mut self, gid: Gid, out: &mut Vec<u32>) {
        out.clear();
        for f in self.gos[gid].frames.iter().rev() {
            out.push(self.ctx.frame_id_at(f.func, f.pc));
        }
    }

    /// Snapshot of `gid`'s stack as interned frame ids, innermost first
    /// (served from the interned snapshot when current).
    pub(crate) fn stack_snapshot(&mut self, gid: Gid) -> Vec<u32> {
        let gen = self.stack_gen(gid);
        self.refresh_snapshot(gid, gen);
        self.gos[gid].snap.clone()
    }

    fn resolve_frame(&self, id: u32) -> RFrame {
        let (func, line) = self.ctx.frame_table[id as usize];
        let f = &self.prog.funcs[func as usize];
        RFrame::new(
            f.name.clone(),
            self.prog.files[f.file as usize].clone(),
            line,
        )
    }

    // ------------------------------------------------------- tracked cells
    //
    // Every access first asks the detector's same-epoch fast path, then
    // its lock-aware owner cache (both stack-free); only a full miss
    // materialises a stack snapshot — served from the goroutine's
    // interned `(depth_gen, pc)` snapshot when the stack is unchanged,
    // which is every repeat of the same source line — and runs the full
    // FastTrack transfer function. On the loop-heavy exposure corpus
    // the same-epoch path answers the large majority of accesses; on
    // sync-heavy programs (every release advances the epoch) the owner
    // cache and the interned snapshots carry the load — see DESIGN.md
    // "Hot-path architecture".

    /// Detector slow path for a read: resolve the (possibly interned)
    /// stack, run the full transfer function.
    #[cold]
    fn det_read_slow(&mut self, gid: Gid, addr: Addr, gen: StackGen) {
        self.refresh_snapshot(gid, gen);
        let name = self.heap.cell_name(addr);
        let buf = std::mem::take(&mut self.gos[gid].snap);
        self.det.read_slow(gid, addr, name, &buf, gen);
        self.gos[gid].snap = buf;
    }

    /// Detector slow path for a write.
    #[cold]
    fn det_write_slow(&mut self, gid: Gid, addr: Addr, gen: StackGen) {
        self.refresh_snapshot(gid, gen);
        let name = self.heap.cell_name(addr);
        let buf = std::mem::take(&mut self.gos[gid].snap);
        self.det.write_slow(gid, addr, name, &buf, gen);
        self.gos[gid].snap = buf;
    }

    /// Race-tracks a read of `addr` without touching the value. The
    /// stack token is derived lazily — the dominant same-epoch case
    /// never pays for it (disjoint-field borrows let the detector call
    /// back into the goroutine/frame tables mid-check).
    pub(crate) fn track_read(&mut self, gid: Gid, addr: Addr) {
        let Vm {
            det,
            gos,
            ctx,
            opts,
            ..
        } = self;
        let (hit, gen) =
            det.read_fast_with(gid, addr, || Self::derive_stack_gen(gos, ctx, opts, gid));
        match hit {
            FastPath::EpochHit => {}
            // The absorbed transfer still *needed* a stack identity;
            // counted logically so counter baselines are cache-blind.
            FastPath::CacheHit => self.snapshots_taken += 1,
            FastPath::Miss => self.det_read_slow(gid, addr, gen),
        }
    }

    /// Race-tracks a write to `addr` without touching the value
    /// (structural mutations: slice/map headers, cell initialisation).
    pub(crate) fn track_write(&mut self, gid: Gid, addr: Addr) {
        let Vm {
            det,
            gos,
            ctx,
            opts,
            ..
        } = self;
        let (hit, gen) =
            det.write_fast_with(gid, addr, || Self::derive_stack_gen(gos, ctx, opts, gid));
        match hit {
            FastPath::EpochHit => {}
            FastPath::CacheHit => self.snapshots_taken += 1,
            FastPath::Miss => self.det_write_slow(gid, addr, gen),
        }
    }

    /// Race-tracked cell read by `gid`.
    pub(crate) fn read_cell(&mut self, gid: Gid, addr: Addr) -> Value {
        self.track_read(gid, addr);
        self.heap.cells[addr as usize].clone()
    }

    /// Race-tracked cell write by `gid`.
    pub(crate) fn write_cell(&mut self, gid: Gid, addr: Addr, v: Value) {
        self.track_write(gid, addr);
        self.heap.cells[addr as usize] = v;
    }

    // ----------------------------------------------------------- spawning

    /// Spawns a goroutine calling `callee` with `args`.
    pub(crate) fn spawn(
        &mut self,
        parent: Option<Gid>,
        callee: Value,
        args: Vec<Value>,
    ) -> Result<Gid, String> {
        let gid = match parent {
            Some(p) => self.det.fork(p),
            None if self.gos.is_empty() => 0,
            None => self.det.fork(0),
        };
        let mut creation = Vec::new();
        if let Some(p) = parent {
            creation.push(self.stack_snapshot(p));
            if let Some(first) = self.gos[p].creation.first() {
                creation.push(first.clone());
            }
        }
        debug_assert_eq!(gid, self.gos.len(), "goroutine ids stay dense");
        self.gos.push(Goroutine {
            // Pre-sized: a fresh goroutine pushes a frame and operands
            // within its first instructions, and the early `Vec` growth
            // steps showed up in sync-heavy profiles.
            frames: Vec::with_capacity(4),
            stack: Vec::with_capacity(16),
            status: Status::Runnable,
            creation,
            wake: None,
            select: None,
            sleep_until: None,
            parked_on: None,
            parked_recv_comma_ok: false,
            block_reason: "",
            on_exit: None,
            depth_gen: 0,
            snap: Vec::new(),
            snap_gen: StackGen::NONE,
            snap_depth_gen: u32::MAX,
        });
        self.push_call(gid, callee, args)
            .map_err(|e| format!("go: {e}"))?;
        Ok(gid)
    }

    /// Pushes a call frame for `callee` onto `gid`.
    pub(crate) fn push_call(
        &mut self,
        gid: Gid,
        callee: Value,
        mut args: Vec<Value>,
    ) -> Result<(), String> {
        match callee {
            Value::Func(fid) => self.push_frame(gid, fid, Vec::new(), args),
            Value::Closure(c) => {
                let clo = self.heap.closures[c].clone();
                self.push_frame(gid, clo.func, clo.upvals, args)
            }
            Value::Method { recv, name } => {
                let mut all = Vec::with_capacity(args.len() + 1);
                all.push(*recv);
                all.append(&mut args);
                if let Some(fid) = self.method_func(&all[0], name) {
                    self.push_frame(gid, fid, Vec::new(), all)
                } else {
                    Err(format!(
                        "unknown method `{}` on {}",
                        self.name(name),
                        all[0].type_name()
                    ))
                }
            }
            other => Err(format!("cannot call {}", other.type_name())),
        }
    }

    /// Resolves a declared (non-native) method for a receiver value.
    pub(crate) fn method_func(&self, recv: &Value, name: u32) -> Option<u32> {
        let tname: &str = match recv {
            Value::Struct(r) => &self.heap.structs[*r].type_name,
            Value::Ptr(a) => match &self.heap.cells[*a as usize] {
                Value::Struct(r) => &self.heap.structs[*r].type_name,
                _ => return None,
            },
            _ => return None,
        };
        let tid = self.lookup_name(tname)?;
        self.prog.method_of(tid, name)
    }

    fn push_frame(
        &mut self,
        gid: Gid,
        fid: u32,
        upvals: Vec<Addr>,
        args: Vec<Value>,
    ) -> Result<(), String> {
        let func = &self.prog.funcs[fid as usize];
        if args.len() != func.params as usize {
            return Err(format!(
                "{} takes {} arguments, got {}",
                func.name,
                func.params,
                args.len()
            ));
        }
        let n_slots = func.n_slots as usize;
        let param_names = func.param_names.clone();
        let mut locals = vec![UNBOUND; n_slots];
        for (i, v) in args.into_iter().enumerate() {
            let name = param_names.get(i).copied().unwrap_or(0);
            let a = self.heap.alloc_cell(v, name);
            locals[i] = a;
        }
        let stack_base = self.gos[gid].stack.len();
        self.gos[gid].frames.push(CallFrame {
            func: fid,
            pc: 0,
            locals,
            upvals,
            defers: Vec::new(),
            stack_base,
            returning: None,
        });
        // The call stack changed shape: retire this goroutine's stack
        // generation so interned snapshots and owner-cache records from
        // the previous shape can never be mistaken for the new one.
        self.gos[gid].depth_gen = self.gos[gid].depth_gen.wrapping_add(1);
        Ok(())
    }

    // ---------------------------------------------------------- scheduler

    /// Runs `entry(args)` to completion (plus drain), returning the result.
    pub fn run(&mut self, entry: &str, args: Vec<Value>) -> RunResult {
        if let Some(init) = self.prog.init_func {
            match self.spawn(None, Value::Func(init), Vec::new()) {
                Ok(g0) => {
                    self.drive(Some(g0), self.opts.max_steps);
                }
                Err(e) => return self.finish(Some(RunError::Internal(e))),
            }
        }
        if self.fatal.is_some() {
            let err = self.fatal.take();
            return self.finish(err);
        }
        let entry_id = match self.prog.find_func(entry) {
            Some(f) => f,
            None => return self.finish(Some(RunError::Internal(format!("no function `{entry}`")))),
        };
        let parent = if self.gos.is_empty() { None } else { Some(0) };
        let root = match self.spawn(parent, Value::Func(entry_id), args) {
            Ok(g) => g,
            Err(e) => return self.finish(Some(RunError::Internal(e))),
        };
        self.drive(Some(root), self.opts.max_steps);
        if self.fatal.is_none() {
            let budget = self
                .steps
                .saturating_add(self.opts.drain_steps)
                .min(self.opts.max_steps.saturating_mul(2));
            self.drive(None, budget);
        }
        let err = self.fatal.take();
        self.finish(err)
    }

    fn finish(&mut self, error: Option<RunError>) -> RunResult {
        let raws: Vec<racedet::RawRace> = self.det.races().to_vec();
        let races = raws
            .into_iter()
            .map(|raw| {
                let mk = |acc: &racedet::RawAccess, vm: &Vm| racedet::Access {
                    kind: acc.kind,
                    stack: acc.stack.iter().map(|&f| vm.resolve_frame(f)).collect(),
                    goroutine: GoroutineInfo {
                        id: acc.tid,
                        creation: vm
                            .gos
                            .get(acc.tid)
                            .map(|g| {
                                g.creation
                                    .iter()
                                    .map(|st| st.iter().map(|&f| vm.resolve_frame(f)).collect())
                                    .collect()
                            })
                            .unwrap_or_default(),
                    },
                };
                RaceReport {
                    accesses: [mk(&raw.cur, self), mk(&raw.prev, self)],
                    var_name: self
                        .name_opt(raw.var)
                        .map(|n| n.to_string())
                        .unwrap_or_default(),
                    addr: raw.addr,
                }
            })
            .collect();
        let det = *self.det.stats();
        // End-of-run lifecycle checkpoint: the gauge must cover runs
        // that never hit an exit checkpoint (or none at all).
        self.peak_shadow_bytes = self.peak_shadow_bytes.max(self.det.shadow_bytes());
        let shadow = *self.det.shadow_stats();
        RunResult {
            races,
            error,
            steps: self.steps,
            output: std::mem::take(&mut self.output),
            test_failures: std::mem::take(&mut self.test_failures),
            schedule_sig: self.sched_sig,
            sched_points: self.sched_points,
            fused_ops: self.fused_ops,
            counters: RunCounters {
                vm_steps: self.steps,
                sched_points: self.sched_points,
                stack_snapshots: self.snapshots_taken,
                snapshots_avoided: det.fast_hits(),
                stack_cache_hits: self.stack_cache_hits,
                states_collected: shadow.states_collected,
                clock_slots_reclaimed: shadow.clock_slots_reclaimed,
                peak_shadow_bytes: self.peak_shadow_bytes,
                peak_clock_width: self.det.clock_width() as u64,
                det,
            },
        }
    }

    fn drive(&mut self, root: Option<Gid>, budget: u64) {
        loop {
            if self.fatal.is_some() {
                return;
            }
            if let Some(r) = root {
                if self.gos[r].status == Status::Done {
                    return;
                }
            }
            if self.steps >= budget {
                if root.is_some() && self.steps >= self.opts.max_steps {
                    self.fatal = Some(RunError::StepLimit);
                }
                return;
            }
            self.fire_timers();
            self.runnable_buf.clear();
            for g in 0..self.gos.len() {
                if self.gos[g].status == Status::Runnable {
                    self.runnable_buf.push(g);
                }
            }
            if self.runnable_buf.is_empty() {
                let any_blocked = self.gos.iter().any(|g| g.status == Status::Blocked);
                if !any_blocked {
                    return;
                }
                if self.advance_time() {
                    continue;
                }
                if root.is_some() {
                    let reasons: Vec<&str> = self
                        .gos
                        .iter()
                        .filter(|g| g.status == Status::Blocked)
                        .map(|g| g.block_reason)
                        .collect();
                    self.fatal = Some(RunError::Deadlock(reasons.join(", ")));
                }
                return;
            }
            let decision = self
                .sched
                .pick(&mut self.rng, &self.runnable_buf, self.steps);
            debug_assert!(
                self.runnable_buf.contains(&decision.gid),
                "scheduler picked a non-runnable goroutine"
            );
            // The signature records *context switches* only: re-picking
            // the goroutine that is already running — whatever the
            // quantum boundaries — leaves the interleaving unchanged, so
            // folding those decisions would make semantically identical
            // schedules hash differently and defeat campaign dedup.
            if self.last_running != Some(decision.gid) {
                self.sched_sig = sched::fold_signature(self.sched_sig, decision.gid, self.steps);
                self.last_running = Some(decision.gid);
            }
            self.sched_points += 1;
            match self.opts.tier {
                Tier::Stack => self.run_goroutine(decision.gid, decision.quantum.max(1), budget),
                Tier::Reg => self.run_goroutine_reg(decision.gid, decision.quantum.max(1), budget),
            }
        }
    }

    fn fire_timers(&mut self) {
        // Called on every scheduling decision; with no timers armed and
        // no sleeping goroutines there is provably nothing to fire.
        if self.timers.is_empty() && self.sleepers == 0 {
            return;
        }
        let now = self.steps;
        let mut fired = Vec::new();
        self.timers.retain(|&(at, ch)| {
            if at <= now {
                fired.push(ch);
                false
            } else {
                true
            }
        });
        for ch in fired {
            self.close_chan_internal(ch);
        }
        for g in &mut self.gos {
            if let Some(t) = g.sleep_until {
                if t <= now && g.status == Status::Blocked {
                    g.sleep_until = None;
                    self.sleepers = self.sleepers.saturating_sub(1);
                    g.status = Status::Runnable;
                }
            }
        }
    }

    /// Jumps the step counter to the next timer/sleeper deadline.
    fn advance_time(&mut self) -> bool {
        let mut next = u64::MAX;
        for &(at, _) in &self.timers {
            next = next.min(at);
        }
        for g in &self.gos {
            if let Some(t) = g.sleep_until {
                next = next.min(t);
            }
        }
        if next == u64::MAX {
            return false;
        }
        if next > self.steps {
            self.steps = next;
        }
        self.fire_timers();
        true
    }

    /// Resumption work shared by both exec tiers: applies a pending
    /// completed-op wake action, then retries a parked select. Returns
    /// `false` when the goroutine parked again or panicked — the
    /// quantum is over before it began.
    fn resume_preamble(&mut self, gid: Gid) -> bool {
        // Apply a pending completed-op wake action.
        if let Some(w) = self.gos[gid].wake.take() {
            for _ in 0..w.pops {
                self.gos[gid].stack.pop();
            }
            for v in w.push {
                self.gos[gid].stack.push(v);
            }
            if let Some(c) = w.acquire {
                self.det.acquire_clock(gid, &c);
            }
            if let Some(f) = self.gos[gid].frames.last_mut() {
                match w.jump_to {
                    Some(pc) => f.pc = pc,
                    None => f.pc += 1,
                }
            }
        }
        // Retry a parked select.
        if self.gos[gid].select.is_some() && self.gos[gid].status == Status::Runnable {
            let sel = self.gos[gid].select.take().expect("parked select");
            match crate::ops::try_select(self, gid, &sel.cases) {
                Some(Flow::Jump(t)) => {
                    if let Some(f) = self.gos[gid].frames.last_mut() {
                        f.pc = t;
                    }
                }
                Some(Flow::Panic(m)) => {
                    self.do_panic(gid, m);
                    return false;
                }
                Some(_) => unreachable!("select resolves to jump or panic"),
                None => {
                    crate::ops::repark_select(self, gid, sel);
                    self.gos[gid].status = Status::Blocked;
                    self.gos[gid].block_reason = "select";
                    return false;
                }
            }
        }
        true
    }

    fn run_goroutine(&mut self, gid: Gid, quantum: u64, budget: u64) {
        if !self.resume_preamble(gid) {
            return;
        }
        // The quantum loop runs with the per-step budget and runnable
        // checks hoisted out: the step allowance is clamped to the
        // remaining budget up front, and `status` can only change on
        // paths that return (park, panic) or that re-check explicitly
        // below (frame returns, which may finish or panic the goroutine
        // through deferred natives). `fatal` is checked per step: a
        // mid-quantum operand-stack underflow must stop execution
        // before the corrupted stack is interpreted further.
        let allowance = quantum.min(budget.saturating_sub(self.steps));
        for _ in 0..allowance {
            if self.fatal.is_some() {
                return;
            }
            self.steps += 1;

            // One bounds-checked frame access per step: fetch the
            // function, pc and unwinding flag together.
            let Some((fid, pc, returning)) = self.gos[gid]
                .frames
                .last()
                .map(|f| (f.func, f.pc, f.returning.is_some()))
            else {
                self.gos[gid].status = Status::Done;
                return;
            };
            // Unwinding frames (defers) take priority over fetch.
            if returning {
                self.proceed_return(gid);
                if self.fatal.is_some() || self.gos[gid].status != Status::Runnable {
                    return;
                }
                continue;
            }
            // `prog` outlives the `&mut self` borrow below, so the
            // fetched instruction is executed by reference — no
            // per-instruction `Op` clone.
            let code: &'p [crate::bytecode::Op] = &self.prog.funcs[fid as usize].code;
            if pc >= code.len() {
                // Fallthrough: return nil (compiler normally emits an
                // explicit return, so this is a safety net).
                self.start_return(gid, Value::Nil);
                if self.fatal.is_some() || self.gos[gid].status != Status::Runnable {
                    return;
                }
                continue;
            }
            match crate::ops::exec(self, gid, &code[pc]) {
                Flow::Next => {
                    if let Some(f) = self.gos[gid].frames.last_mut() {
                        f.pc += 1;
                    }
                }
                Flow::Jump(t) => {
                    if let Some(f) = self.gos[gid].frames.last_mut() {
                        f.pc = t;
                    }
                }
                Flow::Stay => {}
                Flow::Park(reason) => {
                    let g = &mut self.gos[gid];
                    g.status = Status::Blocked;
                    g.block_reason = reason;
                    return;
                }
                Flow::Returned(v) => {
                    self.start_return(gid, v);
                    if self.fatal.is_some() || self.gos[gid].status != Status::Runnable {
                        return;
                    }
                }
                Flow::Panic(msg) => {
                    self.do_panic(gid, msg);
                    return;
                }
            }
        }
    }

    /// The register-tier quantum loop ([`Tier::Reg`]): identical to
    /// [`Vm::run_goroutine`] except that, at a pc carrying a fused
    /// superinstruction whose whole window fits in the remaining
    /// allowance, the window executes as one dispatch
    /// ([`crate::ops::exec_fused`]). The fused handler charges steps
    /// and updates the frame pc per covered sub-op, so preemption
    /// points, detector events and every logical counter land exactly
    /// where the stack tier puts them; any pc without a fitting entry
    /// (including wake-ups parked mid-window) falls back to the shared
    /// single-op path.
    fn run_goroutine_reg(&mut self, gid: Gid, quantum: u64, budget: u64) {
        if !self.resume_preamble(gid) {
            return;
        }
        let allowance = quantum.min(budget.saturating_sub(self.steps));
        let mut used: u64 = 0;
        while used < allowance {
            if self.fatal.is_some() {
                return;
            }
            self.steps += 1;
            used += 1;

            let Some((fid, pc, returning)) = self.gos[gid]
                .frames
                .last()
                .map(|f| (f.func, f.pc, f.returning.is_some()))
            else {
                self.gos[gid].status = Status::Done;
                return;
            };
            if returning {
                self.proceed_return(gid);
                if self.fatal.is_some() || self.gos[gid].status != Status::Runnable {
                    return;
                }
                continue;
            }
            let code: &'p [crate::bytecode::Op] = &self.prog.funcs[fid as usize].code;
            if pc >= code.len() {
                self.start_return(gid, Value::Nil);
                if self.fatal.is_some() || self.gos[gid].status != Status::Runnable {
                    return;
                }
                continue;
            }
            // Fused fast path — only when the remaining allowance covers
            // the whole window, so the preemption boundary is the same
            // one the stack tier would hit.
            if allowance - used >= (lower::FUSED_WIDTH as u64) - 1 {
                if let Some(fu) = self.ctx.fused_at(fid, pc) {
                    self.fused_ops += 1;
                    let (extra, flow) = crate::ops::exec_fused(self, gid, pc, fu);
                    used += extra;
                    match flow {
                        Flow::Next => {
                            if let Some(f) = self.gos[gid].frames.last_mut() {
                                f.pc += 1;
                            }
                        }
                        Flow::Jump(t) => {
                            if let Some(f) = self.gos[gid].frames.last_mut() {
                                f.pc = t;
                            }
                        }
                        Flow::Stay => {}
                        Flow::Park(reason) => {
                            let g = &mut self.gos[gid];
                            g.status = Status::Blocked;
                            g.block_reason = reason;
                            return;
                        }
                        Flow::Returned(v) => {
                            self.start_return(gid, v);
                            if self.fatal.is_some() || self.gos[gid].status != Status::Runnable {
                                return;
                            }
                        }
                        Flow::Panic(msg) => {
                            self.do_panic(gid, msg);
                            return;
                        }
                    }
                    continue;
                }
            }
            match crate::ops::exec(self, gid, &code[pc]) {
                Flow::Next => {
                    if let Some(f) = self.gos[gid].frames.last_mut() {
                        f.pc += 1;
                    }
                }
                Flow::Jump(t) => {
                    if let Some(f) = self.gos[gid].frames.last_mut() {
                        f.pc = t;
                    }
                }
                Flow::Stay => {}
                Flow::Park(reason) => {
                    let g = &mut self.gos[gid];
                    g.status = Status::Blocked;
                    g.block_reason = reason;
                    return;
                }
                Flow::Returned(v) => {
                    self.start_return(gid, v);
                    if self.fatal.is_some() || self.gos[gid].status != Status::Runnable {
                        return;
                    }
                }
                Flow::Panic(msg) => {
                    self.do_panic(gid, msg);
                    return;
                }
            }
        }
    }

    /// Marks the current frame as returning `v`; defers run first.
    fn start_return(&mut self, gid: Gid, v: Value) {
        if let Some(f) = self.gos[gid].frames.last_mut() {
            f.returning = Some(v);
        }
        self.proceed_return(gid);
    }

    /// Runs the next deferred call of the returning frame, or finishes
    /// the return if none remain.
    fn proceed_return(&mut self, gid: Gid) {
        let Some(frame) = self.gos[gid].frames.last_mut() else {
            self.gos[gid].status = Status::Done;
            return;
        };
        let Some(v) = frame.returning.clone() else {
            return;
        };
        if let Some((callee, args)) = frame.defers.pop() {
            match &callee {
                Value::Method { recv, name } => {
                    // Native defers (wg.Done, mu.Unlock) run eagerly,
                    // dispatching on the boxed receiver by reference.
                    if self.method_func(recv, *name).is_none() {
                        let outcome = match self.native_of(*name) {
                            Some(m) => natives::dispatch_method(self, gid, recv, m, args),
                            None => natives::MethodOutcome::NotNative,
                        };
                        match outcome {
                            natives::MethodOutcome::Done(_) => {}
                            natives::MethodOutcome::Error(e) => {
                                self.do_panic(gid, e);
                            }
                            _ => {
                                let method = self.name(*name).clone();
                                self.do_panic(
                                    gid,
                                    format!("deferred native `{method}` would block"),
                                );
                            }
                        }
                        return;
                    }
                    if let Err(e) = self.push_call(gid, callee, args) {
                        self.do_panic(gid, e);
                    }
                }
                _ => {
                    if let Err(e) = self.push_call(gid, callee, args) {
                        self.do_panic(gid, e);
                    }
                }
            }
            return;
        }
        // No defers left: actually pop the frame.
        let frame = self.gos[gid].frames.pop().expect("returning frame");
        self.gos[gid].depth_gen = self.gos[gid].depth_gen.wrapping_add(1);
        self.gos[gid].stack.truncate(frame.stack_base);
        if self.gos[gid].frames.is_empty() {
            self.gos[gid].status = Status::Done;
            natives::on_goroutine_exit(self, gid);
            self.lifecycle_exit(gid);
        } else {
            self.gos[gid].stack.push(v);
            if let Some(f) = self.gos[gid].frames.last_mut() {
                if f.returning.is_none() {
                    f.pc += 1;
                }
            }
        }
    }

    /// Crate-internal access to [`Vm::start_return`] (nested calls).
    pub(crate) fn start_return_public(&mut self, gid: Gid, v: Value) {
        self.start_return(gid, v);
    }

    /// Crate-internal access to [`Vm::proceed_return`] (nested calls).
    pub(crate) fn proceed_return_public(&mut self, gid: Gid) {
        self.proceed_return(gid);
    }

    fn do_panic(&mut self, gid: Gid, msg: String) {
        // Release held synchronisation via native defers, then abort.
        let frames = std::mem::take(&mut self.gos[gid].frames);
        self.gos[gid].depth_gen = self.gos[gid].depth_gen.wrapping_add(1);
        for frame in frames.into_iter().rev() {
            for (callee, args) in frame.defers.into_iter().rev() {
                if let Value::Method { recv, name } = &callee {
                    if self.method_func(recv, *name).is_none() {
                        if let Some(m) = self.native_of(*name) {
                            let _ = natives::dispatch_method(self, gid, recv, m, args);
                        }
                    }
                }
            }
        }
        self.gos[gid].status = Status::Done;
        self.gos[gid].stack.clear();
        natives::on_goroutine_exit(self, gid);
        self.lifecycle_exit(gid);
        self.fatal = Some(RunError::Panic(msg));
    }

    /// Lifecycle checkpoint at a goroutine exit: retires the exiting
    /// goroutine's detector clock slot and, every few exits, sweeps
    /// dead shadow state at the live frontier. Must run *after*
    /// [`natives::on_goroutine_exit`] so the exit's own happens-before
    /// publications (subtest parent signalling) are already recorded.
    /// The root goroutine is never retired — the VM attributes
    /// post-run bookkeeping (channel closes at teardown) to it.
    fn lifecycle_exit(&mut self, gid: Gid) {
        if !self.opts.shadow_gc || gid == 0 {
            return;
        }
        self.det.thread_exit(gid);
        self.exits_seen += 1;
        // Deterministic GC cadence: a sweep every 16 exits keeps churny
        // programs bounded without rescanning the shadow per exit.
        if self.exits_seen % 16 == 0 {
            if let Some(f) = self.det.live_frontier() {
                self.det.collect(&f);
            }
        }
        self.peak_shadow_bytes = self.peak_shadow_bytes.max(self.det.shadow_bytes());
    }

    // ------------------------------------------------------------ channels

    pub(crate) fn close_chan_internal(&mut self, ch: ObjRef) {
        if !self.heap.chans[ch].closed {
            let clock = self.det.release_snapshot(0);
            self.heap.chans[ch].closed = true;
            self.heap.chans[ch].close_clock = Some(clock);
        }
        self.wake_chan_waiters(ch);
    }

    /// Wakes every goroutine parked on `ch`; they re-check their
    /// conditions when scheduled.
    pub(crate) fn wake_chan_waiters(&mut self, ch: ObjRef) {
        // Waiter buffers are handed back cleared-but-allocated: parked
        // channel peers cycle through these lists constantly, and
        // re-growing a fresh `Vec` on every park costs an allocation
        // per handoff.
        let mut recv: Vec<Gid> = std::mem::take(&mut self.heap.chans[ch].recv_waiters);
        let mut send: Vec<Gid> = std::mem::take(&mut self.heap.chans[ch].send_waiters);
        for &g in recv.iter().chain(send.iter()) {
            if self.gos[g].status == Status::Blocked && self.gos[g].sleep_until.is_none() {
                self.gos[g].status = Status::Runnable;
            }
        }
        recv.clear();
        send.clear();
        self.heap.chans[ch].recv_waiters = recv;
        self.heap.chans[ch].send_waiters = send;
    }

    /// Commits a buffered send (capacity known to be available).
    pub(crate) fn chan_send_commit(&mut self, gid: Gid, ch: ObjRef, v: Value) {
        let clock = self.det.release_snapshot(gid);
        let acquire = {
            let c = &mut self.heap.chans[ch];
            c.sends += 1;
            let acq = if c.cap > 0 && c.sends > c.cap {
                c.slot_clocks.pop_front()
            } else {
                None
            };
            c.queue.push_back(ChanMsg { value: v, clock });
            acq
        };
        if let Some(a) = acquire {
            self.det.acquire_clock(gid, &a);
        }
        self.wake_chan_waiters(ch);
    }

    /// Tries to receive a queued message or a closed-channel zero value.
    pub(crate) fn chan_try_recv(&mut self, gid: Gid, ch: ObjRef) -> Option<(Value, bool)> {
        let msg = self.heap.chans[ch].queue.pop_front();
        if let Some(m) = msg {
            self.det.acquire_clock(gid, &m.clock);
            let snap = self.det.release_snapshot(gid);
            self.heap.chans[ch].slot_clocks.push_back(snap);
            self.wake_chan_waiters(ch);
            return Some((m.value, true));
        }
        if self.heap.chans[ch].closed {
            let cc = self.heap.chans[ch].close_clock.clone();
            if let Some(c) = cc {
                self.det.acquire_clock(gid, &c);
            }
            return Some((Value::Nil, false));
        }
        None
    }
}
