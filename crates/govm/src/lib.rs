//! `govm` — a bytecode compiler and deterministic concurrent VM for the
//! `golite` Go subset, with FastTrack race-detector hooks.
//!
//! This crate is the `go test -race` substitute of the Dr.Fix
//! reproduction (PLDI 2025): it compiles a package, runs its tests under
//! seeded schedules, and reports data races in ThreadSanitizer shape.
//!
//! # Example
//!
//! ```
//! use govm::{compile_sources, CompileOptions, Vm, VmOptions};
//!
//! let prog = compile_sources(
//!     &[("main.go".into(),
//!        "package main\n\nfunc Compute() int {\n\treturn 40 + 2\n}\n".into())],
//!     &CompileOptions::default(),
//! )?;
//! let mut vm = Vm::new(&prog, VmOptions::default());
//! let result = vm.run("Compute", vec![]);
//! assert!(result.is_clean());
//! # Ok::<(), golite::Diag>(())
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod compile;
pub mod lower;
pub mod natives;
mod ops;
pub mod sched;
pub mod testrun;
pub mod value;
pub mod vm;

pub use bytecode::{Op, Program, TypeHint};
pub use compile::{compile_package, compile_sources, CompileOptions};
pub use sched::{Decision, SchedulePolicy, Scheduler, SeedStream};
pub use testrun::{run_test, run_test_many, run_test_with, StopReason, TestConfig, TestOutcome};
pub use value::Value;
pub use vm::{ProgContext, RunCounters, RunError, RunResult, Tier, Vm, VmOptions};
